// Distributed sharded-check bench — per-worker peak memory and scale-out
// overhead of dist::DistributedCheckAll against the single-process
// ShardedCheckAll it must reproduce bit for bit.
//
// Claims under test: (1) with a fixed shard size, the *per-worker* peak
// RSS stays near-flat as the CSV grows 16x — each fork/exec child holds
// only its buffer + one shard + compact summaries, never the file; (2)
// the coordinator's dispatch/fold machinery costs bounded overhead over
// the single-process sharded run on one machine (the fleet shares one
// disk and one CPU here, so this measures coordination tax, not speedup);
// (3) reports are identical to the single-process run at every size and
// worker count. The committed baseline JSON feeds the benchdiff gate.
//
// Workers are real fork/exec children of the scoded CLI (SCODED_CLI_BIN),
// so each per-worker peak is a genuinely separate address space measured
// from its /proc/<pid>/status just before the fleet is dismissed.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/sharded_check.h"
#include "core/violation.h"
#include "distributed/coordinator.h"
#include "distributed/substrate.h"

#ifndef SCODED_CLI_BIN
#error "bench_distributed_check needs SCODED_CLI_BIN (the worker program)"
#endif

namespace {

using namespace scoded;

double Ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

// Reads one "Vm...: <kB> kB" line from /proc/<pid>/status. Returns -1 when
// unavailable, in which case the memory section is skipped.
double StatusMb(int64_t pid, const char* key) {
  std::ifstream status("/proc/" + std::to_string(pid) + "/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.compare(0, std::strlen(key), key) == 0) {
      return std::strtod(line.c_str() + std::strlen(key), nullptr) / 1024.0;
    }
  }
  return -1.0;
}

void GenerateCsv(const std::string& path, size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::ofstream out(path);
  out << "Model,Color,Price,Mileage\n";
  const char* models[] = {"civic", "corolla", "focus", "golf", "a4", "i3"};
  const char* colors[] = {"red", "blue", "white", "black"};
  for (size_t i = 0; i < rows; ++i) {
    int64_t m = rng.UniformInt(0, 5);
    int64_t c = rng.UniformInt(0, 9) < 4 ? m % 4 : rng.UniformInt(0, 3);
    out << models[m] << ',' << colors[c] << ',' << (1000 + m * 250 + rng.UniformInt(0, 400))
        << ',' << rng.UniformInt(0, 120000) << '\n';
  }
}

std::vector<ApproximateSc> Constraints() {
  return {
      {ParseConstraint("Model _||_ Color").value(), 0.05},
      {ParseConstraint("Model !_||_ Price").value(), 0.3},
      {ParseConstraint("Color _||_ Price | Model").value(), 0.05},
  };
}

// One formatted line per constraint; used to assert distributed == single.
std::vector<std::string> Render(const std::vector<ViolationReport>& reports) {
  std::vector<std::string> lines;
  for (const ViolationReport& report : reports) {
    char line[128];
    std::snprintf(line, sizeof(line), "%d p=%.17g stat=%.17g n=%lld", report.violated ? 1 : 0,
                  report.p_value, report.test.statistic, static_cast<long long>(report.test.n));
    lines.push_back(line);
  }
  return lines;
}

// Fork/exec substrate that samples each worker's peak RSS after every
// response — while the child is demonstrably alive (a zombie's
// /proc/<pid>/status has no memory fields, so sampling at teardown is too
// late). Teardown is single-threaded, after the dispatch pumps join, so
// collecting the per-channel maxima there needs no locking.
class MeasuringSubstrate : public dist::Substrate {
 public:
  class Channel : public dist::WorkerChannel {
   public:
    Channel(std::unique_ptr<dist::WorkerChannel> inner, std::vector<double>* peaks)
        : inner_(std::move(inner)), peaks_(peaks) {}
    ~Channel() override {
      if (peak_ >= 0.0) {
        peaks_->push_back(peak_);
      }
    }
    Status Send(std::string_view payload) override { return inner_->Send(payload); }
    Result<std::string> Receive(int deadline_millis) override {
      Result<std::string> payload = inner_->Receive(deadline_millis);
      if (payload.ok() && inner_->pid() > 0) {
        peak_ = std::max(peak_, StatusMb(inner_->pid(), "VmHWM:"));
      }
      return payload;
    }
    void Kill() override { inner_->Kill(); }
    int64_t pid() const override { return inner_->pid(); }

   private:
    std::unique_ptr<dist::WorkerChannel> inner_;
    std::vector<double>* peaks_;
    double peak_ = -1.0;
  };

  MeasuringSubstrate() : inner_(SCODED_CLI_BIN, {"worker"}) {}

  Result<std::unique_ptr<dist::WorkerChannel>> Spawn(size_t worker_index) override {
    SCODED_ASSIGN_OR_RETURN(std::unique_ptr<dist::WorkerChannel> channel,
                            inner_.Spawn(worker_index));
    return std::unique_ptr<dist::WorkerChannel>(new Channel(std::move(channel), &peaks));
  }

  std::vector<double> peaks;

 private:
  dist::ForkExecSubstrate inner_;
};

struct RunStats {
  double ms = 0.0;
  double max_worker_peak_mb = -1.0;
  std::vector<std::string> lines;
};

RunStats RunDistributed(const std::string& path, int workers) {
  MeasuringSubstrate substrate;
  dist::DistributedCheckOptions options;
  options.base.reader.shard_rows = 4096;
  options.workers = workers;
  auto start = std::chrono::steady_clock::now();
  ShardedCheckResult result =
      dist::DistributedCheckAll(path, Constraints(), substrate, options).value();
  RunStats stats;
  stats.ms = Ms(start);
  for (double peak : substrate.peaks) {
    stats.max_worker_peak_mb = std::max(stats.max_worker_peak_mb, peak);
  }
  stats.lines = Render(result.reports);
  return stats;
}

RunStats RunSingle(const std::string& path) {
  ShardedCheckOptions options;
  options.reader.shard_rows = 4096;
  auto start = std::chrono::steady_clock::now();
  ShardedCheckResult result = ShardedCheckAll(path, Constraints(), options).value();
  RunStats stats;
  stats.ms = Ms(start);
  stats.lines = Render(result.reports);
  return stats;
}

}  // namespace

int main() {
  bench::Init("distributed_check");
  const std::vector<size_t> kSizes = {20000, 80000, 320000};
  const size_t kLargest = kSizes.back();

  std::vector<std::string> paths;
  for (size_t rows : kSizes) {
    paths.push_back("distributed_bench_" + std::to_string(rows) + ".csv");
    GenerateCsv(paths.back(), rows, 1234 + rows);
  }

  bool identical = true;

  // Per-worker peak RSS as the file grows 16x, 2 workers. Each worker's
  // peak comes from its own /proc/<pid>/status, so coordinator allocations
  // cannot pollute it.
  bench::PrintTitle("per-worker peak RSS (2 fork workers, shard_rows = 4096)");
  std::vector<RunStats> grows;
  for (size_t i = 0; i < kSizes.size(); ++i) {
    RunStats single = RunSingle(paths[i]);
    grows.push_back(RunDistributed(paths[i], 2));
    identical = identical && grows[i].lines == single.lines;
    std::printf("rows=%-7zu ms=%-9.1f worker_peak_mb=%.2f\n", kSizes[i], grows[i].ms,
                grows[i].max_worker_peak_mb);
    bench::RecordValue("dist_ms_" + std::to_string(kSizes[i]), grows[i].ms);
    if (grows[i].max_worker_peak_mb >= 0.0) {
      bench::RecordValue("worker_peak_mb_" + std::to_string(kSizes[i]),
                         grows[i].max_worker_peak_mb);
    }
  }
  if (grows.front().max_worker_peak_mb > 0.0 && grows.back().max_worker_peak_mb >= 0.0) {
    double growth = grows.back().max_worker_peak_mb / grows.front().max_worker_peak_mb;
    std::printf("per-worker peak growth over 16x rows: %.2fx\n", growth);
    bench::RecordValue("worker_peak_growth_16x_rows", growth);
  }

  // Scale-out overhead at the largest size: the coordination tax of the
  // wire round trips and fold vs the same work in one process.
  bench::PrintTitle("scale-out overhead vs single process (320k rows)");
  RunStats single = RunSingle(paths.back());
  std::printf("workers=0 ms=%-9.1f (single process)\n", single.ms);
  bench::RecordValue("single_ms_" + std::to_string(kLargest), single.ms);
  for (int workers : {1, 2, 4}) {
    RunStats dist = RunDistributed(paths.back(), workers);
    identical = identical && dist.lines == single.lines;
    double overhead = single.ms > 0.0 ? dist.ms / single.ms : -1.0;
    std::printf("workers=%d ms=%-9.1f overhead=%.2fx\n", workers, dist.ms, overhead);
    bench::RecordValue("dist_ms_" + std::to_string(kLargest) + "_w" + std::to_string(workers),
                       dist.ms);
    if (overhead >= 0.0) {
      bench::RecordValue("overhead_w" + std::to_string(workers), overhead);
    }
  }

  bench::PrintTitle("distributed vs single-process result identity");
  std::printf("reports identical at every size and worker count: %s\n", identical ? "yes" : "NO");
  bench::RecordValue("reports_identical", identical ? 1.0 : 0.0);

  for (const std::string& path : paths) {
    std::remove(path.c_str());
  }
  return identical ? 0 : 1;
}
