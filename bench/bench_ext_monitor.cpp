// Extension bench — streaming SC monitoring (ScMonitor) vs batch re-tests.
//
// The Sec. 8 "incremental on-line SCODED" extension: compares the cost of
// maintaining the violation test under row appends against re-running the
// batch test after every batch, for both statistic families.

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/rng.h"
#include "core/sc_monitor.h"
#include "core/violation.h"
#include "table/table.h"

namespace {

using namespace scoded;

double Ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  scoded::bench::Init("ext_monitor");
  using namespace scoded;
  std::printf("=== Extension: streaming monitor vs batch re-testing ===\n");

  // ---- categorical pair: O(1) incremental appends ----------------------
  {
    std::printf("\ncategorical pair (G-test), appends + p-value per batch of 100:\n");
    std::printf("%-10s %-16s %-16s\n", "rows", "monitor(ms)", "batch-retest(ms)");
    for (size_t total : {2000, 10000, 50000, 200000}) {
      Rng rng(1);
      ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.3};
      TableBuilder proto;
      proto.AddCategorical("x", {});
      proto.AddCategorical("y", {});
      ScMonitor monitor = ScMonitor::Create(std::move(proto).Build().value(), asc).value();
      auto start = std::chrono::steady_clock::now();
      for (size_t i = 0; i < total; ++i) {
        std::string x = "a" + std::to_string(rng.UniformInt(0, 5));
        std::string y = rng.Bernoulli(0.5) ? x + "t" : "b" + std::to_string(rng.UniformInt(0, 5));
        (void)monitor.AppendCategorical(x, y);
        if (i % 100 == 99) {
          (void)monitor.CurrentPValue();
        }
      }
      double monitor_ms = Ms(start);

      // Batch baseline: rebuild the table and re-test after every batch.
      Rng rng2(1);
      std::vector<std::string> xs;
      std::vector<std::string> ys;
      start = std::chrono::steady_clock::now();
      double batch_ms;
      {
        for (size_t i = 0; i < total; ++i) {
          std::string x = "a" + std::to_string(rng2.UniformInt(0, 5));
          std::string y =
              rng2.Bernoulli(0.5) ? x + "t" : "b" + std::to_string(rng2.UniformInt(0, 5));
          xs.push_back(x);
          ys.push_back(y);
          if (i % 100 == 99) {
            TableBuilder builder;
            builder.AddCategorical("x", xs);
            builder.AddCategorical("y", ys);
            Table t = std::move(builder).Build().value();
            (void)DetectViolation(t, asc).value();
          }
        }
        batch_ms = Ms(start);
      }
      std::printf("%-10zu %-16.1f %-16.1f\n", total, monitor_ms, batch_ms);
    }
  }

  // ---- numeric pair: per-row alarming (the monitoring use case) --------
  {
    std::printf("\nnumeric pair (tau), p-value checked after EVERY row (alarm ASAP):\n");
    std::printf("%-10s %-16s %-16s\n", "rows", "monitor(ms)", "batch-retest(ms)");
    for (size_t total : {500, 2000, 8000}) {
      Rng rng(2);
      ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.3};
      TableBuilder proto;
      proto.AddNumeric("x", {});
      proto.AddNumeric("y", {});
      ScMonitor monitor = ScMonitor::Create(std::move(proto).Build().value(), asc).value();
      auto start = std::chrono::steady_clock::now();
      for (size_t i = 0; i < total; ++i) {
        double v = rng.Normal();
        (void)monitor.AppendNumeric(v, v + rng.Normal(0.0, 0.5));
        (void)monitor.CurrentPValue();
      }
      double monitor_ms = Ms(start);

      Rng rng2(2);
      std::vector<double> xs;
      std::vector<double> ys;
      start = std::chrono::steady_clock::now();
      for (size_t i = 0; i < total; ++i) {
        double v = rng2.Normal();
        xs.push_back(v);
        ys.push_back(v + rng2.Normal(0.0, 0.5));
        TableBuilder builder;
        builder.AddNumeric("x", xs);
        builder.AddNumeric("y", ys);
        Table t = std::move(builder).Build().value();
        (void)DetectViolation(t, asc).value();
      }
      double batch_ms = Ms(start);
      std::printf("%-10zu %-16.1f %-16.1f\n", total, monitor_ms, batch_ms);
    }
  }
  std::printf("\nexpected shape: the categorical monitor's O(1) appends dominate batch\n"
              "re-testing outright; the tau monitor's amortised O(log^2 n) appends\n"
              "(concordance index, see bench_monitor_stream) beat the\n"
              "O(n log n)-per-check batch re-test at every check cadence.\n");
  return 0;
}
