// Micro-benchmarks (google-benchmark) of the statistical kernels that
// determine SCODED's throughput: Kendall τ (naive vs O(n log n)), the
// Algorithm 2 segment-tree benefit initialisation, the G-test, raw
// segment-tree vs Fenwick-tree index operations, and the stratified
// conditional tests at 1 vs N pool threads (the per-stratum fan-out of
// the parallel execution layer).

#include <benchmark/benchmark.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "obs/flightrec.h"
#include "obs/timeseries.h"
#include "stats/contingency.h"
#include "stats/hypothesis.h"
#include "stats/kendall.h"
#include "stats/segment_tree.h"
#include "table/table.h"

namespace {

using namespace scoded;

std::pair<std::vector<double>, std::vector<double>> RandomXy(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double v = rng.Normal();
    x[i] = v;
    y[i] = v + rng.Normal(0.0, 1.0);
  }
  return {std::move(x), std::move(y)};
}

void BM_KendallTauFast(benchmark::State& state) {
  auto [x, y] = RandomXy(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KendallTau(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KendallTauFast)->Range(256, 65536)->Complexity(benchmark::oNLogN);

void BM_KendallTauNaive(benchmark::State& state) {
  auto [x, y] = RandomXy(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KendallTauNaive(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KendallTauNaive)->Range(256, 4096)->Complexity(benchmark::oNSquared);

void BM_TauBenefitsSegmentTree(benchmark::State& state) {
  auto [x, y] = RandomXy(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeTauBenefits(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TauBenefitsSegmentTree)->Range(256, 65536)->Complexity(benchmark::oNLogN);

void BM_TauBenefitsNaive(benchmark::State& state) {
  auto [x, y] = RandomXy(static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeTauBenefitsNaive(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TauBenefitsNaive)->Range(256, 4096)->Complexity(benchmark::oNSquared);

void BM_GStatistic(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<int32_t> x(n);
  std::vector<int32_t> y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = static_cast<int32_t>(rng.UniformInt(0, 9));
    y[i] = static_cast<int32_t>(rng.UniformInt(0, 9));
  }
  for (auto _ : state) {
    ContingencyTable ct(x, y, 10, 10);
    benchmark::DoNotOptimize(ct.GStatistic());
  }
}
BENCHMARK(BM_GStatistic)->Range(1024, 262144);

void BM_SegmentTreeOps(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  SegmentTree tree(n);
  Rng rng(6);
  size_t i = 0;
  for (auto _ : state) {
    size_t pos = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    tree.Add(pos, 1);
    benchmark::DoNotOptimize(tree.Sum(0, pos));
    if (++i % n == 0) {
      tree.Clear();
    }
  }
}
BENCHMARK(BM_SegmentTreeOps)->Range(1024, 1048576);

void BM_FenwickTreeOps(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  FenwickTree tree(n);
  Rng rng(7);
  for (auto _ : state) {
    size_t pos = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    tree.Add(pos, 1);
    benchmark::DoNotOptimize(tree.Sum(0, pos));
  }
}
BENCHMARK(BM_FenwickTreeOps)->Range(1024, 1048576);

// ---------------------------------------------------------------------------
// Stratified conditional tests, serial vs parallel. Arg 0 is the row
// count, arg 1 the pool thread count (1 = the fully serial path). On a
// multi-core host the parallel rows should approach threads× the serial
// throughput; on a single core they measure the fork/join overhead.
// ---------------------------------------------------------------------------

// X ⊥̸ Y | Z with ~64 strata: numeric X/Y driven by a shared signal,
// categorical Z as the conditioning set.
Table StratifiedTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  std::vector<double> y(n);
  std::vector<std::string> z(n);
  std::vector<std::string> w(n);
  for (size_t i = 0; i < n; ++i) {
    double signal = rng.Normal();
    x[i] = signal + rng.Normal(0.0, 0.5);
    y[i] = signal + rng.Normal(0.0, 0.5);
    z[i] = "z" + std::to_string(rng.UniformInt(0, 63));
    w[i] = "w" + std::to_string(rng.UniformInt(0, 7));
  }
  TableBuilder builder;
  builder.AddNumeric("X", std::move(x));
  builder.AddNumeric("Y", std::move(y));
  builder.AddCategorical("Z", std::move(z));
  builder.AddCategorical("W", std::move(w));
  return std::move(builder).Build().value();
}

void BM_StratifiedTau(benchmark::State& state) {
  Table table = StratifiedTable(static_cast<size_t>(state.range(0)), 8);
  parallel::SetThreads(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IndependenceTest(table, 0, 1, {2}).value());
  }
  parallel::SetThreads(0);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StratifiedTau)
    ->ArgsProduct({{16384, 65536}, {1, 2, 4}})
    ->ArgNames({"n", "threads"});

void BM_StratifiedG(benchmark::State& state) {
  Table table = StratifiedTable(static_cast<size_t>(state.range(0)), 9);
  parallel::SetThreads(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    // W vs discretised X given Z: the categorical branch of the dispatcher.
    benchmark::DoNotOptimize(IndependenceTest(table, 3, 0, {2}).value());
  }
  parallel::SetThreads(0);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StratifiedG)
    ->ArgsProduct({{16384, 65536}, {1, 2, 4}})
    ->ArgNames({"n", "threads"});

// ---------------------------------------------------------------------------
// Live-telemetry overhead. The same stratified kernels with the
// time-series sampler ticking at its default 10 Hz versus obs idle: the
// sampler is read-only over the hot-path atomics, so the /sampled rows
// must stay within ~2% of the /idle rows (the acceptance bar for the
// obs/timeseries layer). Not compiled in the SCODED_DISABLE_OBS build,
// where there is no sampler to measure.
// ---------------------------------------------------------------------------

#if !defined(SCODED_OBS_DISABLED)

void BM_StratifiedTauSampled(benchmark::State& state) {
  Table table = StratifiedTable(static_cast<size_t>(state.range(0)), 8);
  parallel::SetThreads(static_cast<int>(state.range(1)));
  bool sampled = state.range(2) != 0;
  if (sampled) {
    (void)obs::Sampler::Global().Start();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(IndependenceTest(table, 0, 1, {2}).value());
  }
  if (sampled) {
    obs::Sampler::Global().Stop();
  }
  parallel::SetThreads(0);
}
BENCHMARK(BM_StratifiedTauSampled)
    ->ArgsProduct({{65536}, {1, 4}, {0, 1}})
    ->ArgNames({"n", "threads", "sampler"});

void BM_StratifiedGSampled(benchmark::State& state) {
  Table table = StratifiedTable(static_cast<size_t>(state.range(0)), 9);
  parallel::SetThreads(static_cast<int>(state.range(1)));
  bool sampled = state.range(2) != 0;
  if (sampled) {
    (void)obs::Sampler::Global().Start();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(IndependenceTest(table, 3, 0, {2}).value());
  }
  if (sampled) {
    obs::Sampler::Global().Stop();
  }
  parallel::SetThreads(0);
}
BENCHMARK(BM_StratifiedGSampled)
    ->ArgsProduct({{65536}, {1, 4}, {0, 1}})
    ->ArgNames({"n", "threads", "sampler"});

// ---------------------------------------------------------------------------
// Flight-recorder overhead. The same stratified kernels with the journal
// armed (spans and heartbeats land in the per-thread lock-free rings)
// versus disarmed. The journal is a handful of relaxed atomic stores per
// span, so the /flightrec rows must stay within ~2% of the disarmed rows
// (the acceptance bar for the obs/flightrec layer).
// ---------------------------------------------------------------------------

void BM_StratifiedTauJournal(benchmark::State& state) {
  Table table = StratifiedTable(static_cast<size_t>(state.range(0)), 8);
  parallel::SetThreads(static_cast<int>(state.range(1)));
  bool armed = state.range(2) != 0;
  if (armed) {
    (void)obs::ArmFlightRecorder();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(IndependenceTest(table, 0, 1, {2}).value());
  }
  if (armed) {
    obs::DisarmFlightRecorder();
  }
  parallel::SetThreads(0);
}
BENCHMARK(BM_StratifiedTauJournal)
    ->ArgsProduct({{65536}, {1, 4}, {0, 1}})
    ->ArgNames({"n", "threads", "flightrec"});

void BM_StratifiedGJournal(benchmark::State& state) {
  Table table = StratifiedTable(static_cast<size_t>(state.range(0)), 9);
  parallel::SetThreads(static_cast<int>(state.range(1)));
  bool armed = state.range(2) != 0;
  if (armed) {
    (void)obs::ArmFlightRecorder();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(IndependenceTest(table, 3, 0, {2}).value());
  }
  if (armed) {
    obs::DisarmFlightRecorder();
  }
  parallel::SetThreads(0);
}
BENCHMARK(BM_StratifiedGJournal)
    ->ArgsProduct({{65536}, {1, 4}, {0, 1}})
    ->ArgNames({"n", "threads", "flightrec"});

#endif  // !SCODED_OBS_DISABLED

}  // namespace

BENCHMARK_MAIN();
