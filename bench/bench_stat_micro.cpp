// Micro-benchmarks of the statistical kernels that determine SCODED's
// throughput, in two parts:
//
//  1. Width-specialised SIMD kernel sections (always run, recorded into
//     BENCH_stat_micro.json for the benchdiff gate): compressed-columnar
//     contingency accumulate at u8/u16/u32 lane widths, the τ rank/merge
//     passes (dense ranks + inversion count), and word-level wavelet
//     popcounts vs the per-bit descent baseline — each timed under
//     SCODED_SIMD=off and under the best CPU-supported path, with the
//     speedup recorded per kernel family.
//  2. The google-benchmark suite (skipped under --kernels-only): Kendall
//     τ (naive vs O(n log n)), the Algorithm 2 segment-tree benefit
//     initialisation, the G-test, raw segment-tree vs Fenwick-tree index
//     operations, and the stratified conditional tests at 1 vs N pool
//     threads (the per-stratum fan-out of the parallel execution layer).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "obs/flightrec.h"
#include "obs/timeseries.h"
#include "stats/colcodec.h"
#include "stats/contingency.h"
#include "stats/hypothesis.h"
#include "stats/kendall.h"
#include "stats/ranks.h"
#include "stats/segment_tree.h"
#include "stats/simd.h"
#include "table/table.h"

namespace {

using namespace scoded;

std::pair<std::vector<double>, std::vector<double>> RandomXy(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double v = rng.Normal();
    x[i] = v;
    y[i] = v + rng.Normal(0.0, 1.0);
  }
  return {std::move(x), std::move(y)};
}

void BM_KendallTauFast(benchmark::State& state) {
  auto [x, y] = RandomXy(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KendallTau(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KendallTauFast)->Range(256, 65536)->Complexity(benchmark::oNLogN);

void BM_KendallTauNaive(benchmark::State& state) {
  auto [x, y] = RandomXy(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KendallTauNaive(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KendallTauNaive)->Range(256, 4096)->Complexity(benchmark::oNSquared);

void BM_TauBenefitsSegmentTree(benchmark::State& state) {
  auto [x, y] = RandomXy(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeTauBenefits(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TauBenefitsSegmentTree)->Range(256, 65536)->Complexity(benchmark::oNLogN);

void BM_TauBenefitsNaive(benchmark::State& state) {
  auto [x, y] = RandomXy(static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeTauBenefitsNaive(x, y));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TauBenefitsNaive)->Range(256, 4096)->Complexity(benchmark::oNSquared);

void BM_GStatistic(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<int32_t> x(n);
  std::vector<int32_t> y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = static_cast<int32_t>(rng.UniformInt(0, 9));
    y[i] = static_cast<int32_t>(rng.UniformInt(0, 9));
  }
  for (auto _ : state) {
    ContingencyTable ct(x, y, 10, 10);
    benchmark::DoNotOptimize(ct.GStatistic());
  }
}
BENCHMARK(BM_GStatistic)->Range(1024, 262144);

void BM_SegmentTreeOps(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  SegmentTree tree(n);
  Rng rng(6);
  size_t i = 0;
  for (auto _ : state) {
    size_t pos = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    tree.Add(pos, 1);
    benchmark::DoNotOptimize(tree.Sum(0, pos));
    if (++i % n == 0) {
      tree.Clear();
    }
  }
}
BENCHMARK(BM_SegmentTreeOps)->Range(1024, 1048576);

void BM_FenwickTreeOps(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  FenwickTree tree(n);
  Rng rng(7);
  for (auto _ : state) {
    size_t pos = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    tree.Add(pos, 1);
    benchmark::DoNotOptimize(tree.Sum(0, pos));
  }
}
BENCHMARK(BM_FenwickTreeOps)->Range(1024, 1048576);

// ---------------------------------------------------------------------------
// Stratified conditional tests, serial vs parallel. Arg 0 is the row
// count, arg 1 the pool thread count (1 = the fully serial path). On a
// multi-core host the parallel rows should approach threads× the serial
// throughput; on a single core they measure the fork/join overhead.
// ---------------------------------------------------------------------------

// X ⊥̸ Y | Z with ~64 strata: numeric X/Y driven by a shared signal,
// categorical Z as the conditioning set.
Table StratifiedTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  std::vector<double> y(n);
  std::vector<std::string> z(n);
  std::vector<std::string> w(n);
  for (size_t i = 0; i < n; ++i) {
    double signal = rng.Normal();
    x[i] = signal + rng.Normal(0.0, 0.5);
    y[i] = signal + rng.Normal(0.0, 0.5);
    z[i] = "z" + std::to_string(rng.UniformInt(0, 63));
    w[i] = "w" + std::to_string(rng.UniformInt(0, 7));
  }
  TableBuilder builder;
  builder.AddNumeric("X", std::move(x));
  builder.AddNumeric("Y", std::move(y));
  builder.AddCategorical("Z", std::move(z));
  builder.AddCategorical("W", std::move(w));
  return std::move(builder).Build().value();
}

void BM_StratifiedTau(benchmark::State& state) {
  Table table = StratifiedTable(static_cast<size_t>(state.range(0)), 8);
  parallel::SetThreads(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IndependenceTest(table, 0, 1, {2}).value());
  }
  parallel::SetThreads(0);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StratifiedTau)
    ->ArgsProduct({{16384, 65536}, {1, 2, 4}})
    ->ArgNames({"n", "threads"});

void BM_StratifiedG(benchmark::State& state) {
  Table table = StratifiedTable(static_cast<size_t>(state.range(0)), 9);
  parallel::SetThreads(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    // W vs discretised X given Z: the categorical branch of the dispatcher.
    benchmark::DoNotOptimize(IndependenceTest(table, 3, 0, {2}).value());
  }
  parallel::SetThreads(0);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StratifiedG)
    ->ArgsProduct({{16384, 65536}, {1, 2, 4}})
    ->ArgNames({"n", "threads"});

// ---------------------------------------------------------------------------
// Live-telemetry overhead. The same stratified kernels with the
// time-series sampler ticking at its default 10 Hz versus obs idle: the
// sampler is read-only over the hot-path atomics, so the /sampled rows
// must stay within ~2% of the /idle rows (the acceptance bar for the
// obs/timeseries layer). Not compiled in the SCODED_DISABLE_OBS build,
// where there is no sampler to measure.
// ---------------------------------------------------------------------------

#if !defined(SCODED_OBS_DISABLED)

void BM_StratifiedTauSampled(benchmark::State& state) {
  Table table = StratifiedTable(static_cast<size_t>(state.range(0)), 8);
  parallel::SetThreads(static_cast<int>(state.range(1)));
  bool sampled = state.range(2) != 0;
  if (sampled) {
    (void)obs::Sampler::Global().Start();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(IndependenceTest(table, 0, 1, {2}).value());
  }
  if (sampled) {
    obs::Sampler::Global().Stop();
  }
  parallel::SetThreads(0);
}
BENCHMARK(BM_StratifiedTauSampled)
    ->ArgsProduct({{65536}, {1, 4}, {0, 1}})
    ->ArgNames({"n", "threads", "sampler"});

void BM_StratifiedGSampled(benchmark::State& state) {
  Table table = StratifiedTable(static_cast<size_t>(state.range(0)), 9);
  parallel::SetThreads(static_cast<int>(state.range(1)));
  bool sampled = state.range(2) != 0;
  if (sampled) {
    (void)obs::Sampler::Global().Start();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(IndependenceTest(table, 3, 0, {2}).value());
  }
  if (sampled) {
    obs::Sampler::Global().Stop();
  }
  parallel::SetThreads(0);
}
BENCHMARK(BM_StratifiedGSampled)
    ->ArgsProduct({{65536}, {1, 4}, {0, 1}})
    ->ArgNames({"n", "threads", "sampler"});

// ---------------------------------------------------------------------------
// Flight-recorder overhead. The same stratified kernels with the journal
// armed (spans and heartbeats land in the per-thread lock-free rings)
// versus disarmed. The journal is a handful of relaxed atomic stores per
// span, so the /flightrec rows must stay within ~2% of the disarmed rows
// (the acceptance bar for the obs/flightrec layer).
// ---------------------------------------------------------------------------

void BM_StratifiedTauJournal(benchmark::State& state) {
  Table table = StratifiedTable(static_cast<size_t>(state.range(0)), 8);
  parallel::SetThreads(static_cast<int>(state.range(1)));
  bool armed = state.range(2) != 0;
  if (armed) {
    (void)obs::ArmFlightRecorder();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(IndependenceTest(table, 0, 1, {2}).value());
  }
  if (armed) {
    obs::DisarmFlightRecorder();
  }
  parallel::SetThreads(0);
}
BENCHMARK(BM_StratifiedTauJournal)
    ->ArgsProduct({{65536}, {1, 4}, {0, 1}})
    ->ArgNames({"n", "threads", "flightrec"});

void BM_StratifiedGJournal(benchmark::State& state) {
  Table table = StratifiedTable(static_cast<size_t>(state.range(0)), 9);
  parallel::SetThreads(static_cast<int>(state.range(1)));
  bool armed = state.range(2) != 0;
  if (armed) {
    (void)obs::ArmFlightRecorder();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(IndependenceTest(table, 3, 0, {2}).value());
  }
  if (armed) {
    obs::DisarmFlightRecorder();
  }
  parallel::SetThreads(0);
}
BENCHMARK(BM_StratifiedGJournal)
    ->ArgsProduct({{65536}, {1, 4}, {0, 1}})
    ->ArgNames({"n", "threads", "flightrec"});

#endif  // !SCODED_OBS_DISABLED

// ---------------------------------------------------------------------------
// SIMD kernel sections. Each family is timed twice through bench::BestOf
// (one discarded cold-cache warm-up, then best of kKernelReps): once with
// the dispatch forced to the scalar reference (the SCODED_SIMD=off
// behaviour) and once on the best path this CPU supports. The recorded
// `*_speedup` values are what the perf acceptance bar reads; the section
// wall-clocks feed the benchdiff regression gate.
// ---------------------------------------------------------------------------

constexpr int kKernelReps = 5;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<int32_t> RandomCategorical(size_t n, size_t cardinality, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> codes(n);
  for (int32_t& c : codes) {
    c = static_cast<int32_t>(rng.UniformInt(0, static_cast<int64_t>(cardinality) - 1));
  }
  return codes;
}

// Times one full contingency accumulate over pre-encoded columns under
// the currently forced dispatch path.
double ContingencyMs(const CompressedCodes& x, const CompressedCodes& y) {
  std::vector<int64_t> counts(x.cardinality() * y.cardinality());
  auto start = std::chrono::steady_clock::now();
  simd::Active().contingency(x, y, counts.data());
  double ms = MsSince(start);
  if (counts[0] == -1) {
    std::printf("impossible\n");  // keep the accumulate observable
  }
  return ms;
}

// Runs `measure` under the forced path and returns its best-of timing.
template <typename Fn>
double ForcedMs(simd::Path path, Fn&& measure) {
  SCODED_CHECK(simd::ForcePath(path));
  return bench::BestOf(kKernelReps, measure);
}

// Records the off/fast pair plus their ratio under `label`.
double RecordSpeedup(const std::string& label, double off_ms, double fast_ms) {
  double speedup = fast_ms > 0.0 ? off_ms / fast_ms : 0.0;
  std::printf("%-32s scalar %8.2f ms   simd %8.2f ms   speedup %.2fx\n", label.c_str(), off_ms,
              fast_ms, speedup);
  bench::RecordValue(label + "_scalar_ms", off_ms);
  bench::RecordValue(label + "_simd_ms", fast_ms);
  bench::RecordValue(label + "_speedup", speedup);
  return speedup;
}

void RunKernelBenchmarks() {
  const simd::Path best = simd::BestSupportedPath();
  std::printf("dispatch: scalar baseline vs best supported path '%s'\n", simd::PathName(best));

  bench::PrintTitle("kernels: contingency accumulate by lane width");
  {
    struct Config {
      const char* label;
      size_t n;
      size_t cx;
      size_t cy;
    };
    // Widths follow the cardinalities: <=256 -> u8, <=65536 -> u16, else
    // u32 (mixed-width pairs exercise the portable blocked fallback).
    const Config configs[] = {
        {"contingency_u8_10x10", 1u << 20, 10, 10},
        {"contingency_u8_256x256", 1u << 20, 256, 256},
        {"contingency_u16_300x300", 1u << 20, 300, 300},
        {"contingency_u32_mixed", 1u << 19, 100000, 8},
    };
    double family = 0.0;
    for (const Config& config : configs) {
      CompressedCodes x =
          CompressedCodes::Encode(RandomCategorical(config.n, config.cx, 21), config.cx);
      CompressedCodes y =
          CompressedCodes::Encode(RandomCategorical(config.n, config.cy, 22), config.cy);
      double off = ForcedMs(simd::Path::kScalar, [&] { return ContingencyMs(x, y); });
      double fast = ForcedMs(best, [&] { return ContingencyMs(x, y); });
      family = std::max(family, RecordSpeedup(config.label, off, fast));
    }
    bench::RecordValue("family_contingency_speedup", family);
  }

  bench::PrintTitle("kernels: tau rank/merge passes");
  {
    const size_t n = 1u << 20;
    Rng rng(23);
    std::vector<double> values(n);
    for (double& v : values) {
      // A third of the values collide so the dense-rank pass sees real
      // tie groups, as τ columns do.
      v = (rng.UniformInt(0, 2) == 0) ? static_cast<double>(rng.UniformInt(0, 999))
                                      : rng.Normal();
    }
    std::vector<size_t> ranks(n);
    auto rank_ms = [&] {
      auto start = std::chrono::steady_clock::now();
      size_t distinct = simd::Active().dense_ranks(values.data(), n, ranks.data());
      double ms = MsSince(start);
      if (distinct == 0) {
        std::printf("impossible\n");
      }
      return ms;
    };
    double rank_off = ForcedMs(simd::Path::kScalar, rank_ms);
    double rank_fast = ForcedMs(best, rank_ms);
    double rank_speedup = RecordSpeedup("tau_dense_ranks_1m", rank_off, rank_fast);

    std::vector<uint32_t> sequence(n);
    for (size_t i = 0; i < n; ++i) {
      sequence[i] = static_cast<uint32_t>(ranks[i]);
    }
    std::vector<uint32_t> work(n);
    std::vector<uint32_t> scratch(n);
    auto merge_ms = [&] {
      work = sequence;  // the kernel permutes its input in place
      auto start = std::chrono::steady_clock::now();
      int64_t inversions = simd::Active().count_inversions(work.data(), scratch.data(), n);
      double ms = MsSince(start);
      if (inversions == -1) {
        std::printf("impossible\n");
      }
      return ms;
    };
    double merge_off = ForcedMs(simd::Path::kScalar, merge_ms);
    double merge_fast = ForcedMs(best, merge_ms);
    double merge_speedup = RecordSpeedup("tau_count_inversions_1m", merge_off, merge_fast);
    // The family headline weighs the passes as τ runs them: one rank pass
    // plus one merge pass per tested pair.
    bench::RecordValue("family_tau_rank_merge_speedup",
                       (rank_off + merge_off) / (rank_fast + merge_fast));
    (void)rank_speedup;
    (void)merge_speedup;
  }

  bench::PrintTitle("kernels: wavelet quadrant popcounts");
  {
    // The ConcordanceIndex workload: PrefixCounts probes against a
    // bit-packed wavelet matrix. Rank directories devolve to popcounts
    // over word runs — word-level popcount vs the scalar per-bit descent
    // is the whole difference. The matrix captures its popcount fn at
    // construction, so each path gets its own build.
    const size_t m = 65536;
    const size_t probes = 200000;
    Rng rng(29);
    std::vector<uint32_t> codes(m);
    for (uint32_t& c : codes) {
      c = static_cast<uint32_t>(rng.UniformInt(0, static_cast<int64_t>(m) - 1));
    }
    std::vector<std::pair<size_t, uint32_t>> queries(probes);
    for (auto& qp : queries) {
      qp.first = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(m)));
      qp.second = static_cast<uint32_t>(rng.UniformInt(0, static_cast<int64_t>(m) - 1));
    }
    auto probe_ms = [&] {
      WaveletMatrix wm(codes, m);
      int64_t sink = 0;
      auto start = std::chrono::steady_clock::now();
      for (const auto& qp : queries) {
        int64_t lt;
        int64_t eq;
        wm.PrefixCounts(qp.first, qp.second, &lt, &eq);
        sink += lt + eq;
      }
      double ms = MsSince(start);
      if (sink == -1) {
        std::printf("impossible\n");
      }
      return ms;
    };
    double off = ForcedMs(simd::Path::kScalar, probe_ms);
    double fast = ForcedMs(best, probe_ms);
    double speedup = RecordSpeedup("wavelet_prefix_counts_200k", off, fast);
    bench::RecordValue("family_wavelet_popcount_speedup", speedup);
  }

  // Hand the dispatch back to the environment for anything that follows.
  simd::ResetPathFromEnvironment();
}

}  // namespace

int main(int argc, char** argv) {
  bool kernels_only = false;
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    if (argv[i] != nullptr && std::strcmp(argv[i], "--kernels-only") == 0) {
      kernels_only = true;
      continue;
    }
    bench_argv.push_back(argv[i]);
  }
  scoded::bench::Init("stat_micro");
  RunKernelBenchmarks();
  if (kernels_only) {
    return 0;
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
