// Figure 10 — Boston, dependence SC N ⊥̸ D: F-score@k sweeps for SCODED
// (K strategy), DCDetect, and DBoost under sorting, imputation, and
// combination errors at a moderate error rate.
//
// Expected shape (Sec. 6.3): SCODED clearly ahead across error types;
// better on sorting/combination (F ~0.6 average, ~0.8 max) than on
// imputation (~0.5 average), because sorting errors disturb SCs more.

#include <cstdio>
#include <set>

#include "baselines/dboost.h"
#include "baselines/dcdetect.h"
#include "bench_util.h"
#include "datasets/boston.h"
#include "datasets/errors.h"
#include "eval/scoded_detector.h"

int main() {
  scoded::bench::Init("fig10_boston_dependence");
  using namespace scoded;
  using bench::KSweep;
  using bench::PrintFScoreSweep;
  using bench::PrintTitle;

  BostonOptions options;
  Table clean = GenerateBostonData(options).value();
  std::printf("boston data: %zu rows; SC: N !_||_ D; error rate 30%% on column N\n",
              clean.NumRows());

  // N and D anticorrelate, so the order DC demands D strictly falls as N
  // rises: not(t0.N > t1.N and t0.D >= t1.D).
  DenialConstraint anti_order;
  anti_order.predicates.push_back({0, "N", CompareOp::kGt, 1, "N"});
  anti_order.predicates.push_back({0, "D", CompareOp::kGe, 1, "D"});

  for (SyntheticErrorType type : {SyntheticErrorType::kSorting, SyntheticErrorType::kImputation,
                                  SyntheticErrorType::kCombination}) {
    InjectionOptions inject;
    inject.rate = 0.3;
    InjectionResult dirty = InjectError(type, clean, "N", inject).value();
    std::set<size_t> truth(dirty.dirty_rows.begin(), dirty.dirty_rows.end());
    PrintTitle(std::string("Figure 10, ") + std::string(SyntheticErrorTypeToString(type)) +
               " error");
    ScodedDetector scoded({{ParseConstraint("N !_||_ D").value(), 0.05}});
    DcDetect dcdetect({anti_order});
    DboostOptions dboost_options;
    dboost_options.model = DboostModel::kGaussian;
    dboost_options.columns = {"N", "D"};
    Dboost dboost(dboost_options);
    PrintFScoreSweep(dirty.table, truth, {&scoded, &dcdetect, &dboost}, KSweep(truth.size()));
  }
  return 0;
}
