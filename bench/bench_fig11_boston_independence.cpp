// Figure 11 — Boston, independence SC R ⊥ B: F-score@k for SCODED
// (Kᶜ strategy) vs DBoost under sorting, imputation, and combination
// errors that *install* a spurious R-B dependence (the corrupted values
// are coupled to B). DCDetect is omitted: denial constraints cannot
// express an independence SC (Sec. 2.2 / Table 3).

#include <cstdio>
#include <set>

#include "baselines/dboost.h"
#include "bench_util.h"
#include "datasets/boston.h"
#include "datasets/errors.h"
#include "eval/scoded_detector.h"

int main() {
  scoded::bench::Init("fig11_boston_independence");
  using namespace scoded;
  using bench::KSweep;
  using bench::PrintFScoreSweep;
  using bench::PrintTitle;

  BostonOptions options;
  Table clean = GenerateBostonData(options).value();
  std::printf("boston data: %zu rows; SC: R _||_ B; error rate 30%% on column R,\n"
              "corrupted values coupled to B (the paper's independence-SC variant)\n",
              clean.NumRows());

  for (SyntheticErrorType type : {SyntheticErrorType::kSorting, SyntheticErrorType::kImputation,
                                  SyntheticErrorType::kCombination}) {
    InjectionOptions inject;
    inject.rate = 0.3;
    inject.based_on = "B";  // couple the corruption to B -> R !_||_ B appears
    InjectionResult dirty = InjectError(type, clean, "R", inject).value();
    std::set<size_t> truth(dirty.dirty_rows.begin(), dirty.dirty_rows.end());
    PrintTitle(std::string("Figure 11, ") + std::string(SyntheticErrorTypeToString(type)) +
               " error");
    ScodedDetector scoded({{ParseConstraint("R _||_ B").value(), 0.05}});
    DboostOptions dboost_options;
    dboost_options.model = DboostModel::kGaussian;
    dboost_options.columns = {"R", "B"};
    Dboost dboost(dboost_options);
    PrintFScoreSweep(dirty.table, truth, {&scoded, &dboost}, KSweep(truth.size()));
  }
  std::printf("\nexpected shape: SCODED above DBoost throughout; DCDetect not applicable.\n");
  return 0;
}
