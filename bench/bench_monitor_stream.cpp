// Streaming-monitor scaling bench — per-append cost of the numeric (tau)
// monitor path.
//
// The claim under test: the logarithmic-block concordance index makes
// appends amortised O(log^2 n), so per-append cost is near-flat from 10k
// to 100k rows (ratio <= 2x), where the seed's pair-scan append grows
// linearly (~10x from 5k to 50k). The committed baseline JSON feeds the
// benchdiff regression gate; the scaling ratios are recorded as values.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/sc_monitor.h"
#include "core/stream_monitor.h"
#include "core/violation.h"
#include "stats/segment_tree.h"
#include "table/table.h"

namespace {

using namespace scoded;

double Ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

Table NumericPrototype() {
  TableBuilder builder;
  builder.AddNumeric("x", {});
  builder.AddNumeric("y", {});
  return std::move(builder).Build().value();
}

// One-shot timings at these stream lengths are dominated by scheduler and
// cache noise; each measurement runs through bench::BestOf — one discarded
// cold-cache warm-up, then kReps timed repeats keeping the minimum, the
// standard estimator for the true (noise-free) cost.
constexpr int kReps = 3;

// Appends `total` correlated rows one by one and returns ns per append.
double IndexedAppendNs(size_t total) {
  return bench::BestOf(kReps, [total] {
    Rng rng(7);
    ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.3};
    ScMonitor monitor = ScMonitor::Create(NumericPrototype(), asc).value();
    auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < total; ++i) {
      double v = rng.Normal();
      (void)monitor.AppendNumeric(v, v + rng.Normal(0.0, 0.5));
    }
    return Ms(start) * 1e6 / static_cast<double>(total);
  });
}

// The seed's append: scan every previous point for its pair weight.
double NaiveAppendNs(size_t total) {
  int64_t s = 0;
  double best = bench::BestOf(kReps, [total, &s] {
    Rng rng(7);
    std::vector<double> xs;
    std::vector<double> ys;
    auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < total; ++i) {
      double v = rng.Normal();
      double x = v;
      double y = v + rng.Normal(0.0, 0.5);
      for (size_t j = 0; j < xs.size(); ++j) {
        double dx = (x > xs[j]) - (x < xs[j]);
        double dy = (y > ys[j]) - (y < ys[j]);
        s += static_cast<int64_t>(dx * dy);
      }
      xs.push_back(x);
      ys.push_back(y);
    }
    return Ms(start) * 1e6 / static_cast<double>(total);
  });
  if (s == 0x7fffffff) {
    std::printf("impossible\n");  // keep `s` observable
  }
  return best;
}

}  // namespace

int main() {
  scoded::bench::Init("monitor_stream");

  bench::PrintTitle("tau appends via concordance index (10k vs 100k)");
  {
    double ns_10k = IndexedAppendNs(10000);
    double ns_100k = IndexedAppendNs(100000);
    double ratio = ns_100k / ns_10k;
    std::printf("%-12s %-16s\n", "rows", "append(ns)");
    std::printf("%-12d %-16.0f\n", 10000, ns_10k);
    std::printf("%-12d %-16.0f\n", 100000, ns_100k);
    std::printf("per-append growth 10k -> 100k: %.2fx (flat target: <= 2x)\n", ratio);
    bench::RecordValue("index_append_ns_10k", ns_10k);
    bench::RecordValue("index_append_ns_100k", ns_100k);
    bench::RecordValue("index_append_ratio_10x_rows", ratio);
  }

  bench::PrintTitle("tau appends via pair scan, the seed behaviour (5k vs 50k)");
  {
    double ns_5k = NaiveAppendNs(5000);
    double ns_50k = NaiveAppendNs(50000);
    double ratio = ns_50k / ns_5k;
    std::printf("%-12s %-16s\n", "rows", "append(ns)");
    std::printf("%-12d %-16.0f\n", 5000, ns_5k);
    std::printf("%-12d %-16.0f\n", 50000, ns_50k);
    std::printf("per-append growth 5k -> 50k: %.2fx (linear appends grow ~10x)\n", ratio);
    bench::RecordValue("naive_append_ns_5k", ns_5k);
    bench::RecordValue("naive_append_ns_50k", ns_50k);
    bench::RecordValue("naive_append_ratio_10x_rows", ratio);
  }

  bench::PrintTitle("sliding window (W = 1024) at 100k rows");
  {
    Rng rng(9);
    ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.3};
    MonitorOptions mopts;
    mopts.window = 1024;
    ScMonitor monitor = ScMonitor::Create(NumericPrototype(), asc, {}, mopts).value();
    auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < 100000; ++i) {
      double v = rng.Normal();
      (void)monitor.AppendNumeric(v, v + rng.Normal(0.0, 0.5));
    }
    double ns = Ms(start) * 1e6 / 100000.0;
    std::printf("append(ns) with bounded O(W) state: %.0f (occupancy %zu)\n", ns,
                monitor.WindowOccupancy());
    bench::RecordValue("window_append_ns_100k", ns);
  }

  bench::PrintTitle("memory: wavelet-level bytes per indexed point at 100k");
  {
    Rng rng(11);
    ConcordanceIndex index;
    for (size_t i = 0; i < 100000; ++i) {
      index.Insert(rng.Normal(), rng.Normal());
    }
    double bytes_per_point =
        static_cast<double>(index.IndexBytes()) / static_cast<double>(index.size());
    std::printf("wavelet bytes per point: %.1f, compactions: %lld\n", bytes_per_point,
                static_cast<long long>(index.compactions()));
    bench::RecordValue("index_bytes_per_point_100k", bytes_per_point);
    bench::RecordValue("compactions_100k", static_cast<double>(index.compactions()));
  }

  bench::PrintTitle("block query structures: wavelet matrix vs persistent counter (64k)");
  {
    // The same prefix-count workload both structures answer inside a block:
    // random (prefix, value) probes against a 64k-element sequence. The
    // wavelet matrix keeps its levels bit-packed (~L2-resident); the
    // persistent counter chases 12-byte nodes through a ~13 MB arena.
    const size_t m = 65536;
    Rng rng(17);
    std::vector<uint32_t> codes(m);
    for (uint32_t& c : codes) {
      c = static_cast<uint32_t>(rng.UniformInt(0, static_cast<int64_t>(m) - 1));
    }
    WaveletMatrix wm(codes, m);
    VersionedPrefixCounter counter(m);
    std::vector<int32_t> roots(m + 1);
    roots[0] = 0;
    for (size_t i = 0; i < m; ++i) {
      roots[i + 1] = counter.Add(roots[i], codes[i]);
    }
    const size_t probes = 200000;
    std::vector<std::pair<size_t, uint32_t>> queries(probes);
    for (auto& qp : queries) {
      qp.first = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(m)));
      qp.second = static_cast<uint32_t>(rng.UniformInt(0, static_cast<int64_t>(m) - 1));
    }
    int64_t sink = 0;
    auto start = std::chrono::steady_clock::now();
    for (const auto& qp : queries) {
      int64_t lt;
      int64_t eq;
      wm.PrefixCounts(qp.first, qp.second, &lt, &eq);
      sink += lt + eq;
    }
    double wm_ns = Ms(start) * 1e6 / static_cast<double>(probes);
    start = std::chrono::steady_clock::now();
    for (const auto& qp : queries) {
      sink += counter.CountLess(roots[qp.first], qp.second);
    }
    double counter_ns = Ms(start) * 1e6 / static_cast<double>(probes);
    if (sink == 0x7fffffff) {
      std::printf("impossible\n");  // keep `sink` observable
    }
    std::printf("%-28s %-12s %-14s\n", "structure", "query(ns)", "memory(KB)");
    std::printf("%-28s %-12.0f %-14.0f\n", "wavelet matrix", wm_ns,
                static_cast<double>(wm.MemoryBytes()) / 1024.0);
    std::printf("%-28s %-12.0f %-14.0f\n", "persistent counter", counter_ns,
                static_cast<double>(counter.NumNodes() * 12) / 1024.0);
    bench::RecordValue("wavelet_query_ns_64k", wm_ns);
    bench::RecordValue("persistent_query_ns_64k", counter_ns);
  }

  bench::PrintTitle("stream fan-out: 4 constraints x 20 batches of 500 rows");
  {
    Rng rng(13);
    TableBuilder proto;
    proto.AddNumeric("a", {});
    proto.AddNumeric("b", {});
    proto.AddNumeric("c", {});
    Table prototype = std::move(proto).Build().value();
    std::vector<ApproximateSc> constraints = {
        {ParseConstraint("a !_||_ b").value(), 0.3},
        {ParseConstraint("a _||_ c").value(), 0.01},
        {ParseConstraint("b _||_ c").value(), 0.01},
        {ParseConstraint("a !_||_ b").value(), 0.1},
    };
    StreamMonitor stream = StreamMonitor::Create(prototype, constraints).value();
    auto start = std::chrono::steady_clock::now();
    for (int batch = 0; batch < 20; ++batch) {
      std::vector<double> a;
      std::vector<double> b;
      std::vector<double> c;
      for (int i = 0; i < 500; ++i) {
        double v = rng.Normal();
        a.push_back(v);
        b.push_back(v + rng.Normal(0.0, 0.5));
        c.push_back(rng.Normal());
      }
      TableBuilder builder;
      builder.AddNumeric("a", a);
      builder.AddNumeric("b", b);
      builder.AddNumeric("c", c);
      (void)stream.Append(std::move(builder).Build().value());
    }
    double ms = Ms(start);
    std::printf("%zu rows x %zu monitors in %.1f ms; any violated: %s\n", stream.NumRecords(),
                stream.NumMonitors(), ms, stream.AnyViolated() ? "yes" : "no");
    bench::RecordValue("stream_fanout_ms", ms);
  }

  return 0;
}
