// Table 2 — the counter-example to the converse of Proposition 1.
//
// Reconstructs the 6-record relation of Table 2 and verifies every claim
// the paper makes about it:
//  * it violates the FD Z -> X (r1 vs r2),
//  * it satisfies the EMVD Z ->> X | Y,
//  * it violates the ISC X ⊥ Y | Z, with exactly the probabilities the
//    paper reports: P(X=x1|z1)=2/3, P(Y=y1|z1)=1/3, P(X=x1,Y=y1|z1)=1/6.

#include <cstdio>

#include "bench_util.h"
#include "constraints/ic.h"
#include "table/group_by.h"
#include "table/table.h"

int main() {
  scoded::bench::Init("table2_counterexample");
  using namespace scoded;
  std::printf("=== Table 2: EMVD holds but ISC fails ===\n");

  TableBuilder builder;
  builder.AddCategorical("Z", {"z1", "z1", "z1", "z1", "z1", "z1"});
  builder.AddCategorical("X", {"x1", "x2", "x1", "x1", "x1", "x2"});
  builder.AddCategorical("Y", {"y1", "y2", "y2", "y2", "y2", "y1"});
  builder.AddCategorical("M", {"m1", "m1", "m1", "m2", "m3", "m1"});
  Table table = std::move(builder).Build().value();
  std::printf("%s", table.ToString().c_str());

  bool fd = SatisfiesFd(table, {{"Z"}, {"X"}}).value();
  bool emvd = SatisfiesEmvd(table, {{"Z"}, {"X"}, {"Y"}}).value();
  bool isc = SatisfiesScExactly(table, Independence({"X"}, {"Y"}, {"Z"})).value();
  std::printf("\nFD   Z -> X        : %-3s (paper: violated by r1/r2)\n", fd ? "yes" : "no");
  std::printf("EMVD Z ->> X | Y   : %-3s (paper: satisfied)\n", emvd ? "yes" : "no");
  std::printf("ISC  X _||_ Y | Z  : %-3s (paper: violated)\n", isc ? "yes" : "no");

  // The empirical probabilities from the paper's discussion.
  auto count = [&](const char* xv, const char* yv) {
    int64_t c = 0;
    for (size_t i = 0; i < table.NumRows(); ++i) {
      bool x_ok = xv == nullptr || table.ColumnByName("X").CategoryAt(i) == xv;
      bool y_ok = yv == nullptr || table.ColumnByName("Y").CategoryAt(i) == yv;
      c += (x_ok && y_ok) ? 1 : 0;
    }
    return c;
  };
  double n = static_cast<double>(table.NumRows());
  std::printf("\nP(X=x1 | Z=z1)        = %lld/6 = %.4f (paper: 2/3)\n", (long long)count("x1", nullptr),
              count("x1", nullptr) / n);
  std::printf("P(Y=y1 | Z=z1)        = %lld/6 = %.4f (paper: 1/3)\n", (long long)count(nullptr, "y1"),
              count(nullptr, "y1") / n);
  std::printf("P(X=x1, Y=y1 | Z=z1)  = %lld/6 = %.4f (paper: 1/6)\n", (long long)count("x1", "y1"),
              count("x1", "y1") / n);
  double product = (count("x1", nullptr) / n) * (count(nullptr, "y1") / n);
  std::printf("product P(X)P(Y)      = %.4f  !=  joint %.4f  =>  X !_||_ Y | Z\n", product,
              count("x1", "y1") / n);
  return 0;
}
