// Figure 12 — HOSP: statistical constraints vs approximate functional
// dependencies. The FDs Zip -> City and Zip -> State hold at a 25% error
// rate; half the injected typos land on the FD's left-hand side (mangled
// Zips), which AFD ranking cannot see.
//
// Expected shape: SCODED and AFD tie while K stays below the count of
// RHS errors (both find those with ~100% precision); past that point
// AFD's F-score decays while SCODED's keeps climbing because its DSC
// drill-down also surfaces the LHS typos (Sec. 6.3).

#include <cstdio>
#include <set>

#include "baselines/afd.h"
#include "bench_util.h"
#include "constraints/ic.h"
#include "datasets/hosp.h"
#include "eval/scoded_detector.h"

namespace {

using namespace scoded;

void RunPanel(const char* title, const HospData& data, const FunctionalDependency& fd) {
  bench::PrintTitle(title);
  std::set<size_t> truth(data.dirty_rows.begin(), data.dirty_rows.end());
  StatisticalConstraint dsc = FdToDsc(fd);
  ScodedDetector scoded({{dsc, 0.05}});
  AfdDetector afd({fd});
  std::vector<size_t> ks;
  for (size_t k : {500, 1000, 2000, 3000, 4000, 5000, 6000}) {
    if (k <= 2 * truth.size()) {
      ks.push_back(k);
    }
  }
  bench::PrintFScoreSweep(data.table, truth, {&scoded, &afd}, ks);
  std::printf("(RHS typos: %zu, LHS typos: %zu — AFD can only ever reach the RHS ones)\n",
              data.rhs_dirty_rows.size(), data.lhs_dirty_rows.size());
}

}  // namespace

int main() {
  scoded::bench::Init("fig12_hosp_afd");
  using namespace scoded;
  HospOptions options;
  options.rows = 20000;
  options.error_rate = 0.25;
  HospData data = GenerateHospData(options).value();
  std::printf("hospital data: %zu rows, %zu corrupted (25%%)\n", data.table.NumRows(),
              data.dirty_rows.size());

  RunPanel("Figure 12(a): Zip -> City vs Zip !_||_ City", data, {{"Zip"}, {"City"}});
  RunPanel("Figure 12(b): Zip -> State vs Zip !_||_ State", data, {{"Zip"}, {"State"}});
  return 0;
}
