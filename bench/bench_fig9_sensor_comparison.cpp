// Figure 9 — Sensor: SCODED vs DCDetect vs DCDetect+HC vs DBoost, under a
// single constraint (a) and multiple constraints (b).
//
// Errors follow the paper's Sensor pre-processing defect: outlier readings
// of sensor 8 were removed and mean-imputed, which weakens the dependence
// between neighbouring sensors while looking perfectly normal to an
// outlier detector. Expected shape: SCODED clearly ahead of the DC
// detectors and DBoost in (a); all detectors improve with three
// constraints in (b), with DCDetect+HC now ahead of plain DCDetect.

#include <cstdio>
#include <set>

#include "baselines/dboost.h"
#include "baselines/dcdetect.h"
#include "bench_util.h"
#include "datasets/errors.h"
#include "datasets/sensor.h"
#include "eval/scoded_detector.h"

int main() {
  scoded::bench::Init("fig9_sensor_comparison");
  using namespace scoded;
  using bench::KSweep;
  using bench::PrintFScoreSweep;
  using bench::PrintTitle;

  SensorOptions options;
  options.epochs = 2000;
  options.idiosyncratic_noise = 1.15;
  Table clean = GenerateSensorData(options).value();
  // The Intel Lab defect hits many sensors: mean-imputed readings land in
  // each of T7, T8, T9 (7% per column). A single pairwise SC can only see
  // the errors of its own two sensors, so adding constraints genuinely
  // raises every detector's ceiling — the Fig. 9(a) vs 9(b) contrast.
  std::set<size_t> truth;
  Table dirty_table = clean;
  uint64_t seed = 100;
  for (const char* column : {"T7", "T8", "T9"}) {
    InjectionOptions inject;
    inject.rate = 0.07;
    inject.seed = seed++;
    // The Intel Lab pre-processing removed *outlier* readings and imputed
    // them: the corrupted rows are the most extreme ones, not random ones.
    inject.based_on = column;
    InjectionResult step = InjectImputationError(dirty_table, column, inject).value();
    dirty_table = std::move(step.table);
    truth.insert(step.dirty_rows.begin(), step.dirty_rows.end());
  }
  InjectionResult dirty{std::move(dirty_table), {truth.begin(), truth.end()}};
  std::printf("sensor data: %zu epochs, %zu rows with mean-imputed readings "
              "(imputed outliers in T7, T8, T9)\n",
              clean.NumRows(), truth.size());

  // ---- (a) single constraint: T8 !_||_ T9 ----------------------------
  PrintTitle("Figure 9(a): single constraint (T8 !_||_ T9)");
  ScodedDetector scoded_single({{ParseConstraint("T8 !_||_ T9").value(), 0.05}});
  DcDetect dc_single({MakeOrderDc("T8", "T9")});
  DcDetectHc hc_single({MakeOrderDc("T8", "T9")});
  DboostOptions dboost_options;
  dboost_options.model = DboostModel::kGaussian;
  dboost_options.columns = {"T7", "T8", "T9"};
  Dboost dboost(dboost_options);
  PrintFScoreSweep(dirty.table, truth,
                   {&scoded_single, &dc_single, &hc_single, &dboost}, KSweep(truth.size()));

  // ---- (b) multiple constraints: all three sensor pairs --------------
  PrintTitle("Figure 9(b): multiple constraints (T7,T8,T9 pairwise)");
  ScodedDetector scoded_multi({
      {ParseConstraint("T7 !_||_ T8").value(), 0.05},
      {ParseConstraint("T8 !_||_ T9").value(), 0.05},
      {ParseConstraint("T7 !_||_ T9").value(), 0.05},
  });
  std::vector<DenialConstraint> dcs = {MakeOrderDc("T7", "T8"), MakeOrderDc("T8", "T9"),
                                       MakeOrderDc("T7", "T9")};
  DcDetect dc_multi(dcs);
  DcDetectHc hc_multi(dcs);
  PrintFScoreSweep(dirty.table, truth, {&scoded_multi, &dc_multi, &hc_multi, &dboost},
                   KSweep(truth.size()));

  std::printf("\nexpected shape: SCODED highest in both panels; DCDetect+HC == DCDetect\n"
              "with one constraint but ahead of it with three (Sec. 6.3).\n");
  return 0;
}
