// Figure 13 — CAR: categorical error detection with the G-test, for the
// dependence SC BP ⊥̸ CL and the independence SC SA ⊥ DR, under
// imputation errors (the panel the paper shows), vs DBoost-Histogram.
// DCDetect is not applicable: the feasible order DCs over these
// categorical domains have too many violations (Sec. 6.3).
//
// Expected shape: SCODED above DBoost for both SC forms; absolute
// F-scores are moderate (the paper reports averages of 0.49 vs 0.25).

#include <cstdio>
#include <set>

#include "baselines/dboost.h"
#include "bench_util.h"
#include "datasets/car.h"
#include "datasets/errors.h"
#include "eval/scoded_detector.h"

int main() {
  scoded::bench::Init("fig13_car_categorical");
  using namespace scoded;
  using bench::KSweep;
  using bench::PrintFScoreSweep;
  using bench::PrintTitle;

  Table clean = GenerateCarData().value();
  std::printf("car data: %zu rows; imputation errors at a moderate (20%%) rate\n",
              clean.NumRows());

  // ---- dependence SC: BP !_||_ CL, errors weaken the dependence -------
  {
    InjectionOptions inject;
    inject.rate = 0.2;
    InjectionResult dirty = InjectImputationError(clean, "CL", inject).value();
    std::set<size_t> truth(dirty.dirty_rows.begin(), dirty.dirty_rows.end());
    PrintTitle("Figure 13, dependence SC (BP !_||_ CL), imputation error");
    ScodedDetector scoded({{ParseConstraint("BP !_||_ CL").value(), 0.05}});
    DboostOptions dboost_options;
    dboost_options.model = DboostModel::kHistogram;
    dboost_options.columns = {"BP", "CL"};
    Dboost dboost(dboost_options);
    PrintFScoreSweep(dirty.table, truth, {&scoded, &dboost}, KSweep(truth.size()));
  }

  // ---- independence SC: SA _||_ DR, errors install a dependence -------
  {
    InjectionOptions inject;
    inject.rate = 0.2;
    inject.based_on = "SA";  // corrupted DR values coupled to SA
    InjectionResult dirty = InjectImputationError(clean, "DR", inject).value();
    std::set<size_t> truth(dirty.dirty_rows.begin(), dirty.dirty_rows.end());
    PrintTitle("Figure 13, independence SC (SA _||_ DR), imputation error");
    ScodedDetector scoded({{ParseConstraint("SA _||_ DR").value(), 0.05}});
    DboostOptions dboost_options;
    dboost_options.model = DboostModel::kHistogram;
    dboost_options.columns = {"SA", "DR"};
    Dboost dboost(dboost_options);
    PrintFScoreSweep(dirty.table, truth, {&scoded, &dboost}, KSweep(truth.size()));
  }
  return 0;
}
