#ifndef SCODED_BENCH_BENCH_UTIL_H_
#define SCODED_BENCH_BENCH_UTIL_H_

// Shared helpers for the reproduction harness. Each bench binary
// regenerates one table/figure of the paper and prints the corresponding
// rows/series; the sweep machinery itself lives in the library
// (`eval/comparison.h`) so applications can reuse it.
//
// A binary that calls Init("fig9_sensor") additionally writes
// BENCH_fig9_sensor.json into the working directory at exit: per-section
// wall-clock (sections are delimited by PrintTitle calls), every F-score
// sweep as structured data (including per-detector runtime), any scalar
// series recorded with RecordValue, a "build" stanza identifying the
// binary, and — since the profiler is on by default in bench binaries —
// a "profile" stanza with per-span self-time aggregates. The CI/driver
// scripts diff these artefacts (tools/benchdiff) instead of scraping
// stdout.
//
// Environment knobs:
//   SCODED_BENCH_PROFILE=0    disable the default-on span profiler
//   SCODED_BENCH_TRACE=FILE   also record a Chrome trace and write it to
//                             FILE at exit (for profile-vs-trace checks)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/fileio.h"
#include "common/json.h"
#include "eval/comparison.h"
#include "obs/build_info.h"
#include "obs/log.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "table/table.h"

namespace scoded::bench {

/// Collects the machine-readable run record of one bench binary.
/// Header-only singleton so adopting it is a single Init() line per main.
class Reporter {
 public:
  static Reporter& Global() {
    static Reporter* reporter = new Reporter;
    return *reporter;
  }

  /// Names the artefact (BENCH_<name>.json), arms the at-exit write, and
  /// turns the span profiler on (opt out with SCODED_BENCH_PROFILE=0).
  void Init(std::string name) {
    name_ = std::move(name);
    const char* profile = std::getenv("SCODED_BENCH_PROFILE");
    if (profile == nullptr || std::string(profile) != "0") {
      obs::EnableProfiler();
    }
    if (const char* trace = std::getenv("SCODED_BENCH_TRACE")) {
      trace_path_ = trace;
      obs::Tracer::Global().Enable();
    }
    if (!atexit_armed_) {
      atexit_armed_ = true;
      std::atexit([] { Global().Write(); });
    }
  }

  /// Closes the previous section (recording its wall-clock) and opens a
  /// new one. Sections map 1:1 to PrintTitle calls.
  void StartSection(const std::string& title) {
    CloseSection();
    sections_.push_back(Section{title, obs::NowMicros(), -1.0, {}, {}});
  }

  /// Attaches a structured F-score sweep to the current section.
  void RecordSweep(const ComparisonResult& result) {
    EnsureSection();
    sections_.back().sweeps.push_back(result.ToJson());
  }

  /// Attaches one labelled scalar (e.g. a runtime measurement) to the
  /// current section.
  void RecordValue(const std::string& label, double value) {
    EnsureSection();
    sections_.back().values.emplace_back(label, value);
  }

  /// Writes BENCH_<name>.json (and the SCODED_BENCH_TRACE trace file, when
  /// requested); a no-op unless Init() was called.
  void Write() {
    if (name_.empty() || written_) {
      return;
    }
    written_ = true;
    CloseSection();
    JsonWriter json;
    json.BeginObject();
    json.Key("bench").String(name_);
    json.Key("build").Raw(obs::BuildInfoJson());
    json.Key("total_ms").Double(TotalMs());
    json.Key("sections").BeginArray();
    for (const Section& section : sections_) {
      json.BeginObject();
      json.Key("title").String(section.title);
      json.Key("ms").Double(section.ms);
      if (!section.sweeps.empty()) {
        json.Key("sweeps").BeginArray();
        for (const std::string& sweep : section.sweeps) {
          json.Raw(sweep);
        }
        json.EndArray();
      }
      if (!section.values.empty()) {
        json.Key("values").BeginArray();
        for (const auto& [label, value] : section.values) {
          json.BeginObject();
          json.Key("label").String(label);
          json.Key("value").Double(value);
          json.EndObject();
        }
        json.EndArray();
      }
      json.EndObject();
    }
    json.EndArray();
    if (obs::Profiler::Global().NumSpanNames() > 0) {
      json.Key("profile").Raw(obs::Profiler::Global().SnapshotJson());
    }
    json.EndObject();
    std::string path = "BENCH_" + name_ + ".json";
    Status write = WriteTextFile(path, json.str());
    if (!write.ok()) {
      obs::LogError("cannot write bench artefact", {{"error", write.ToString()}});
      return;
    }
    obs::LogInfo("wrote bench artefact", {{"path", path}});
    if (obs::Profiler::Global().NumSpanNames() > 0) {
      // The self-time table goes to stderr: stdout stays reserved for the
      // paper table/figure the binary reproduces.
      std::fputs(obs::Profiler::Global().FlatTableText(20).c_str(), stderr);
    }
    if (!trace_path_.empty()) {
      Status trace = obs::Tracer::Global().WriteFile(trace_path_);
      if (!trace.ok()) {
        obs::LogError("cannot write bench trace", {{"error", trace.ToString()}});
      } else {
        obs::LogInfo("wrote bench trace", {{"path", trace_path_}});
      }
    }
  }

 private:
  struct Section {
    std::string title;
    int64_t start_us = 0;
    double ms = -1.0;
    std::vector<std::string> sweeps;  // pre-rendered ComparisonResult JSON
    std::vector<std::pair<std::string, double>> values;
  };

  void EnsureSection() {
    if (sections_.empty()) {
      StartSection("main");
    }
  }

  void CloseSection() {
    if (!sections_.empty() && sections_.back().ms < 0.0) {
      sections_.back().ms =
          static_cast<double>(obs::NowMicros() - sections_.back().start_us) / 1000.0;
    }
  }

  double TotalMs() const {
    double total = 0.0;
    for (const Section& section : sections_) {
      total += section.ms > 0.0 ? section.ms : 0.0;
    }
    return total;
  }

  std::string name_;
  std::string trace_path_;
  bool atexit_armed_ = false;
  bool written_ = false;
  std::vector<Section> sections_;
};

/// Names this binary's BENCH_<name>.json artefact and arms its at-exit
/// write. Call once at the top of main().
inline void Init(const std::string& name) { Reporter::Global().Init(name); }

inline void PrintTitle(const std::string& title) {
  Reporter::Global().StartSection(title);
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Records one labelled scalar (runtime, p-value, ...) into the current
/// section of the JSON artefact.
inline void RecordValue(const std::string& label, double value) {
  Reporter::Global().RecordValue(label, value);
}

/// Best-of-N measurement. Runs `measure` once as a cold-cache warm-up
/// whose result is discarded — the first execution pays page faults,
/// instruction-cache misses, and allocator growth that no steady-state
/// run sees, so folding it into the minimum only adds noise when N is
/// small — then `reps` more times and returns the smallest returned
/// value (the standard estimator of the true, noise-free cost).
/// `measure` returns its own reading so callers can keep setup outside
/// the timed region.
template <typename Fn>
inline double BestOf(int reps, Fn&& measure) {
  (void)measure();  // cold-cache warm-up, discarded
  double best = measure();
  for (int rep = 1; rep < reps; ++rep) {
    best = std::min(best, measure());
  }
  return best;
}

/// Runs every detector once (ranking up to max(ks)) and prints an
/// F-score@K sweep table: one row per k, one column per detector, plus a
/// per-detector runtime row. The sweep also lands in the JSON artefact.
inline void PrintFScoreSweep(const Table& table, const std::set<size_t>& truth,
                             const std::vector<ErrorDetector*>& detectors,
                             const std::vector<size_t>& ks) {
  ComparisonResult result = CompareDetectors(table, truth, detectors, ks);
  Reporter::Global().RecordSweep(result);
  std::fputs(result.ToText().c_str(), stdout);
}

/// Standard k sweep: fractions of the ground-truth size.
inline std::vector<size_t> KSweep(size_t truth_size) { return StandardKSweep(truth_size); }

}  // namespace scoded::bench

#endif  // SCODED_BENCH_BENCH_UTIL_H_
