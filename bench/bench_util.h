#ifndef SCODED_BENCH_BENCH_UTIL_H_
#define SCODED_BENCH_BENCH_UTIL_H_

// Shared helpers for the reproduction harness. Each bench binary
// regenerates one table/figure of the paper and prints the corresponding
// rows/series; the sweep machinery itself lives in the library
// (`eval/comparison.h`) so applications can reuse it.

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "eval/comparison.h"
#include "table/table.h"

namespace scoded::bench {

inline void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Runs every detector once (ranking up to max(ks)) and prints an
/// F-score@K sweep table: one row per k, one column per detector.
inline void PrintFScoreSweep(const Table& table, const std::set<size_t>& truth,
                             const std::vector<ErrorDetector*>& detectors,
                             const std::vector<size_t>& ks) {
  std::fputs(CompareDetectors(table, truth, detectors, ks).ToText().c_str(), stdout);
}

/// Standard k sweep: fractions of the ground-truth size.
inline std::vector<size_t> KSweep(size_t truth_size) { return StandardKSweep(truth_size); }

}  // namespace scoded::bench

#endif  // SCODED_BENCH_BENCH_UTIL_H_
