// Conditional SCs on Boston (Sec. 6.3 reports these results as "similar
// to unconditional SCs" and omits the figure; this bench regenerates it).
//
//   dependence:   TX ⊥̸ B | C   with errors on B weakening it
//   independence: N ⊥ B | TX   with errors on B installing a conditional
//                               dependence on N
// Baselines: the conditional order DC for the DSC; DBoost for both.

#include <cstdio>
#include <set>

#include "baselines/dboost.h"
#include "baselines/dcdetect.h"
#include "bench_util.h"
#include "datasets/boston.h"
#include "datasets/errors.h"
#include "eval/scoded_detector.h"

int main() {
  scoded::bench::Init("conditional_scs");
  using namespace scoded;
  using bench::KSweep;
  using bench::PrintFScoreSweep;
  using bench::PrintTitle;

  BostonOptions options;
  options.rows = 1200;  // conditional tests need more rows per stratum
  Table clean = GenerateBostonData(options).value();
  std::printf("boston data: %zu rows; conditional SCs of Table 3\n", clean.NumRows());

  // ---- conditional dependence: TX !_||_ B | C -------------------------
  {
    InjectionOptions inject;
    inject.rate = 0.3;
    InjectionResult dirty = InjectImputationError(clean, "B", inject).value();
    std::set<size_t> truth(dirty.dirty_rows.begin(), dirty.dirty_rows.end());
    PrintTitle("conditional DSC: TX !_||_ B | C, imputation error on B");
    ScodedDetector scoded({{ParseConstraint("TX !_||_ B | C").value(), 0.05}});
    // B falls as TX rises, so the conditional DC demands strict decrease.
    DenialConstraint dc;
    dc.predicates.push_back({0, "C", CompareOp::kEq, 1, "C"});
    dc.predicates.push_back({0, "TX", CompareOp::kGt, 1, "TX"});
    dc.predicates.push_back({0, "B", CompareOp::kGe, 1, "B"});
    DcDetect dcdetect({dc});
    DboostOptions dboost_options;
    dboost_options.model = DboostModel::kGaussian;
    dboost_options.columns = {"TX", "B", "C"};
    Dboost dboost(dboost_options);
    PrintFScoreSweep(dirty.table, truth, {&scoded, &dcdetect, &dboost}, KSweep(truth.size()));
  }

  // ---- conditional independence: N _||_ B | TX ------------------------
  {
    InjectionOptions inject;
    inject.rate = 0.3;
    inject.based_on = "N";  // corrupted B values coupled to N
    InjectionResult dirty = InjectSortingError(clean, "B", inject).value();
    std::set<size_t> truth(dirty.dirty_rows.begin(), dirty.dirty_rows.end());
    PrintTitle("conditional ISC: N _||_ B | TX, sorting error on B coupled to N");
    ScodedDetector scoded({{ParseConstraint("N _||_ B | TX").value(), 0.05}});
    DboostOptions dboost_options;
    dboost_options.model = DboostModel::kGaussian;
    dboost_options.columns = {"N", "B", "TX"};
    Dboost dboost(dboost_options);
    PrintFScoreSweep(dirty.table, truth, {&scoded, &dboost}, KSweep(truth.size()));
  }
  std::printf("\nexpected shape: consistent with the unconditional sweeps "
              "(Figures 10 and 11).\n");
  return 0;
}
