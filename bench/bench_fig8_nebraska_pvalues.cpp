// Figure 8 — Nebraska model-testing case study: per-year p-values of the
// dependence SCs ⟨Wind ⊥̸ Weather, 0.3⟩ and ⟨Sea ⊥̸ Weather, 0.3⟩ on the
// 1970-1999 test years. Expected series shape: near-zero everywhere with
// violations (p > 0.3) exactly at the documented defect years — Wind in
// 1978 & 1989 (mean imputation), Sea in 1972 (outliers). Drill-down
// recall on each violating year is reported alongside (paper: ~64% of the
// 1972 outliers were returned).

#include <cstdio>
#include <set>
#include <vector>

#include "bench_util.h"
#include "core/scoded.h"
#include "datasets/nebraska.h"
#include "table/ops.h"
#include "eval/metrics.h"

namespace {

using namespace scoded;

std::vector<size_t> RowsOfYear(const Table& table, int year) {
  return RowsWhereEqual(table, "Year", std::to_string(year)).value();
}

}  // namespace

int main() {
  scoded::bench::Init("fig8_nebraska_pvalues");
  using namespace scoded;
  std::printf("=== Figure 8: Nebraska per-year p-values (alpha = 0.3) ===\n");

  NebraskaData data = GenerateNebraskaData().value();
  ApproximateSc wind_sc{ParseConstraint("Wind !_||_ Weather").value(), 0.3};
  ApproximateSc sea_sc{ParseConstraint("Sea !_||_ Weather").value(), 0.3};

  std::printf("%-6s %-10s %-10s\n", "year", "p(Wind)", "p(Sea)");
  std::vector<int> wind_violations;
  std::vector<int> sea_violations;
  for (int year = 1970; year <= 1999; ++year) {
    std::vector<size_t> rows = RowsOfYear(data.table, year);
    double pw = DetectViolation(data.table, wind_sc, rows).value().p_value;
    double ps = DetectViolation(data.table, sea_sc, rows).value().p_value;
    if (pw > wind_sc.alpha) {
      wind_violations.push_back(year);
    }
    if (ps > sea_sc.alpha) {
      sea_violations.push_back(year);
    }
    std::printf("%-6d %-8.3f%s %-8.3f%s\n", year, pw, pw > 0.3 ? "*" : " ", ps,
                ps > 0.3 ? "*" : " ");
  }
  std::printf("\nwind violations:");
  for (int y : wind_violations) {
    std::printf(" %d", y);
  }
  std::printf("   (paper: 1978, 1989)\nsea violations: ");
  for (int y : sea_violations) {
    std::printf(" %d", y);
  }
  std::printf("   (paper: 1972)\n");

  // Drill-down recall on each violating year.
  auto drill_recall = [&](const ApproximateSc& asc, int year, const std::vector<size_t>& dirty) {
    std::vector<size_t> rows = RowsOfYear(data.table, year);
    std::set<size_t> truth;
    for (size_t row : dirty) {
      if (data.table.ColumnByName("Year").NumericAt(row) == static_cast<double>(year)) {
        truth.insert(row);
      }
    }
    if (truth.empty()) {
      return;
    }
    DrillDownResult top =
        DrillDown(data.table, asc, truth.size(), rows, DrillDownOptions{}).value();
    PrecisionRecall pr = EvaluateTopK(top.rows, truth, truth.size());
    std::printf("  %d: drill-down recall@%zu = %.2f\n", year, truth.size(), pr.recall);
  };
  std::printf("\ndrill-down on the violating years:\n");
  for (int year : wind_violations) {
    drill_recall(wind_sc, year, data.wind_dirty_rows);
  }
  for (int year : sea_violations) {
    drill_recall(sea_sc, year, data.sea_dirty_rows);
  }
  return 0;
}
