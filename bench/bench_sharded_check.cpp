// Out-of-core sharded checking bench — peak memory and runtime of
// core::ShardedCheckAll vs the in-memory read-then-check path.
//
// The claim under test: with a fixed shard size, peak RSS of the sharded
// path stays near-flat as the CSV grows 16x (ratio <= 2x, dominated by
// the O(shard_rows + distinct cells) working set), where the in-memory
// path's peak grows with the file because it materialises every row. The
// reports must stay identical to the in-memory ones at every size. The
// committed baseline JSON feeds the benchdiff regression gate.
//
// The constraints cover the compact-summary regime the sharded path is
// built for: categorical pairs and bounded-cardinality numerics, whose
// joint-cell count saturates. A τ test over two continuous columns keeps
// one cell per distinct (x, y) pair and so degrades to O(rows) memory —
// that documented limitation (docs/performance.md) is out of scope here.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#if defined(__GLIBC__) || defined(__linux__)
#include <malloc.h>
#endif

#include "bench_util.h"
#include "common/rng.h"
#include "core/scoded.h"
#include "core/sharded_check.h"
#include "core/violation.h"
#include "table/csv.h"
#include "table/table.h"

namespace {

using namespace scoded;

double Ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

// Reads one "Vm...: <kB> kB" line from /proc/self/status. Returns -1 when
// unavailable (non-Linux), in which case the memory section is skipped.
double StatusMb(const char* key) {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.compare(0, std::strlen(key), key) == 0) {
      return std::strtod(line.c_str() + std::strlen(key), nullptr) / 1024.0;
    }
  }
  return -1.0;
}

// Resets the peak-RSS high-water mark to the current RSS (Linux >= 4.0),
// so VmHWM after a run measures that run alone. Returns false when the
// kernel interface is unavailable.
bool ResetPeakRss() {
  std::ofstream clear("/proc/self/clear_refs");
  if (!clear.good()) {
    return false;
  }
  clear << "5";
  clear.close();
  return clear.good();
}

// Returns memory that free() retained to the OS between measurements, so
// an earlier large run does not pre-pay a later one's page faults.
void TrimHeap() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
}

void GenerateCsv(const std::string& path, size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::ofstream out(path);
  out << "Model,Color,Price,Mileage\n";
  const char* models[] = {"civic", "corolla", "focus", "golf", "a4", "i3"};
  const char* colors[] = {"red", "blue", "white", "black"};
  for (size_t i = 0; i < rows; ++i) {
    int64_t m = rng.UniformInt(0, 5);
    int64_t c = rng.UniformInt(0, 9) < 4 ? m % 4 : rng.UniformInt(0, 3);
    out << models[m] << ',' << colors[c] << ',' << (1000 + m * 250 + rng.UniformInt(0, 400))
        << ',' << rng.UniformInt(0, 120000) << '\n';
  }
}

std::vector<ApproximateSc> Constraints() {
  return {
      {ParseConstraint("Model _||_ Color").value(), 0.05},
      {ParseConstraint("Model !_||_ Price").value(), 0.3},
      {ParseConstraint("Color _||_ Price | Model").value(), 0.05},
  };
}

// One formatted line per constraint; used to assert sharded == in-memory.
std::vector<std::string> Render(const std::vector<ViolationReport>& reports) {
  std::vector<std::string> lines;
  for (const ViolationReport& report : reports) {
    char line[128];
    std::snprintf(line, sizeof(line), "%d p=%.17g stat=%.17g n=%lld", report.violated ? 1 : 0,
                  report.p_value, report.test.statistic, static_cast<long long>(report.test.n));
    lines.push_back(line);
  }
  return lines;
}

struct RunStats {
  double ms = 0.0;
  double peak_mb = -1.0;
  std::vector<std::string> lines;
};

RunStats RunSharded(const std::string& path) {
  TrimHeap();
  bool have_peak = ResetPeakRss();
  double base_mb = StatusMb("VmHWM:");
  auto start = std::chrono::steady_clock::now();
  ShardedCheckOptions options;
  options.reader.shard_rows = 4096;
  ShardedCheckResult result = ShardedCheckAll(path, Constraints(), options).value();
  RunStats stats;
  stats.ms = Ms(start);
  stats.peak_mb = have_peak && base_mb >= 0.0 ? StatusMb("VmHWM:") - base_mb : -1.0;
  stats.lines = Render(result.reports);
  return stats;
}

RunStats RunInMemory(const std::string& path) {
  TrimHeap();
  bool have_peak = ResetPeakRss();
  double base_mb = StatusMb("VmHWM:");
  auto start = std::chrono::steady_clock::now();
  Scoded scoded(csv::ReadFile(path).value());
  std::vector<ViolationReport> reports;
  for (const ApproximateSc& asc : Constraints()) {
    reports.push_back(scoded.CheckViolation(asc).value());
  }
  RunStats stats;
  stats.ms = Ms(start);
  stats.peak_mb = have_peak && base_mb >= 0.0 ? StatusMb("VmHWM:") - base_mb : -1.0;
  stats.lines = Render(reports);
  return stats;
}

}  // namespace

int main() {
  bench::Init("sharded_check");
  const std::vector<size_t> kSizes = {20000, 80000, 320000};

  std::vector<std::string> paths;
  for (size_t rows : kSizes) {
    paths.push_back("sharded_bench_" + std::to_string(rows) + ".csv");
    GenerateCsv(paths.back(), rows, 1234 + rows);
  }

  // Sharded runs first, smallest to largest, so no earlier whole-file
  // materialisation can pre-fault pages that flatten its peak curve.
  bench::PrintTitle("sharded check peak RSS (shard_rows = 4096)");
  std::vector<RunStats> sharded;
  for (size_t i = 0; i < kSizes.size(); ++i) {
    sharded.push_back(RunSharded(paths[i]));
    std::printf("rows=%-7zu ms=%-9.1f peak_mb=%.2f\n", kSizes[i], sharded[i].ms,
                sharded[i].peak_mb);
    bench::RecordValue("sharded_ms_" + std::to_string(kSizes[i]), sharded[i].ms);
    if (sharded[i].peak_mb >= 0.0) {
      bench::RecordValue("sharded_peak_mb_" + std::to_string(kSizes[i]), sharded[i].peak_mb);
    }
  }
  if (sharded.front().peak_mb > 0.0 && sharded.back().peak_mb >= 0.0) {
    double growth = sharded.back().peak_mb / sharded.front().peak_mb;
    std::printf("sharded peak growth over 16x rows: %.2fx\n", growth);
    bench::RecordValue("sharded_peak_growth_16x_rows", growth);
  }

  bench::PrintTitle("in-memory check peak RSS (read whole file)");
  std::vector<RunStats> inmem;
  for (size_t i = 0; i < kSizes.size(); ++i) {
    inmem.push_back(RunInMemory(paths[i]));
    std::printf("rows=%-7zu ms=%-9.1f peak_mb=%.2f\n", kSizes[i], inmem[i].ms, inmem[i].peak_mb);
    bench::RecordValue("inmemory_ms_" + std::to_string(kSizes[i]), inmem[i].ms);
    if (inmem[i].peak_mb >= 0.0) {
      bench::RecordValue("inmemory_peak_mb_" + std::to_string(kSizes[i]), inmem[i].peak_mb);
    }
  }
  if (inmem.front().peak_mb > 0.0 && inmem.back().peak_mb >= 0.0) {
    double growth = inmem.back().peak_mb / inmem.front().peak_mb;
    std::printf("in-memory peak growth over 16x rows: %.2fx\n", growth);
    bench::RecordValue("inmemory_peak_growth_16x_rows", growth);
  }

  bench::PrintTitle("sharded vs in-memory result identity");
  bool identical = true;
  for (size_t i = 0; i < kSizes.size(); ++i) {
    identical = identical && sharded[i].lines == inmem[i].lines;
  }
  std::printf("reports identical at every size: %s\n", identical ? "yes" : "NO");
  bench::RecordValue("reports_identical", identical ? 1.0 : 0.0);

  for (const std::string& path : paths) {
    std::remove(path.c_str());
  }
  return identical ? 0 : 1;
}
