// Ablations of the design choices DESIGN.md calls out:
//  1. K vs Kᶜ strategy, on a dependence SC and on an independence SC
//     (the paper prescribes K for DSCs and Kᶜ for ISCs — Sec. 6.1);
//  2. the categorical greedy objective: dof-centred excess G − dof vs raw
//     ΔG (the literal Definition 7), on the FD-as-DSC workload where the
//     difference matters;
//  3. exact vs asymptotic τ p-values at small n (the Sec. 4.3 exact-test
//     threshold);
//  4. statistic choice (Kendall vs Spearman vs Pearson) under heavy-tailed
//     contamination — the Sec. 4.3 "Motivation" argument;
//  5. the permutation fallback vs the raw χ² approximation on a
//     high-cardinality pair.

#include <cmath>
#include <cstdio>
#include <set>

#include "bench_util.h"
#include "common/math.h"
#include "common/rng.h"
#include "constraints/ic.h"
#include "datasets/boston.h"
#include "datasets/errors.h"
#include "datasets/hosp.h"
#include "eval/metrics.h"
#include "eval/scoded_detector.h"
#include "stats/correlation.h"
#include "stats/kendall.h"

namespace {

using namespace scoded;

void StrategyPanel(const Table& table, const std::set<size_t>& truth, const char* sc_text) {
  ApproximateSc asc{ParseConstraint(sc_text).value(), 0.05};
  for (Strategy strategy : {Strategy::kDirect, Strategy::kComplement}) {
    DrillDownOptions options;
    options.strategy = strategy;
    std::vector<size_t> ranking =
        RankSuspiciousRecords(table, asc, truth.size(), options).value();
    PrecisionRecall pr = EvaluateTopK(ranking, truth, truth.size());
    std::printf("  %-10s %-22s F@%zu = %.3f\n",
                strategy == Strategy::kDirect ? "K" : "K^c", sc_text, truth.size(), pr.f_score);
  }
}

}  // namespace

int main() {
  scoded::bench::Init("ablation");
  using namespace scoded;
  std::printf("=== Ablation studies ===\n");

  // ---- 1. K vs Kc per SC form -----------------------------------------
  bench::PrintTitle("ablation 1: K vs K^c strategy (Boston, 30% errors)");
  Table boston = GenerateBostonData({506, 0x5C0DEDu}).value();
  {
    InjectionOptions inject;
    inject.rate = 0.3;
    InjectionResult dirty = InjectSortingError(boston, "N", inject).value();
    std::set<size_t> truth(dirty.dirty_rows.begin(), dirty.dirty_rows.end());
    std::printf(" dependence SC (paper default: K):\n");
    StrategyPanel(dirty.table, truth, "N !_||_ D");
  }
  {
    InjectionOptions inject;
    inject.rate = 0.3;
    inject.based_on = "B";
    InjectionResult dirty = InjectSortingError(boston, "R", inject).value();
    std::set<size_t> truth(dirty.dirty_rows.begin(), dirty.dirty_rows.end());
    std::printf(" independence SC (paper default: K^c):\n");
    StrategyPanel(dirty.table, truth, "R _||_ B");
  }

  // ---- 2. greedy objective: excess vs raw G ---------------------------
  bench::PrintTitle("ablation 2: G objective (HOSP FD-as-DSC, 25% errors)");
  HospOptions hosp_options;
  hosp_options.rows = 8000;
  HospData hosp = GenerateHospData(hosp_options).value();
  std::set<size_t> truth(hosp.dirty_rows.begin(), hosp.dirty_rows.end());
  StatisticalConstraint dsc = FdToDsc({{"Zip"}, {"City"}});
  for (GObjective objective : {GObjective::kExcess, GObjective::kRawG}) {
    DrillDownOptions options;
    options.g_objective = objective;
    std::vector<size_t> ranking =
        RankSuspiciousRecords(hosp.table, {dsc, 0.05}, truth.size(), options).value();
    PrecisionRecall pr = EvaluateTopK(ranking, truth, truth.size());
    std::printf("  %-12s F@%zu = %.3f\n",
                objective == GObjective::kExcess ? "G - dof" : "raw G", truth.size(), pr.f_score);
  }
  std::printf("  (raw G cannot credit deleting a typo'd Zip category, so it\n"
              "   misses the LHS errors — the motivation for the excess objective)\n");

  // ---- 3. exact vs Gaussian tau p-values ------------------------------
  bench::PrintTitle("ablation 3: exact vs Gaussian tau null at small n");
  std::printf("  %-6s %-24s\n", "n", "max |p_exact - p_gauss|");
  Rng rng(1);
  for (int n : {8, 12, 20, 30, 45, 60}) {
    double worst = 0.0;
    for (int trial = 0; trial < 40; ++trial) {
      std::vector<double> x;
      std::vector<double> y;
      for (int i = 0; i < n; ++i) {
        x.push_back(rng.Uniform());
        y.push_back(rng.Uniform());
      }
      KendallResult kr = KendallTau(x, y);
      double exact = KendallExactPValue(kr.s, kr.n);
      worst = std::max(worst, std::fabs(exact - kr.p_two_sided));
    }
    std::printf("  %-6d %.4f\n", n, worst);
  }
  std::printf("  (the gap shrinks toward the NIST n > 60 rule the paper cites)\n");

  // ---- 4. statistic choice: Kendall vs Spearman vs Pearson -------------
  // (the Sec. 4.3 "Motivation": SCODED defaults to Kendall because it is
  // the most robust against false positives on contaminated data)
  bench::PrintTitle("ablation 4: false-violation rate of an ISC at alpha=0.05");
  {
    std::printf("  independent heavy-tailed data with 3%% wild outliers, n=200, 400 trials\n");
    int fp_kendall = 0;
    int fp_spearman = 0;
    int fp_pearson = 0;
    Rng rng(9);
    const int kTrials = 400;
    for (int trial = 0; trial < kTrials; ++trial) {
      std::vector<double> x;
      std::vector<double> y;
      for (int i = 0; i < 200; ++i) {
        // Heavy tails via a normal ratio; occasional coupled wild outliers
        // (a shared glitch hitting both gauges) that fool moment-based
        // statistics but displace few ranks.
        double xv = rng.Normal() / std::max(0.25, std::fabs(rng.Normal()));
        double yv = rng.Normal() / std::max(0.25, std::fabs(rng.Normal()));
        if (rng.Bernoulli(0.03)) {
          double glitch = rng.Normal(0.0, 60.0);
          xv += glitch;
          yv += glitch;
        }
        x.push_back(xv);
        y.push_back(yv);
      }
      fp_kendall += KendallTau(x, y).p_two_sided < 0.05 ? 1 : 0;
      fp_spearman += SpearmanPValue(SpearmanCorrelation(x, y), x.size()) < 0.05 ? 1 : 0;
      fp_pearson += PearsonPValue(PearsonCorrelation(x, y), x.size()) < 0.05 ? 1 : 0;
    }
    std::printf("  %-12s %d / %d false violations\n", "Kendall", fp_kendall, kTrials);
    std::printf("  %-12s %d / %d false violations\n", "Spearman", fp_spearman, kTrials);
    std::printf("  %-12s %d / %d false violations\n", "Pearson", fp_pearson, kTrials);
    std::printf("  (expected ordering: Kendall <= Spearman << Pearson)\n");
  }

  // ---- 5. permutation fallback on high-cardinality pairs --------------
  bench::PrintTitle("ablation 5: chi^2 vs permutation p on Zip !_||_ City");
  {
    TestOptions raw;
    raw.allow_exact = false;
    TestResult chi2 = IndependenceTest(hosp.table, 0, 1, {}, raw).value();
    TestOptions with_fallback;
    TestResult perm = IndependenceTest(hosp.table, 0, 1, {}, with_fallback).value();
    std::printf("  chi^2 approximation:   p = %.4f (dof %.0f vs n %lld — meaningless)\n",
                chi2.p_value, chi2.dof, static_cast<long long>(chi2.n));
    std::printf("  permutation fallback:  p = %.4f (dependence correctly detected)\n",
                perm.p_value);
  }
  return 0;
}
