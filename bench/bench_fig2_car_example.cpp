// Figures 2 & 5 — the running car example: violation detection on the
// updated car database and grouped drill-down over the Model×Color cells.

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/scoded.h"
#include "table/table.h"

int main() {
  scoded::bench::Init("fig2_car_example");
  using namespace scoded;
  std::printf("=== Figure 2: car database insert example ===\n");

  TableBuilder original;
  original.AddCategorical("Model", {"BMW X1", "BMW X1", "BMW X1", "BMW X1", "Toyota Prius",
                                    "Toyota Prius", "Toyota Prius", "Toyota Prius"});
  original.AddCategorical("Color",
                          {"White", "Black", "White", "Black", "White", "White", "White", "Black"});
  Table before = std::move(original).Build().value();

  TableBuilder updated;
  updated.AddCategorical(
      "Model", {"BMW X1", "BMW X1", "BMW X1", "BMW X1", "Toyota Prius", "Toyota Prius",
                "Toyota Prius", "Toyota Prius", "BMW X1", "BMW X1", "BMW X1", "BMW X1",
                "Toyota Prius", "Toyota Prius", "Toyota Prius", "Toyota Prius"});
  updated.AddCategorical("Color",
                         {"White", "Black", "White", "Black", "White", "White", "White", "Black",
                          "White", "White", "White", "Black", "Black", "Black", "Black", "Black"});
  Table after = std::move(updated).Build().value();

  ApproximateSc asc{ParseConstraint("Model _||_ Color").value(), 0.4};
  ViolationReport r_before = DetectViolation(before, asc).value();
  ViolationReport r_after = DetectViolation(after, asc).value();
  std::printf("original  (r1-r8):   p = %.4f -> %s\n", r_before.p_value,
              r_before.violated ? "VIOLATED" : "not violated");
  std::printf("updated   (r1-r16):  p = %.4f -> %s\n", r_after.p_value,
              r_after.violated ? "VIOLATED" : "not violated");

  // Figure 5-style group counts on the updated table.
  std::printf("\ngroup counts (Model x Color, cf. Figure 5):\n");
  std::map<std::string, int> cells;
  for (size_t i = 0; i < after.NumRows(); ++i) {
    ++cells[after.ColumnByName("Model").CategoryAt(i) + " / " +
            after.ColumnByName("Color").CategoryAt(i)];
  }
  for (const auto& [cell, count] : cells) {
    std::printf("  %-24s %d\n", cell.c_str(), count);
  }

  Scoded system(after);
  DrillDownResult top5 = system.DrillDown(asc, 5).value();
  std::printf("\ntop-5 drill-down (K^c strategy, paper returns r8, r13-r16):\n");
  for (size_t row : top5.rows) {
    std::printf("  r%-3zu %-13s %s\n", row + 1,
                after.ColumnByName("Model").CategoryAt(row).c_str(),
                after.ColumnByName("Color").CategoryAt(row).c_str());
  }
  std::printf("(any mutually-correlated diagonal set is an optimal answer; the paper's\n"
              " pick is one of them)\n");
  return 0;
}
