// Figure 7 — the Hockey model-construction case study: the top-50 records
// returned by SCODED for the counter-intuitive SC on (GPM, Games | DraftYear)
// are dominated by pre-2000 records with imputed GPM = 0.

#include <cstdio>
#include <set>

#include "bench_util.h"
#include "core/scoded.h"
#include "datasets/hockey.h"
#include "eval/metrics.h"

int main() {
  scoded::bench::Init("fig7_hockey_case_study");
  using namespace scoded;
  std::printf("=== Figure 7: hockey top-50 drill-down ===\n");

  HockeyData data = GenerateHockeyData().value();
  std::printf("players: %zu, ground-truth imputed GPM records: %zu\n", data.table.NumRows(),
              data.imputed_rows.size());

  Scoded system(data.table);
  ApproximateSc asc{system.Parse("GPM !_||_ Games | DraftYear").value(), 0.05};
  ViolationReport report = system.CheckViolation(asc).value();
  std::printf("SC %s: p = %.3g\n", asc.sc.ToString().c_str(), report.p_value);

  DrillDownResult top50 = system.DrillDown(asc, 50).value();
  std::printf("\n%-6s %-10s %-6s %-7s %-8s\n", "rank", "DraftYear", "GPM", "Games", "imputed?");
  std::set<size_t> truth(data.imputed_rows.begin(), data.imputed_rows.end());
  size_t gpm_zero = 0;
  size_t pre2000 = 0;
  for (size_t i = 0; i < top50.rows.size(); ++i) {
    size_t row = top50.rows[i];
    double year = data.table.ColumnByName("DraftYear").NumericAt(row);
    double gpm = data.table.ColumnByName("GPM").NumericAt(row);
    double games = data.table.ColumnByName("Games").NumericAt(row);
    gpm_zero += gpm == 0.0 ? 1 : 0;
    pre2000 += year <= 2000.0 ? 1 : 0;
    if (i < 10) {
      std::printf("%-6zu %-10.0f %-6.0f %-7.0f %s\n", i + 1, year, gpm, games,
                  truth.count(row) ? "yes" : "no");
    }
  }
  std::printf("... (first 10 of 50 shown)\n");
  PrecisionRecall pr = EvaluateTopK(top50.rows, truth, 50);
  std::printf("\nsummary of the top-50 (paper: 45/50 with GPM=0, all pre-2000):\n");
  std::printf("  GPM == 0:          %zu / 50\n", gpm_zero);
  std::printf("  DraftYear <= 2000: %zu / 50\n", pre2000);
  std::printf("  truly imputed:     %zu / 50 (precision %.2f)\n", pr.hits, pr.precision);
  return 0;
}
