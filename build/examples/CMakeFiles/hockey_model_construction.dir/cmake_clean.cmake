file(REMOVE_RECURSE
  "CMakeFiles/hockey_model_construction.dir/hockey_model_construction.cpp.o"
  "CMakeFiles/hockey_model_construction.dir/hockey_model_construction.cpp.o.d"
  "hockey_model_construction"
  "hockey_model_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hockey_model_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
