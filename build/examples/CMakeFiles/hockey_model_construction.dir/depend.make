# Empty dependencies file for hockey_model_construction.
# This may be replaced when dependencies are built.
