
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/full_pipeline.cpp" "examples/CMakeFiles/full_pipeline.dir/full_pipeline.cpp.o" "gcc" "examples/CMakeFiles/full_pipeline.dir/full_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/scoded_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/repair/CMakeFiles/scoded_repair.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/scoded_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/discovery/CMakeFiles/scoded_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/scoded_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/scoded_core.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/scoded_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/scoded_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/scoded_table.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/scoded_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
