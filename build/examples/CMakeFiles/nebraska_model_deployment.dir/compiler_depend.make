# Empty compiler generated dependencies file for nebraska_model_deployment.
# This may be replaced when dependencies are built.
