file(REMOVE_RECURSE
  "CMakeFiles/nebraska_model_deployment.dir/nebraska_model_deployment.cpp.o"
  "CMakeFiles/nebraska_model_deployment.dir/nebraska_model_deployment.cpp.o.d"
  "nebraska_model_deployment"
  "nebraska_model_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nebraska_model_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
