# Empty dependencies file for discovery_workflow.
# This may be replaced when dependencies are built.
