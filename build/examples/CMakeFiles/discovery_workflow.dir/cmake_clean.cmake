file(REMOVE_RECURSE
  "CMakeFiles/discovery_workflow.dir/discovery_workflow.cpp.o"
  "CMakeFiles/discovery_workflow.dir/discovery_workflow.cpp.o.d"
  "discovery_workflow"
  "discovery_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discovery_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
