file(REMOVE_RECURSE
  "CMakeFiles/csv_cleaning.dir/csv_cleaning.cpp.o"
  "CMakeFiles/csv_cleaning.dir/csv_cleaning.cpp.o.d"
  "csv_cleaning"
  "csv_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
