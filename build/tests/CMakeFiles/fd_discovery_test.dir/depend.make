# Empty dependencies file for fd_discovery_test.
# This may be replaced when dependencies are built.
