file(REMOVE_RECURSE
  "CMakeFiles/sc_monitor_test.dir/sc_monitor_test.cc.o"
  "CMakeFiles/sc_monitor_test.dir/sc_monitor_test.cc.o.d"
  "sc_monitor_test"
  "sc_monitor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
