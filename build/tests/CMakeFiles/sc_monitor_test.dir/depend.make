# Empty dependencies file for sc_monitor_test.
# This may be replaced when dependencies are built.
