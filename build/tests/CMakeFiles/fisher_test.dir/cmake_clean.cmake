file(REMOVE_RECURSE
  "CMakeFiles/fisher_test.dir/fisher_test.cc.o"
  "CMakeFiles/fisher_test.dir/fisher_test.cc.o.d"
  "fisher_test"
  "fisher_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fisher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
