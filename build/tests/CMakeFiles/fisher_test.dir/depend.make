# Empty dependencies file for fisher_test.
# This may be replaced when dependencies are built.
