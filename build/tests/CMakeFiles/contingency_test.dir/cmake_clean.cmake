file(REMOVE_RECURSE
  "CMakeFiles/contingency_test.dir/contingency_test.cc.o"
  "CMakeFiles/contingency_test.dir/contingency_test.cc.o.d"
  "contingency_test"
  "contingency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contingency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
