# Empty compiler generated dependencies file for ranks_test.
# This may be replaced when dependencies are built.
