file(REMOVE_RECURSE
  "CMakeFiles/ranks_test.dir/ranks_test.cc.o"
  "CMakeFiles/ranks_test.dir/ranks_test.cc.o.d"
  "ranks_test"
  "ranks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
