file(REMOVE_RECURSE
  "CMakeFiles/graphoid_test.dir/graphoid_test.cc.o"
  "CMakeFiles/graphoid_test.dir/graphoid_test.cc.o.d"
  "graphoid_test"
  "graphoid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphoid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
