# Empty compiler generated dependencies file for graphoid_test.
# This may be replaced when dependencies are built.
