file(REMOVE_RECURSE
  "CMakeFiles/hypothesis_test.dir/hypothesis_test.cc.o"
  "CMakeFiles/hypothesis_test.dir/hypothesis_test.cc.o.d"
  "hypothesis_test"
  "hypothesis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypothesis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
