# Empty dependencies file for scoded.
# This may be replaced when dependencies are built.
