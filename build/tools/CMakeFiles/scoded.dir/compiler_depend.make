# Empty compiler generated dependencies file for scoded.
# This may be replaced when dependencies are built.
