file(REMOVE_RECURSE
  "CMakeFiles/scoded.dir/scoded_cli.cc.o"
  "CMakeFiles/scoded.dir/scoded_cli.cc.o.d"
  "scoded"
  "scoded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
