# Empty compiler generated dependencies file for bench_fig9_sensor_comparison.
# This may be replaced when dependencies are built.
