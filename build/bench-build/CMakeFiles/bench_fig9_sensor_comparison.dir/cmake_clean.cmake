file(REMOVE_RECURSE
  "../bench/bench_fig9_sensor_comparison"
  "../bench/bench_fig9_sensor_comparison.pdb"
  "CMakeFiles/bench_fig9_sensor_comparison.dir/bench_fig9_sensor_comparison.cpp.o"
  "CMakeFiles/bench_fig9_sensor_comparison.dir/bench_fig9_sensor_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_sensor_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
