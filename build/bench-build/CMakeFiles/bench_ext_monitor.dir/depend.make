# Empty dependencies file for bench_ext_monitor.
# This may be replaced when dependencies are built.
