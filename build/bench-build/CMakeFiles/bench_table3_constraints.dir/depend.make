# Empty dependencies file for bench_table3_constraints.
# This may be replaced when dependencies are built.
