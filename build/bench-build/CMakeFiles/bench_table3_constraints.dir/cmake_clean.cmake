file(REMOVE_RECURSE
  "../bench/bench_table3_constraints"
  "../bench/bench_table3_constraints.pdb"
  "CMakeFiles/bench_table3_constraints.dir/bench_table3_constraints.cpp.o"
  "CMakeFiles/bench_table3_constraints.dir/bench_table3_constraints.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
