file(REMOVE_RECURSE
  "../bench/bench_fig12_hosp_afd"
  "../bench/bench_fig12_hosp_afd.pdb"
  "CMakeFiles/bench_fig12_hosp_afd.dir/bench_fig12_hosp_afd.cpp.o"
  "CMakeFiles/bench_fig12_hosp_afd.dir/bench_fig12_hosp_afd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_hosp_afd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
