# Empty dependencies file for bench_fig12_hosp_afd.
# This may be replaced when dependencies are built.
