file(REMOVE_RECURSE
  "../bench/bench_fig10_boston_dependence"
  "../bench/bench_fig10_boston_dependence.pdb"
  "CMakeFiles/bench_fig10_boston_dependence.dir/bench_fig10_boston_dependence.cpp.o"
  "CMakeFiles/bench_fig10_boston_dependence.dir/bench_fig10_boston_dependence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_boston_dependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
