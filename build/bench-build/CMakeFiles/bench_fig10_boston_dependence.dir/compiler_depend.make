# Empty compiler generated dependencies file for bench_fig10_boston_dependence.
# This may be replaced when dependencies are built.
