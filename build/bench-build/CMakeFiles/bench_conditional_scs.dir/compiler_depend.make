# Empty compiler generated dependencies file for bench_conditional_scs.
# This may be replaced when dependencies are built.
