file(REMOVE_RECURSE
  "../bench/bench_conditional_scs"
  "../bench/bench_conditional_scs.pdb"
  "CMakeFiles/bench_conditional_scs.dir/bench_conditional_scs.cpp.o"
  "CMakeFiles/bench_conditional_scs.dir/bench_conditional_scs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conditional_scs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
