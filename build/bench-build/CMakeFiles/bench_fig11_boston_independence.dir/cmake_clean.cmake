file(REMOVE_RECURSE
  "../bench/bench_fig11_boston_independence"
  "../bench/bench_fig11_boston_independence.pdb"
  "CMakeFiles/bench_fig11_boston_independence.dir/bench_fig11_boston_independence.cpp.o"
  "CMakeFiles/bench_fig11_boston_independence.dir/bench_fig11_boston_independence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_boston_independence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
