# Empty dependencies file for bench_fig11_boston_independence.
# This may be replaced when dependencies are built.
