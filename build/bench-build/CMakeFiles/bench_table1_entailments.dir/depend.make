# Empty dependencies file for bench_table1_entailments.
# This may be replaced when dependencies are built.
