file(REMOVE_RECURSE
  "../bench/bench_table1_entailments"
  "../bench/bench_table1_entailments.pdb"
  "CMakeFiles/bench_table1_entailments.dir/bench_table1_entailments.cpp.o"
  "CMakeFiles/bench_table1_entailments.dir/bench_table1_entailments.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_entailments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
