file(REMOVE_RECURSE
  "../bench/bench_table2_counterexample"
  "../bench/bench_table2_counterexample.pdb"
  "CMakeFiles/bench_table2_counterexample.dir/bench_table2_counterexample.cpp.o"
  "CMakeFiles/bench_table2_counterexample.dir/bench_table2_counterexample.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_counterexample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
