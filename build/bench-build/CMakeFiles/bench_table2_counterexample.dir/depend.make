# Empty dependencies file for bench_table2_counterexample.
# This may be replaced when dependencies are built.
