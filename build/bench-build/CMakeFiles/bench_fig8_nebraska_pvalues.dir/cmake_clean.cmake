file(REMOVE_RECURSE
  "../bench/bench_fig8_nebraska_pvalues"
  "../bench/bench_fig8_nebraska_pvalues.pdb"
  "CMakeFiles/bench_fig8_nebraska_pvalues.dir/bench_fig8_nebraska_pvalues.cpp.o"
  "CMakeFiles/bench_fig8_nebraska_pvalues.dir/bench_fig8_nebraska_pvalues.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_nebraska_pvalues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
