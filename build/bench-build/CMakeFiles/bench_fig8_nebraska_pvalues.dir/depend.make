# Empty dependencies file for bench_fig8_nebraska_pvalues.
# This may be replaced when dependencies are built.
