file(REMOVE_RECURSE
  "../bench/bench_stat_micro"
  "../bench/bench_stat_micro.pdb"
  "CMakeFiles/bench_stat_micro.dir/bench_stat_micro.cpp.o"
  "CMakeFiles/bench_stat_micro.dir/bench_stat_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stat_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
