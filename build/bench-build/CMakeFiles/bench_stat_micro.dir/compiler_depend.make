# Empty compiler generated dependencies file for bench_stat_micro.
# This may be replaced when dependencies are built.
