# Empty dependencies file for bench_fig13_car_categorical.
# This may be replaced when dependencies are built.
