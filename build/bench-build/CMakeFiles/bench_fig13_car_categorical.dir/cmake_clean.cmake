file(REMOVE_RECURSE
  "../bench/bench_fig13_car_categorical"
  "../bench/bench_fig13_car_categorical.pdb"
  "CMakeFiles/bench_fig13_car_categorical.dir/bench_fig13_car_categorical.cpp.o"
  "CMakeFiles/bench_fig13_car_categorical.dir/bench_fig13_car_categorical.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_car_categorical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
