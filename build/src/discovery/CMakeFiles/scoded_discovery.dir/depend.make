# Empty dependencies file for scoded_discovery.
# This may be replaced when dependencies are built.
