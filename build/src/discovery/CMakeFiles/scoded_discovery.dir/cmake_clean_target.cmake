file(REMOVE_RECURSE
  "libscoded_discovery.a"
)
