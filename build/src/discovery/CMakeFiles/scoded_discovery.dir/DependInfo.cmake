
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/discovery/association.cc" "src/discovery/CMakeFiles/scoded_discovery.dir/association.cc.o" "gcc" "src/discovery/CMakeFiles/scoded_discovery.dir/association.cc.o.d"
  "/root/repo/src/discovery/chow_liu.cc" "src/discovery/CMakeFiles/scoded_discovery.dir/chow_liu.cc.o" "gcc" "src/discovery/CMakeFiles/scoded_discovery.dir/chow_liu.cc.o.d"
  "/root/repo/src/discovery/dag.cc" "src/discovery/CMakeFiles/scoded_discovery.dir/dag.cc.o" "gcc" "src/discovery/CMakeFiles/scoded_discovery.dir/dag.cc.o.d"
  "/root/repo/src/discovery/fd_discovery.cc" "src/discovery/CMakeFiles/scoded_discovery.dir/fd_discovery.cc.o" "gcc" "src/discovery/CMakeFiles/scoded_discovery.dir/fd_discovery.cc.o.d"
  "/root/repo/src/discovery/pc.cc" "src/discovery/CMakeFiles/scoded_discovery.dir/pc.cc.o" "gcc" "src/discovery/CMakeFiles/scoded_discovery.dir/pc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/constraints/CMakeFiles/scoded_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/scoded_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/scoded_table.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/scoded_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
