file(REMOVE_RECURSE
  "CMakeFiles/scoded_discovery.dir/association.cc.o"
  "CMakeFiles/scoded_discovery.dir/association.cc.o.d"
  "CMakeFiles/scoded_discovery.dir/chow_liu.cc.o"
  "CMakeFiles/scoded_discovery.dir/chow_liu.cc.o.d"
  "CMakeFiles/scoded_discovery.dir/dag.cc.o"
  "CMakeFiles/scoded_discovery.dir/dag.cc.o.d"
  "CMakeFiles/scoded_discovery.dir/fd_discovery.cc.o"
  "CMakeFiles/scoded_discovery.dir/fd_discovery.cc.o.d"
  "CMakeFiles/scoded_discovery.dir/pc.cc.o"
  "CMakeFiles/scoded_discovery.dir/pc.cc.o.d"
  "libscoded_discovery.a"
  "libscoded_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoded_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
