# Empty dependencies file for scoded_datasets.
# This may be replaced when dependencies are built.
