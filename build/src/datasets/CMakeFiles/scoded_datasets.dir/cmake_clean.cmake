file(REMOVE_RECURSE
  "CMakeFiles/scoded_datasets.dir/boston.cc.o"
  "CMakeFiles/scoded_datasets.dir/boston.cc.o.d"
  "CMakeFiles/scoded_datasets.dir/car.cc.o"
  "CMakeFiles/scoded_datasets.dir/car.cc.o.d"
  "CMakeFiles/scoded_datasets.dir/errors.cc.o"
  "CMakeFiles/scoded_datasets.dir/errors.cc.o.d"
  "CMakeFiles/scoded_datasets.dir/hockey.cc.o"
  "CMakeFiles/scoded_datasets.dir/hockey.cc.o.d"
  "CMakeFiles/scoded_datasets.dir/hosp.cc.o"
  "CMakeFiles/scoded_datasets.dir/hosp.cc.o.d"
  "CMakeFiles/scoded_datasets.dir/nebraska.cc.o"
  "CMakeFiles/scoded_datasets.dir/nebraska.cc.o.d"
  "CMakeFiles/scoded_datasets.dir/sensor.cc.o"
  "CMakeFiles/scoded_datasets.dir/sensor.cc.o.d"
  "libscoded_datasets.a"
  "libscoded_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoded_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
