file(REMOVE_RECURSE
  "libscoded_datasets.a"
)
