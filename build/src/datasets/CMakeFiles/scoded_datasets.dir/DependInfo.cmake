
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/boston.cc" "src/datasets/CMakeFiles/scoded_datasets.dir/boston.cc.o" "gcc" "src/datasets/CMakeFiles/scoded_datasets.dir/boston.cc.o.d"
  "/root/repo/src/datasets/car.cc" "src/datasets/CMakeFiles/scoded_datasets.dir/car.cc.o" "gcc" "src/datasets/CMakeFiles/scoded_datasets.dir/car.cc.o.d"
  "/root/repo/src/datasets/errors.cc" "src/datasets/CMakeFiles/scoded_datasets.dir/errors.cc.o" "gcc" "src/datasets/CMakeFiles/scoded_datasets.dir/errors.cc.o.d"
  "/root/repo/src/datasets/hockey.cc" "src/datasets/CMakeFiles/scoded_datasets.dir/hockey.cc.o" "gcc" "src/datasets/CMakeFiles/scoded_datasets.dir/hockey.cc.o.d"
  "/root/repo/src/datasets/hosp.cc" "src/datasets/CMakeFiles/scoded_datasets.dir/hosp.cc.o" "gcc" "src/datasets/CMakeFiles/scoded_datasets.dir/hosp.cc.o.d"
  "/root/repo/src/datasets/nebraska.cc" "src/datasets/CMakeFiles/scoded_datasets.dir/nebraska.cc.o" "gcc" "src/datasets/CMakeFiles/scoded_datasets.dir/nebraska.cc.o.d"
  "/root/repo/src/datasets/sensor.cc" "src/datasets/CMakeFiles/scoded_datasets.dir/sensor.cc.o" "gcc" "src/datasets/CMakeFiles/scoded_datasets.dir/sensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/table/CMakeFiles/scoded_table.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/scoded_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
