# Empty dependencies file for scoded_stats.
# This may be replaced when dependencies are built.
