file(REMOVE_RECURSE
  "CMakeFiles/scoded_stats.dir/bootstrap.cc.o"
  "CMakeFiles/scoded_stats.dir/bootstrap.cc.o.d"
  "CMakeFiles/scoded_stats.dir/contingency.cc.o"
  "CMakeFiles/scoded_stats.dir/contingency.cc.o.d"
  "CMakeFiles/scoded_stats.dir/correlation.cc.o"
  "CMakeFiles/scoded_stats.dir/correlation.cc.o.d"
  "CMakeFiles/scoded_stats.dir/descriptive.cc.o"
  "CMakeFiles/scoded_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/scoded_stats.dir/fisher.cc.o"
  "CMakeFiles/scoded_stats.dir/fisher.cc.o.d"
  "CMakeFiles/scoded_stats.dir/hypothesis.cc.o"
  "CMakeFiles/scoded_stats.dir/hypothesis.cc.o.d"
  "CMakeFiles/scoded_stats.dir/kendall.cc.o"
  "CMakeFiles/scoded_stats.dir/kendall.cc.o.d"
  "CMakeFiles/scoded_stats.dir/multiple_testing.cc.o"
  "CMakeFiles/scoded_stats.dir/multiple_testing.cc.o.d"
  "CMakeFiles/scoded_stats.dir/ranks.cc.o"
  "CMakeFiles/scoded_stats.dir/ranks.cc.o.d"
  "CMakeFiles/scoded_stats.dir/segment_tree.cc.o"
  "CMakeFiles/scoded_stats.dir/segment_tree.cc.o.d"
  "libscoded_stats.a"
  "libscoded_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoded_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
