file(REMOVE_RECURSE
  "libscoded_stats.a"
)
