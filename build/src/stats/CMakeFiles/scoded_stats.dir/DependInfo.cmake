
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bootstrap.cc" "src/stats/CMakeFiles/scoded_stats.dir/bootstrap.cc.o" "gcc" "src/stats/CMakeFiles/scoded_stats.dir/bootstrap.cc.o.d"
  "/root/repo/src/stats/contingency.cc" "src/stats/CMakeFiles/scoded_stats.dir/contingency.cc.o" "gcc" "src/stats/CMakeFiles/scoded_stats.dir/contingency.cc.o.d"
  "/root/repo/src/stats/correlation.cc" "src/stats/CMakeFiles/scoded_stats.dir/correlation.cc.o" "gcc" "src/stats/CMakeFiles/scoded_stats.dir/correlation.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/stats/CMakeFiles/scoded_stats.dir/descriptive.cc.o" "gcc" "src/stats/CMakeFiles/scoded_stats.dir/descriptive.cc.o.d"
  "/root/repo/src/stats/fisher.cc" "src/stats/CMakeFiles/scoded_stats.dir/fisher.cc.o" "gcc" "src/stats/CMakeFiles/scoded_stats.dir/fisher.cc.o.d"
  "/root/repo/src/stats/hypothesis.cc" "src/stats/CMakeFiles/scoded_stats.dir/hypothesis.cc.o" "gcc" "src/stats/CMakeFiles/scoded_stats.dir/hypothesis.cc.o.d"
  "/root/repo/src/stats/kendall.cc" "src/stats/CMakeFiles/scoded_stats.dir/kendall.cc.o" "gcc" "src/stats/CMakeFiles/scoded_stats.dir/kendall.cc.o.d"
  "/root/repo/src/stats/multiple_testing.cc" "src/stats/CMakeFiles/scoded_stats.dir/multiple_testing.cc.o" "gcc" "src/stats/CMakeFiles/scoded_stats.dir/multiple_testing.cc.o.d"
  "/root/repo/src/stats/ranks.cc" "src/stats/CMakeFiles/scoded_stats.dir/ranks.cc.o" "gcc" "src/stats/CMakeFiles/scoded_stats.dir/ranks.cc.o.d"
  "/root/repo/src/stats/segment_tree.cc" "src/stats/CMakeFiles/scoded_stats.dir/segment_tree.cc.o" "gcc" "src/stats/CMakeFiles/scoded_stats.dir/segment_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/table/CMakeFiles/scoded_table.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/scoded_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
