# Empty dependencies file for scoded_baselines.
# This may be replaced when dependencies are built.
