
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/afd.cc" "src/baselines/CMakeFiles/scoded_baselines.dir/afd.cc.o" "gcc" "src/baselines/CMakeFiles/scoded_baselines.dir/afd.cc.o.d"
  "/root/repo/src/baselines/dboost.cc" "src/baselines/CMakeFiles/scoded_baselines.dir/dboost.cc.o" "gcc" "src/baselines/CMakeFiles/scoded_baselines.dir/dboost.cc.o.d"
  "/root/repo/src/baselines/dcdetect.cc" "src/baselines/CMakeFiles/scoded_baselines.dir/dcdetect.cc.o" "gcc" "src/baselines/CMakeFiles/scoded_baselines.dir/dcdetect.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/constraints/CMakeFiles/scoded_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/scoded_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/scoded_table.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/scoded_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
