file(REMOVE_RECURSE
  "CMakeFiles/scoded_baselines.dir/afd.cc.o"
  "CMakeFiles/scoded_baselines.dir/afd.cc.o.d"
  "CMakeFiles/scoded_baselines.dir/dboost.cc.o"
  "CMakeFiles/scoded_baselines.dir/dboost.cc.o.d"
  "CMakeFiles/scoded_baselines.dir/dcdetect.cc.o"
  "CMakeFiles/scoded_baselines.dir/dcdetect.cc.o.d"
  "libscoded_baselines.a"
  "libscoded_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoded_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
