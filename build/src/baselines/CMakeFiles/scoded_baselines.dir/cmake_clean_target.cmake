file(REMOVE_RECURSE
  "libscoded_baselines.a"
)
