file(REMOVE_RECURSE
  "libscoded_common.a"
)
