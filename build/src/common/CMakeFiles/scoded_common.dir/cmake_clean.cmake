file(REMOVE_RECURSE
  "CMakeFiles/scoded_common.dir/json.cc.o"
  "CMakeFiles/scoded_common.dir/json.cc.o.d"
  "CMakeFiles/scoded_common.dir/math.cc.o"
  "CMakeFiles/scoded_common.dir/math.cc.o.d"
  "CMakeFiles/scoded_common.dir/rng.cc.o"
  "CMakeFiles/scoded_common.dir/rng.cc.o.d"
  "CMakeFiles/scoded_common.dir/status.cc.o"
  "CMakeFiles/scoded_common.dir/status.cc.o.d"
  "CMakeFiles/scoded_common.dir/string_util.cc.o"
  "CMakeFiles/scoded_common.dir/string_util.cc.o.d"
  "libscoded_common.a"
  "libscoded_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoded_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
