# Empty compiler generated dependencies file for scoded_common.
# This may be replaced when dependencies are built.
