# Empty compiler generated dependencies file for scoded_table.
# This may be replaced when dependencies are built.
