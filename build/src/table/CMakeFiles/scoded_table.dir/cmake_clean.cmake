file(REMOVE_RECURSE
  "CMakeFiles/scoded_table.dir/column.cc.o"
  "CMakeFiles/scoded_table.dir/column.cc.o.d"
  "CMakeFiles/scoded_table.dir/csv.cc.o"
  "CMakeFiles/scoded_table.dir/csv.cc.o.d"
  "CMakeFiles/scoded_table.dir/group_by.cc.o"
  "CMakeFiles/scoded_table.dir/group_by.cc.o.d"
  "CMakeFiles/scoded_table.dir/ops.cc.o"
  "CMakeFiles/scoded_table.dir/ops.cc.o.d"
  "CMakeFiles/scoded_table.dir/schema.cc.o"
  "CMakeFiles/scoded_table.dir/schema.cc.o.d"
  "CMakeFiles/scoded_table.dir/table.cc.o"
  "CMakeFiles/scoded_table.dir/table.cc.o.d"
  "libscoded_table.a"
  "libscoded_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoded_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
