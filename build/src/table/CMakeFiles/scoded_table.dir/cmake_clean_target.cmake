file(REMOVE_RECURSE
  "libscoded_table.a"
)
