file(REMOVE_RECURSE
  "libscoded_repair.a"
)
