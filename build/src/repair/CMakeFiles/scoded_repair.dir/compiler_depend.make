# Empty compiler generated dependencies file for scoded_repair.
# This may be replaced when dependencies are built.
