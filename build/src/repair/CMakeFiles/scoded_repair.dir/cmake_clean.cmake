file(REMOVE_RECURSE
  "CMakeFiles/scoded_repair.dir/cell_repair.cc.o"
  "CMakeFiles/scoded_repair.dir/cell_repair.cc.o.d"
  "libscoded_repair.a"
  "libscoded_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoded_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
