# Empty dependencies file for scoded_eval.
# This may be replaced when dependencies are built.
