file(REMOVE_RECURSE
  "CMakeFiles/scoded_eval.dir/comparison.cc.o"
  "CMakeFiles/scoded_eval.dir/comparison.cc.o.d"
  "CMakeFiles/scoded_eval.dir/metrics.cc.o"
  "CMakeFiles/scoded_eval.dir/metrics.cc.o.d"
  "CMakeFiles/scoded_eval.dir/report.cc.o"
  "CMakeFiles/scoded_eval.dir/report.cc.o.d"
  "CMakeFiles/scoded_eval.dir/scoded_detector.cc.o"
  "CMakeFiles/scoded_eval.dir/scoded_detector.cc.o.d"
  "libscoded_eval.a"
  "libscoded_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoded_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
