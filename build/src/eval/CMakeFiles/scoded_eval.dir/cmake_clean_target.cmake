file(REMOVE_RECURSE
  "libscoded_eval.a"
)
