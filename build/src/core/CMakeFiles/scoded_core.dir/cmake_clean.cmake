file(REMOVE_RECURSE
  "CMakeFiles/scoded_core.dir/drilldown.cc.o"
  "CMakeFiles/scoded_core.dir/drilldown.cc.o.d"
  "CMakeFiles/scoded_core.dir/partition.cc.o"
  "CMakeFiles/scoded_core.dir/partition.cc.o.d"
  "CMakeFiles/scoded_core.dir/sc_monitor.cc.o"
  "CMakeFiles/scoded_core.dir/sc_monitor.cc.o.d"
  "CMakeFiles/scoded_core.dir/scoded.cc.o"
  "CMakeFiles/scoded_core.dir/scoded.cc.o.d"
  "CMakeFiles/scoded_core.dir/violation.cc.o"
  "CMakeFiles/scoded_core.dir/violation.cc.o.d"
  "libscoded_core.a"
  "libscoded_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoded_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
