
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/drilldown.cc" "src/core/CMakeFiles/scoded_core.dir/drilldown.cc.o" "gcc" "src/core/CMakeFiles/scoded_core.dir/drilldown.cc.o.d"
  "/root/repo/src/core/partition.cc" "src/core/CMakeFiles/scoded_core.dir/partition.cc.o" "gcc" "src/core/CMakeFiles/scoded_core.dir/partition.cc.o.d"
  "/root/repo/src/core/sc_monitor.cc" "src/core/CMakeFiles/scoded_core.dir/sc_monitor.cc.o" "gcc" "src/core/CMakeFiles/scoded_core.dir/sc_monitor.cc.o.d"
  "/root/repo/src/core/scoded.cc" "src/core/CMakeFiles/scoded_core.dir/scoded.cc.o" "gcc" "src/core/CMakeFiles/scoded_core.dir/scoded.cc.o.d"
  "/root/repo/src/core/violation.cc" "src/core/CMakeFiles/scoded_core.dir/violation.cc.o" "gcc" "src/core/CMakeFiles/scoded_core.dir/violation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/constraints/CMakeFiles/scoded_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/scoded_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/scoded_table.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/scoded_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
