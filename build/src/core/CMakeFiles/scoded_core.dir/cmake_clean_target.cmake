file(REMOVE_RECURSE
  "libscoded_core.a"
)
