# Empty compiler generated dependencies file for scoded_core.
# This may be replaced when dependencies are built.
