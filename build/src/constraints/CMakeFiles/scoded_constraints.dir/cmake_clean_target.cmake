file(REMOVE_RECURSE
  "libscoded_constraints.a"
)
