file(REMOVE_RECURSE
  "CMakeFiles/scoded_constraints.dir/denial_constraint.cc.o"
  "CMakeFiles/scoded_constraints.dir/denial_constraint.cc.o.d"
  "CMakeFiles/scoded_constraints.dir/graphoid.cc.o"
  "CMakeFiles/scoded_constraints.dir/graphoid.cc.o.d"
  "CMakeFiles/scoded_constraints.dir/ic.cc.o"
  "CMakeFiles/scoded_constraints.dir/ic.cc.o.d"
  "CMakeFiles/scoded_constraints.dir/sc.cc.o"
  "CMakeFiles/scoded_constraints.dir/sc.cc.o.d"
  "libscoded_constraints.a"
  "libscoded_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoded_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
