# Empty dependencies file for scoded_constraints.
# This may be replaced when dependencies are built.
