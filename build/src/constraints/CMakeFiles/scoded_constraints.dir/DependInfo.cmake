
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraints/denial_constraint.cc" "src/constraints/CMakeFiles/scoded_constraints.dir/denial_constraint.cc.o" "gcc" "src/constraints/CMakeFiles/scoded_constraints.dir/denial_constraint.cc.o.d"
  "/root/repo/src/constraints/graphoid.cc" "src/constraints/CMakeFiles/scoded_constraints.dir/graphoid.cc.o" "gcc" "src/constraints/CMakeFiles/scoded_constraints.dir/graphoid.cc.o.d"
  "/root/repo/src/constraints/ic.cc" "src/constraints/CMakeFiles/scoded_constraints.dir/ic.cc.o" "gcc" "src/constraints/CMakeFiles/scoded_constraints.dir/ic.cc.o.d"
  "/root/repo/src/constraints/sc.cc" "src/constraints/CMakeFiles/scoded_constraints.dir/sc.cc.o" "gcc" "src/constraints/CMakeFiles/scoded_constraints.dir/sc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/scoded_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/scoded_table.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/scoded_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
