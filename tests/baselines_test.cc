#include <set>
#include <string>

#include <gtest/gtest.h>

#include "baselines/afd.h"
#include "baselines/dboost.h"
#include "baselines/dcdetect.h"
#include "common/rng.h"
#include "table/table.h"

namespace scoded {
namespace {

TEST(DboostGaussianTest, FindsExtremeOutliers) {
  Rng rng(1);
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) {
    v.push_back(rng.Normal(10.0, 1.0));
  }
  v.push_back(50.0);  // row 200
  v.push_back(-40.0);  // row 201
  TableBuilder builder;
  builder.AddNumeric("v", v);
  Table t = std::move(builder).Build().value();
  DboostOptions gopt;
  gopt.model = DboostModel::kGaussian;
  Dboost detector(gopt);
  std::vector<size_t> top = detector.Rank(t, 2).value();
  std::set<size_t> expected = {200, 201};
  EXPECT_TRUE(expected.count(top[0]));
  EXPECT_TRUE(expected.count(top[1]));
}

TEST(DboostGaussianTest, IgnoresCategoricalColumns) {
  TableBuilder builder;
  builder.AddCategorical("c", {"a", "b", "a"});
  Table t = std::move(builder).Build().value();
  DboostOptions gopt;
  gopt.model = DboostModel::kGaussian;
  Dboost detector(gopt);
  std::vector<double> scores = detector.Scores(t).value();
  for (double s : scores) {
    EXPECT_DOUBLE_EQ(s, 0.0);
  }
}

TEST(DboostGaussianTest, BlindToImputedMeans) {
  // The paper's key observation (Sec. 6.3): imputed means look typical, so
  // dBoost cannot see them.
  Rng rng(2);
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) {
    v.push_back(rng.Normal(0.0, 1.0));
  }
  v.push_back(0.0);  // the imputed "error" sits at the mean
  TableBuilder builder;
  builder.AddNumeric("v", v);
  Table t = std::move(builder).Build().value();
  DboostOptions gopt;
  gopt.model = DboostModel::kGaussian;
  Dboost detector(gopt);
  std::vector<double> scores = detector.Scores(t).value();
  // The imputed row must be among the *least* suspicious.
  size_t below = 0;
  for (size_t i = 0; i < 200; ++i) {
    below += scores[i] > scores[200] ? 1 : 0;
  }
  EXPECT_GT(below, 150u);
}

TEST(DboostGmmTest, FindsOffModePoints) {
  Rng rng(3);
  std::vector<double> v;
  for (int i = 0; i < 150; ++i) {
    v.push_back(rng.Normal(-10.0, 0.5));
  }
  for (int i = 0; i < 150; ++i) {
    v.push_back(rng.Normal(10.0, 0.5));
  }
  v.push_back(40.0);  // far outside both modes (and any broad background
                      // component EM may fit): unlikely under the mixture
  TableBuilder builder;
  builder.AddNumeric("v", v);
  Table t = std::move(builder).Build().value();
  DboostOptions options;
  options.model = DboostModel::kGmm;
  Dboost detector(options);
  std::vector<size_t> top = detector.Rank(t, 1).value();
  EXPECT_EQ(top[0], 300u);
}

TEST(DboostHistogramTest, RareCategoriesScoreHigh) {
  std::vector<std::string> c(100, "common");
  c.push_back("rare");
  TableBuilder builder;
  builder.AddCategorical("c", c);
  Table t = std::move(builder).Build().value();
  DboostOptions hopt;
  hopt.model = DboostModel::kHistogram;
  Dboost detector(hopt);
  std::vector<size_t> top = detector.Rank(t, 1).value();
  EXPECT_EQ(top[0], 100u);
}

TEST(DboostHistogramTest, NumericBinning) {
  std::vector<double> v(100, 5.0);
  v.push_back(1000.0);
  TableBuilder builder;
  builder.AddNumeric("v", v);
  Table t = std::move(builder).Build().value();
  DboostOptions hopt;
  hopt.model = DboostModel::kHistogram;
  Dboost detector(hopt);
  EXPECT_EQ(detector.Rank(t, 1).value()[0], 100u);
}

TEST(DboostTest, ColumnSubsetRespected) {
  Rng rng(4);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 100; ++i) {
    a.push_back(rng.Normal());
    b.push_back(rng.Normal());
  }
  a.push_back(0.0);
  b.push_back(100.0);  // outlier only in the excluded column
  TableBuilder builder;
  builder.AddNumeric("a", a);
  builder.AddNumeric("b", b);
  Table t = std::move(builder).Build().value();
  DboostOptions options;
  options.columns = {"a"};
  Dboost detector(options);
  std::vector<double> scores = detector.Scores(t).value();
  EXPECT_LT(scores[100], 2.0);  // the b-outlier is invisible
  DboostOptions bad;
  bad.columns = {"missing"};
  EXPECT_FALSE(Dboost(bad).Rank(t, 5).ok());
}

TEST(DboostPairHistogramTest, FlagsRareCombinations) {
  // Both marginals common, the combination rare: only the pairwise model
  // can see it.
  std::vector<std::string> a;
  std::vector<std::string> b;
  for (int i = 0; i < 100; ++i) {
    a.push_back(i % 2 == 0 ? "x" : "y");
    b.push_back(i % 2 == 0 ? "p" : "q");  // perfect pairing x-p / y-q
  }
  a.push_back("x");
  b.push_back("q");  // the rare cross combination, row 100
  TableBuilder builder;
  builder.AddCategorical("a", a);
  builder.AddCategorical("b", b);
  Table t = std::move(builder).Build().value();
  DboostOptions pair_options;
  pair_options.model = DboostModel::kPairHistogram;
  Dboost pair_detector(pair_options);
  EXPECT_EQ(pair_detector.Rank(t, 1).value()[0], 100u);
  // The marginal histogram model cannot distinguish row 100.
  DboostOptions marginal_options;
  marginal_options.model = DboostModel::kHistogram;
  Dboost marginal(marginal_options);
  std::vector<double> scores = marginal.Scores(t).value();
  EXPECT_NEAR(scores[100], scores[0], 0.05);
}

TEST(DboostPairHistogramTest, MixedTypePairs) {
  Rng rng(11);
  std::vector<double> v;
  std::vector<std::string> c;
  for (int i = 0; i < 200; ++i) {
    double x = rng.Normal();
    v.push_back(x);
    c.push_back(x > 0 ? "pos" : "neg");
  }
  v.push_back(3.0);
  c.push_back("neg");  // a large value labelled negative: rare joint bin
  TableBuilder builder;
  builder.AddNumeric("v", v);
  builder.AddCategorical("c", c);
  Table t = std::move(builder).Build().value();
  DboostOptions options;
  options.model = DboostModel::kPairHistogram;
  Dboost detector(options);
  std::vector<double> scores = detector.Scores(t).value();
  size_t above = 0;
  for (size_t i = 0; i < 200; ++i) {
    above += scores[i] > scores[200] ? 1 : 0;
  }
  EXPECT_LT(above, 20u);  // the planted row is near the top
}

Table FdTable() {
  // zip -> city with two dirty rows (4 and 5).
  TableBuilder builder;
  builder.AddCategorical("zip", {"1", "1", "1", "2", "1", "2"});
  builder.AddCategorical("city", {"a", "a", "a", "b", "WRONG", "c"});
  return std::move(builder).Build().value();
}

TEST(DcDetectTest, FdShapedConstraintCounts) {
  DcDetect detector({MakeFdDc("zip", "city")});
  std::vector<int64_t> counts = detector.ViolationCounts(FdTable()).value();
  // zip=1 group: {a,a,a,WRONG}: the WRONG row conflicts with 3 others.
  EXPECT_EQ(counts[4], 3);
  EXPECT_EQ(counts[0], 1);
  // zip=2 group: {b, c} conflict with each other.
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(counts[5], 1);
  EXPECT_EQ(detector.Rank(FdTable(), 1).value()[0], 4u);
}

TEST(DcDetectTest, FastPathMatchesGenericPath) {
  // The same FD expressed in a 3-predicate (generic) form must give the
  // same counts as the recognised 2-predicate fast path.
  DenialConstraint generic;
  generic.predicates.push_back({0, "zip", CompareOp::kEq, 1, "zip"});
  generic.predicates.push_back({0, "city", CompareOp::kNeq, 1, "city"});
  generic.predicates.push_back({0, "zip", CompareOp::kEq, 1, "zip"});  // redundant
  DcDetect fast({MakeFdDc("zip", "city")});
  DcDetect slow({generic});
  EXPECT_EQ(fast.ViolationCounts(FdTable()).value(), slow.ViolationCounts(FdTable()).value());
}

TEST(DcDetectTest, OrderDcOnNumericColumns) {
  // DC: not(t0.a > t1.a and t0.b <= t1.b) — i.e. a and b must sort together.
  TableBuilder builder;
  builder.AddNumeric("a", {1, 2, 3, 4});
  builder.AddNumeric("b", {10, 20, 5, 40});  // row 2 breaks the order
  Table t = std::move(builder).Build().value();
  DcDetect detector({MakeOrderDc("a", "b")});
  std::vector<int64_t> counts = detector.ViolationCounts(t).value();
  // Row 2 (a=3, b=5) conflicts with rows 0 and 1 (larger a, smaller b)
  // but not with row 3 (both larger).
  EXPECT_EQ(counts[2], 2);
  EXPECT_EQ(detector.Rank(t, 1).value()[0], 2u);
}

TEST(DcDetectTest, ConditionalOrderDc) {
  TableBuilder builder;
  builder.AddCategorical("g", {"x", "x", "y", "y"});
  builder.AddNumeric("a", {1, 2, 1, 2});
  builder.AddNumeric("b", {10, 5, 10, 20});
  Table t = std::move(builder).Build().value();
  DcDetect detector({MakeConditionalOrderDc("g", "a", "b")});
  std::vector<int64_t> counts = detector.ViolationCounts(t).value();
  // Only the first group violates (a up, b down).
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 0);
  EXPECT_EQ(counts[3], 0);
}

TEST(DcDetectHcTest, SingleConstraintMatchesDcDetectOrdering) {
  // Fig. 9(a): with one constraint the holistic layer adds nothing.
  Table t = FdTable();
  std::vector<size_t> plain = DcDetect({MakeFdDc("zip", "city")}).Rank(t, 6).value();
  std::vector<size_t> holistic = DcDetectHc({MakeFdDc("zip", "city")}).Rank(t, 6).value();
  EXPECT_EQ(plain[0], holistic[0]);
}

TEST(DcDetectHcTest, CorroborationBoostsMultiConstraintRecords) {
  // Row 0 violates two constraints weakly; row 4 violates one strongly.
  TableBuilder builder;
  builder.AddCategorical("zip", {"1", "1", "2", "2", "3", "3", "3", "3"});
  builder.AddCategorical("city", {"BAD", "a", "b", "b", "c", "c", "c", "X"});
  builder.AddCategorical("state", {"BAD", "s1", "s2", "s2", "s3", "s3", "s3", "s3"});
  Table t = std::move(builder).Build().value();
  DcDetectHc hc({MakeFdDc("zip", "city"), MakeFdDc("zip", "state")});
  std::vector<size_t> ranking = hc.Rank(t, 8).value();
  EXPECT_EQ(ranking[0], 0u);  // two corroborating constraints outrank one
}

TEST(AfdTest, RanksRhsViolatorsAndMissesLhsTypos) {
  // zip "9X" is a typo'd LHS value: a singleton group with no violations.
  TableBuilder builder;
  builder.AddCategorical("zip", {"1", "1", "1", "1", "9X"});
  builder.AddCategorical("city", {"a", "a", "a", "WRONG", "a"});
  Table t = std::move(builder).Build().value();
  AfdDetector detector({{{"zip"}, {"city"}}});
  std::vector<int64_t> counts = detector.ViolationCounts(t).value();
  EXPECT_EQ(counts[3], 3);  // RHS typo conflicts with 3 rows
  EXPECT_EQ(counts[4], 0);  // LHS typo is invisible to AFD
  EXPECT_EQ(detector.Rank(t, 1).value()[0], 3u);
}

TEST(AfdTest, MultipleFdsSum) {
  TableBuilder builder;
  builder.AddCategorical("zip", {"1", "1", "1"});
  builder.AddCategorical("city", {"a", "a", "B"});
  builder.AddCategorical("state", {"s", "s", "T"});
  Table t = std::move(builder).Build().value();
  AfdDetector detector({{{"zip"}, {"city"}}, {{"zip"}, {"state"}}});
  std::vector<int64_t> counts = detector.ViolationCounts(t).value();
  EXPECT_EQ(counts[2], 4);  // 2 violations per FD
  EXPECT_EQ(counts[0], 2);
}

TEST(AfdTest, UnknownColumnErrors) {
  Table t = FdTable();
  AfdDetector detector({{{"nope"}, {"city"}}});
  EXPECT_FALSE(detector.Rank(t, 3).ok());
}

}  // namespace
}  // namespace scoded
