#include "repair/cell_repair.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/violation.h"
#include "table/table.h"

namespace scoded {
namespace {

TEST(CategoricalRepairTest, FixesFdTyposTowardDependence) {
  // zip -> city with typo'd cities (two zips share each city, as in real
  // postal data — a city unique to its zip would make G invariant under
  // any rewrite of that zip's rows): the DSC repair should rewrite the
  // typos back to each zip's majority city.
  std::vector<std::string> zip;
  std::vector<std::string> city;
  std::set<size_t> dirty;
  for (int z = 0; z < 20; ++z) {
    for (int r = 0; r < 30; ++r) {
      zip.push_back("Z" + std::to_string(z));
      if (r < 2) {
        dirty.insert(zip.size() - 1);
        city.push_back("TYPO_" + std::to_string(z) + "_" + std::to_string(r));
      } else {
        city.push_back("C" + std::to_string(z / 2));
      }
    }
  }
  TableBuilder builder;
  builder.AddCategorical("zip", zip);
  builder.AddCategorical("city", city);
  Table table = std::move(builder).Build().value();
  ApproximateSc asc{ParseConstraint("zip !_||_ city").value(), 0.05};

  RepairPlan plan = SuggestCellRepairs(table, asc, 40).value();
  EXPECT_EQ(plan.repairs.size(), 40u);
  // Every repaired row is a typo row, and the new value is the zip's city.
  auto expected_city_of = [&](size_t row) {
    int z = std::stoi(table.ColumnByName("zip").CategoryAt(row).substr(1));
    return "C" + std::to_string(z / 2);
  };
  for (const CellRepair& repair : plan.repairs) {
    EXPECT_TRUE(dirty.count(repair.row)) << "repaired a clean row " << repair.row;
    const std::string& proposed =
        table.ColumnByName("city").dictionary()[static_cast<size_t>(repair.categorical_code)];
    EXPECT_EQ(proposed, expected_city_of(repair.row));
  }
  // Applying the repairs yields an exact FD again.
  Table fixed = ApplyRepairs(table, plan.repairs).value();
  for (size_t i = 0; i < fixed.NumRows(); ++i) {
    EXPECT_EQ(fixed.ColumnByName("city").CategoryAt(i), expected_city_of(i));
  }
}

TEST(CategoricalRepairTest, IndependenceRepairReducesG) {
  // Over-represented diagonal: ISC repair must spread records off it.
  Rng rng(1);
  std::vector<std::string> x;
  std::vector<std::string> y;
  for (int i = 0; i < 200; ++i) {
    x.push_back("a" + std::to_string(rng.UniformInt(0, 2)));
    y.push_back("b" + std::to_string(rng.UniformInt(0, 2)));
  }
  for (int i = 0; i < 80; ++i) {
    x.push_back("a" + std::to_string(i % 3));
    y.push_back("b" + std::to_string(i % 3));
  }
  TableBuilder builder;
  builder.AddCategorical("x", x);
  builder.AddCategorical("y", y);
  Table table = std::move(builder).Build().value();
  ApproximateSc asc{ParseConstraint("x _||_ y").value(), 0.05};
  ASSERT_TRUE(DetectViolation(table, asc).value().violated);

  RepairPlan plan = SuggestCellRepairs(table, asc, 60).value();
  EXPECT_LT(plan.final_statistic, plan.initial_statistic);
  EXPECT_GT(plan.final_p, plan.initial_p);
  Table fixed = ApplyRepairs(table, plan.repairs).value();
  EXPECT_FALSE(DetectViolation(fixed, asc).value().violated);
}

TEST(NumericRepairTest, DependenceRepairTargetsImputedRows) {
  Rng rng(2);
  std::vector<double> x;
  std::vector<double> y;
  std::set<size_t> dirty;
  for (int i = 0; i < 150; ++i) {
    double v = rng.Normal();
    x.push_back(v);
    y.push_back(2.0 * v + rng.Normal(0.0, 0.05));
  }
  for (int i = 0; i < 25; ++i) {
    dirty.insert(x.size());
    x.push_back(rng.Normal());
    y.push_back(0.0);  // imputed constant
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  Table table = std::move(builder).Build().value();
  ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.05};

  RepairPlan plan = SuggestCellRepairs(table, asc, 25).value();
  EXPECT_GT(plan.final_statistic, plan.initial_statistic);
  size_t hits = 0;
  for (const CellRepair& repair : plan.repairs) {
    hits += dirty.count(repair.row);
    EXPECT_EQ(repair.column, table.ColumnIndex("y").value());
  }
  EXPECT_GE(hits, plan.repairs.size() * 7 / 10);
}

TEST(NumericRepairTest, IndependenceRepairRestoresConstraint) {
  Rng rng(3);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 150; ++i) {
    x.push_back(rng.Normal());
    y.push_back(rng.Normal());
  }
  for (int i = 0; i < 30; ++i) {
    double v = 4.0 + 0.1 * i;
    x.push_back(v);
    y.push_back(2.0 * v);  // planted correlated cluster
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  Table table = std::move(builder).Build().value();
  ApproximateSc asc{ParseConstraint("x _||_ y").value(), 0.05};
  ASSERT_TRUE(DetectViolation(table, asc).value().violated);

  RepairPlan plan = SuggestCellRepairs(table, asc, 40).value();
  EXPECT_LT(plan.final_statistic, plan.initial_statistic);
  Table fixed = ApplyRepairs(table, plan.repairs).value();
  EXPECT_FALSE(DetectViolation(fixed, asc).value().violated);
}

TEST(RepairTest, RepairPreservesRowCount) {
  Rng rng(4);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(rng.Normal());
    y.push_back(rng.Normal());
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  Table table = std::move(builder).Build().value();
  ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.05};
  RepairPlan plan = SuggestCellRepairs(table, asc, 5).value();
  Table fixed = ApplyRepairs(table, plan.repairs).value();
  EXPECT_EQ(fixed.NumRows(), table.NumRows());
}

TEST(RepairTest, RejectsSetValuedConstraints) {
  TableBuilder builder;
  builder.AddNumeric("a", {1, 2, 3});
  builder.AddNumeric("b", {1, 2, 3});
  builder.AddNumeric("c", {1, 2, 3});
  Table table = std::move(builder).Build().value();
  ApproximateSc set_valued{ParseConstraint("a _||_ b, c").value(), 0.05};
  EXPECT_FALSE(SuggestCellRepairs(table, set_valued, 3).ok());
}

TEST(ConditionalRepairTest, RepairsWithinStrata) {
  // Two strata with the same x-y coupling but disjoint y ranges; 20
  // imputed rows per stratum weaken the conditional dependence.
  // Conditional repair must fix them using values from the record's own
  // stratum. (Opposite-direction strata would be adversarial to the
  // summed-S convention every stratified τ computation in the paper and
  // this library uses.)
  Rng rng(7);
  std::vector<double> x;
  std::vector<double> y;
  std::vector<std::string> z;
  std::set<size_t> dirty;
  for (int s = 0; s < 2; ++s) {
    double offset = s == 0 ? 0.0 : 500.0;  // disjoint y ranges per stratum
    for (int i = 0; i < 80; ++i) {
      double v = rng.Normal();
      x.push_back(v);
      y.push_back(offset + 2.0 * v + rng.Normal(0.0, 0.05));
      z.push_back("s" + std::to_string(s));
    }
    for (int i = 0; i < 20; ++i) {
      dirty.insert(x.size());
      x.push_back(rng.Normal());
      y.push_back(offset);  // imputed constant per stratum
      z.push_back("s" + std::to_string(s));
    }
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  builder.AddCategorical("z", z);
  Table table = std::move(builder).Build().value();
  ApproximateSc asc{ParseConstraint("x !_||_ y | z").value(), 0.05};
  RepairPlan plan = SuggestCellRepairs(table, asc, 40).value();
  EXPECT_GT(plan.final_statistic, plan.initial_statistic);
  size_t hits = 0;
  for (const CellRepair& repair : plan.repairs) {
    hits += dirty.count(repair.row);
    // The proposed value must come from the record's own stratum's range.
    double y_old = table.ColumnByName("y").NumericAt(repair.row);
    bool stratum1 = y_old >= 250.0;
    EXPECT_EQ(repair.numeric_value >= 250.0, stratum1)
        << "repair crossed strata at row " << repair.row;
  }
  EXPECT_GE(hits, plan.repairs.size() * 7 / 10);
}

TEST(RepairTest, MixedTypePairRejected) {
  TableBuilder builder;
  builder.AddNumeric("a", {1, 2, 3});
  builder.AddCategorical("b", {"x", "y", "z"});
  Table table = std::move(builder).Build().value();
  ApproximateSc asc{ParseConstraint("a !_||_ b").value(), 0.05};
  Result<RepairPlan> plan = SuggestCellRepairs(table, asc, 2);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kUnimplemented);
}

TEST(ApplyRepairsTest, Validation) {
  TableBuilder builder;
  builder.AddCategorical("c", {"a", "b"});
  Table table = std::move(builder).Build().value();
  CellRepair bad_row{5, 0, 0.0, 0, 0.0};
  EXPECT_FALSE(ApplyRepairs(table, {bad_row}).ok());
  CellRepair bad_code{0, 0, 0.0, 99, 0.0};
  EXPECT_FALSE(ApplyRepairs(table, {bad_code}).ok());
  CellRepair bad_col{0, 7, 0.0, 0, 0.0};
  EXPECT_FALSE(ApplyRepairs(table, {bad_col}).ok());
}

TEST(CellRepairTest, ToStringRendering) {
  TableBuilder builder;
  builder.AddCategorical("city", {"WRONG", "right"});
  Table table = std::move(builder).Build().value();
  CellRepair repair{0, 0, 0.0, 1, 3.5};
  std::string text = repair.ToString(table);
  EXPECT_NE(text.find("WRONG"), std::string::npos);
  EXPECT_NE(text.find("right"), std::string::npos);
}

}  // namespace
}  // namespace scoded
