#include "eval/report.h"

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/rng.h"
#include "stats/multiple_testing.h"
#include "table/table.h"

namespace scoded {
namespace {

TEST(BenjaminiHochbergTest, KnownExample) {
  // Classic worked example: m=6 at q=0.05.
  std::vector<double> p = {0.005, 0.009, 0.05, 0.1, 0.2, 0.3};
  MultipleTestingResult r = BenjaminiHochberg(p, 0.05);
  EXPECT_TRUE(r.rejected[0]);
  EXPECT_TRUE(r.rejected[1]);   // 0.009 <= 2*0.05/6
  EXPECT_FALSE(r.rejected[2]);  // 0.05 > 3*0.05/6
  EXPECT_FALSE(r.rejected[5]);
  EXPECT_EQ(r.num_rejected, 2u);
  // Adjusted p-values: p_adj(1) = min over j>=1 of m p(j)/j.
  EXPECT_NEAR(r.adjusted_p[0], 0.027, 1e-9);  // 6*0.009/2 = 0.027 beats 0.03
  EXPECT_NEAR(r.adjusted_p[1], 0.027, 1e-9);
  EXPECT_NEAR(r.adjusted_p[5], 0.3, 1e-9);
}

TEST(BenjaminiHochbergTest, MonotoneAdjustedValues) {
  Rng rng(1);
  std::vector<double> p;
  for (int i = 0; i < 30; ++i) {
    p.push_back(rng.Uniform());
  }
  MultipleTestingResult r = BenjaminiHochberg(p, 0.1);
  // Adjusted values preserve the input ordering.
  for (size_t i = 0; i < p.size(); ++i) {
    for (size_t j = 0; j < p.size(); ++j) {
      if (p[i] < p[j]) {
        EXPECT_LE(r.adjusted_p[i], r.adjusted_p[j] + 1e-12);
      }
    }
    EXPECT_GE(r.adjusted_p[i], p[i] - 1e-12);  // adjustment never shrinks p
  }
}

TEST(BenjaminiHochbergTest, EdgeCases) {
  EXPECT_EQ(BenjaminiHochberg({}, 0.05).num_rejected, 0u);
  MultipleTestingResult all = BenjaminiHochberg({0.0, 0.0}, 0.05);
  EXPECT_EQ(all.num_rejected, 2u);
  MultipleTestingResult single = BenjaminiHochberg({0.04}, 0.05);
  EXPECT_TRUE(single.rejected[0]);
  EXPECT_DOUBLE_EQ(single.adjusted_p[0], 0.04);  // m=1: unchanged
}

TEST(BonferroniTest, StricterThanBh) {
  std::vector<double> p = {0.005, 0.009, 0.05};
  MultipleTestingResult bonf = Bonferroni(p, 0.05);
  MultipleTestingResult bh = BenjaminiHochberg(p, 0.05);
  EXPECT_LE(bonf.num_rejected, bh.num_rejected);
  EXPECT_DOUBLE_EQ(bonf.adjusted_p[0], 0.015);
}

TEST(JsonWriterTest, StructuresAndEscaping) {
  JsonWriter json;
  json.BeginObject();
  json.Key("name").String("a\"b\\c\nd");
  json.Key("count").Int(-3);
  json.Key("pi").Double(3.25);
  json.Key("flag").Bool(true);
  json.Key("missing").Null();
  json.Key("list").BeginArray().Int(1).Int(2).BeginObject().Key("x").Int(9).EndObject().EndArray();
  json.EndObject();
  EXPECT_EQ(json.str(),
            "{\"name\":\"a\\\"b\\\\c\\nd\",\"count\":-3,\"pi\":3.25,\"flag\":true,"
            "\"missing\":null,\"list\":[1,2,{\"x\":9}]}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.BeginArray().Double(std::numeric_limits<double>::infinity()).Double(0.5).EndArray();
  EXPECT_EQ(json.str(), "[null,0.5]");
}

Table PlantedTable(uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> z;
  for (int i = 0; i < 150; ++i) {
    x.push_back(rng.Normal());
    y.push_back(rng.Normal());
    z.push_back(rng.Normal());
  }
  for (int i = 0; i < 40; ++i) {  // plant x-y dependence
    double v = 4.0 + 0.1 * i;
    x.push_back(v);
    y.push_back(2.0 * v);
    z.push_back(rng.Normal());
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  builder.AddNumeric("z", z);
  return std::move(builder).Build().value();
}

TEST(CleaningReportTest, ConfirmsRealViolationAndDrillsDown) {
  Table table = PlantedTable(2);
  std::vector<ApproximateSc> constraints = {
      {Independence({"x"}, {"y"}), 0.05},   // genuinely violated
      {Independence({"x"}, {"z"}), 0.05},   // holds
      {Dependence({"x"}, {"y"}), 0.3},      // holds (dependence present)
  };
  CleaningReport report = GenerateCleaningReport(table, constraints).value();
  ASSERT_EQ(report.findings.size(), 3u);
  EXPECT_TRUE(report.findings[0].confirmed);
  EXPECT_FALSE(report.findings[1].confirmed);
  EXPECT_FALSE(report.findings[2].confirmed);
  EXPECT_EQ(report.confirmed_violations, 1u);
  EXPECT_EQ(report.findings[0].suspicious_rows.size(), 20u);
  EXPECT_TRUE(report.findings[1].suspicious_rows.empty());
}

TEST(CleaningReportTest, FdrControlDemotesBorderlineViolations) {
  // 12 independent pairs: at alpha=0.2 a couple will "violate" by chance;
  // BH at q=0.05 must demote chance findings far more often than not.
  Rng rng(3);
  TableBuilder builder;
  for (int c = 0; c < 13; ++c) {
    std::vector<double> v;
    for (int i = 0; i < 80; ++i) {
      v.push_back(rng.Normal());
    }
    builder.AddNumeric("c" + std::to_string(c), v);
  }
  Table table = std::move(builder).Build().value();
  std::vector<ApproximateSc> constraints;
  for (int c = 1; c < 13; ++c) {
    constraints.push_back({Independence({"c0"}, {"c" + std::to_string(c)}), 0.2});
  }
  ReportOptions options;
  options.fdr_q = 0.05;
  CleaningReport with_fdr = GenerateCleaningReport(table, constraints, options).value();
  options.fdr_control = false;
  CleaningReport without_fdr = GenerateCleaningReport(table, constraints, options).value();
  size_t raw = 0;
  for (const ConstraintFinding& finding : without_fdr.findings) {
    raw += finding.confirmed ? 1 : 0;
  }
  EXPECT_LE(with_fdr.confirmed_violations, raw);
  EXPECT_EQ(with_fdr.confirmed_violations, 0u);  // all null: FDR silences them
}

TEST(CleaningReportTest, RenderingsContainTheFindings) {
  Table table = PlantedTable(4);
  std::vector<ApproximateSc> constraints = {{Independence({"x"}, {"y"}), 0.05}};
  ReportOptions options;
  options.drilldown_k = 6;
  CleaningReport report = GenerateCleaningReport(table, constraints, options).value();
  std::string md = report.ToMarkdown(table, options);
  EXPECT_NE(md.find("x _||_ y"), std::string::npos);
  EXPECT_NE(md.find("**VIOLATED**"), std::string::npos);
  EXPECT_NE(md.find("Drill-down"), std::string::npos);
  std::string json = report.ToJson(table);
  EXPECT_NE(json.find("\"constraint\":\"x _||_ y\""), std::string::npos);
  EXPECT_NE(json.find("\"confirmed\":true"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace scoded
