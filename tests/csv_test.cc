#include "table/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace scoded::csv {
namespace {

TEST(CsvReadTest, BasicTypesInferred) {
  Table t = ReadString("name,age\nalice,30\nbob,25\n").value();
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.schema().field(0).type, ColumnType::kCategorical);
  EXPECT_EQ(t.schema().field(1).type, ColumnType::kNumeric);
  EXPECT_DOUBLE_EQ(t.ColumnByName("age").NumericAt(0), 30.0);
  EXPECT_EQ(t.ColumnByName("name").CategoryAt(1), "bob");
}

TEST(CsvReadTest, EmptyCellsBecomeNulls) {
  Table t = ReadString("a,b\n1,x\n,y\n3,\n").value();
  EXPECT_TRUE(t.ColumnByName("a").IsNull(1));
  EXPECT_TRUE(t.ColumnByName("b").IsNull(2));
  EXPECT_EQ(t.ColumnByName("a").NullCount(), 1u);
}

TEST(CsvReadTest, MixedColumnFallsBackToCategorical) {
  Table t = ReadString("v\n1\ntwo\n3\n").value();
  EXPECT_EQ(t.schema().field(0).type, ColumnType::kCategorical);
  EXPECT_EQ(t.column(0).CategoryAt(1), "two");
}

TEST(CsvReadTest, NoHeaderGeneratesColumnNames) {
  ReadOptions options;
  options.has_header = false;
  Table t = ReadString("1,2\n3,4\n", options).value();
  EXPECT_EQ(t.schema().field(0).name, "c0");
  EXPECT_EQ(t.schema().field(1).name, "c1");
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(CsvReadTest, QuotedFieldsWithDelimitersAndEscapes) {
  Table t = ReadString("a,b\n\"x,y\",\"say \"\"hi\"\"\"\n").value();
  EXPECT_EQ(t.column(0).CategoryAt(0), "x,y");
  EXPECT_EQ(t.column(1).CategoryAt(0), "say \"hi\"");
}

TEST(CsvReadTest, CrLfLineEndings) {
  Table t = ReadString("a\r\n1\r\n2\r\n").value();
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(t.column(0).NumericAt(1), 2.0);
}

TEST(CsvReadTest, RaggedRowIsError) {
  Result<Table> r = ReadString("a,b\n1\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvReadTest, EmptyInputIsError) {
  EXPECT_FALSE(ReadString("").ok());
}

TEST(CsvReadTest, CustomDelimiter) {
  ReadOptions options;
  options.delimiter = ';';
  Table t = ReadString("a;b\n1;2\n", options).value();
  EXPECT_EQ(t.NumColumns(), 2u);
  EXPECT_DOUBLE_EQ(t.column(1).NumericAt(0), 2.0);
}

TEST(CsvWriteTest, RoundTrip) {
  Table t = ReadString("name,score\nann,1.5\n\"b,c\",2\n").value();
  std::string text = WriteString(t);
  Table back = ReadString(text).value();
  EXPECT_EQ(back.NumRows(), t.NumRows());
  EXPECT_EQ(back.ColumnByName("name").CategoryAt(1), "b,c");
  EXPECT_DOUBLE_EQ(back.ColumnByName("score").NumericAt(0), 1.5);
}

TEST(CsvWriteTest, NullsRenderEmpty) {
  Table t = ReadString("a,b\n1,x\n,y\n2,z\n").value();
  std::string text = WriteString(t);
  EXPECT_EQ(text, "a,b\n1,x\n,y\n2,z\n");
}

TEST(CsvReadTest, BlankLinesAreSkipped) {
  Table t = ReadString("a\n1\n\n2\n").value();
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(CsvFileTest, WriteAndReadBack) {
  std::string path = ::testing::TempDir() + "/scoded_csv_test.csv";
  Table t = ReadString("x,y\n1,a\n2,b\n").value();
  ASSERT_TRUE(WriteFile(t, path).ok());
  Table back = ReadFile(path).value();
  EXPECT_EQ(back.NumRows(), 2u);
  EXPECT_EQ(back.ColumnByName("y").CategoryAt(1), "b");
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsNotFound) {
  Result<Table> r = ReadFile("/nonexistent/definitely/missing.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace scoded::csv
