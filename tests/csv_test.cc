#include "table/csv.h"

#include <cstdio>
#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "table/csv_stream.h"

#include <gtest/gtest.h>

namespace scoded::csv {
namespace {

TEST(CsvReadTest, BasicTypesInferred) {
  Table t = ReadString("name,age\nalice,30\nbob,25\n").value();
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.schema().field(0).type, ColumnType::kCategorical);
  EXPECT_EQ(t.schema().field(1).type, ColumnType::kNumeric);
  EXPECT_DOUBLE_EQ(t.ColumnByName("age").NumericAt(0), 30.0);
  EXPECT_EQ(t.ColumnByName("name").CategoryAt(1), "bob");
}

TEST(CsvReadTest, EmptyCellsBecomeNulls) {
  Table t = ReadString("a,b\n1,x\n,y\n3,\n").value();
  EXPECT_TRUE(t.ColumnByName("a").IsNull(1));
  EXPECT_TRUE(t.ColumnByName("b").IsNull(2));
  EXPECT_EQ(t.ColumnByName("a").NullCount(), 1u);
}

TEST(CsvReadTest, MixedColumnFallsBackToCategorical) {
  Table t = ReadString("v\n1\ntwo\n3\n").value();
  EXPECT_EQ(t.schema().field(0).type, ColumnType::kCategorical);
  EXPECT_EQ(t.column(0).CategoryAt(1), "two");
}

TEST(CsvReadTest, NoHeaderGeneratesColumnNames) {
  ReadOptions options;
  options.has_header = false;
  Table t = ReadString("1,2\n3,4\n", options).value();
  EXPECT_EQ(t.schema().field(0).name, "c0");
  EXPECT_EQ(t.schema().field(1).name, "c1");
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(CsvReadTest, QuotedFieldsWithDelimitersAndEscapes) {
  Table t = ReadString("a,b\n\"x,y\",\"say \"\"hi\"\"\"\n").value();
  EXPECT_EQ(t.column(0).CategoryAt(0), "x,y");
  EXPECT_EQ(t.column(1).CategoryAt(0), "say \"hi\"");
}

TEST(CsvReadTest, CrLfLineEndings) {
  Table t = ReadString("a\r\n1\r\n2\r\n").value();
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(t.column(0).NumericAt(1), 2.0);
}

TEST(CsvReadTest, RaggedRowIsError) {
  Result<Table> r = ReadString("a,b\n1\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvReadTest, EmptyInputIsError) {
  EXPECT_FALSE(ReadString("").ok());
}

TEST(CsvReadTest, CustomDelimiter) {
  ReadOptions options;
  options.delimiter = ';';
  Table t = ReadString("a;b\n1;2\n", options).value();
  EXPECT_EQ(t.NumColumns(), 2u);
  EXPECT_DOUBLE_EQ(t.column(1).NumericAt(0), 2.0);
}

TEST(CsvWriteTest, RoundTrip) {
  Table t = ReadString("name,score\nann,1.5\n\"b,c\",2\n").value();
  std::string text = WriteString(t);
  Table back = ReadString(text).value();
  EXPECT_EQ(back.NumRows(), t.NumRows());
  EXPECT_EQ(back.ColumnByName("name").CategoryAt(1), "b,c");
  EXPECT_DOUBLE_EQ(back.ColumnByName("score").NumericAt(0), 1.5);
}

TEST(CsvWriteTest, NullsRenderEmpty) {
  Table t = ReadString("a,b\n1,x\n,y\n2,z\n").value();
  std::string text = WriteString(t);
  EXPECT_EQ(text, "a,b\n1,x\n,y\n2,z\n");
}

TEST(CsvReadTest, BlankLinesAreSkipped) {
  Table t = ReadString("a\n1\n\n2\n").value();
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(CsvFileTest, WriteAndReadBack) {
  std::string path = ::testing::TempDir() + "/scoded_csv_test.csv";
  Table t = ReadString("x,y\n1,a\n2,b\n").value();
  ASSERT_TRUE(WriteFile(t, path).ok());
  Table back = ReadFile(path).value();
  EXPECT_EQ(back.NumRows(), 2u);
  EXPECT_EQ(back.ColumnByName("y").CategoryAt(1), "b");
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsNotFound) {
  Result<Table> r = ReadFile("/nonexistent/definitely/missing.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(CsvReadTest, QuotedNewlinesStayInsideField) {
  // A raw newline inside a quoted field is field content, not a record
  // terminator; the naive line-splitting reader used to break here.
  Table t = ReadString("a,b\n\"line1\nline2\",x\n1,y\n").value();
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.column(0).CategoryAt(0), "line1\nline2");
  EXPECT_EQ(t.column(1).CategoryAt(1), "y");
}

TEST(CsvReadTest, QuotedCrLfStaysInsideField) {
  Table t = ReadString("a\r\n\"x\r\ny\"\r\n").value();
  EXPECT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.column(0).CategoryAt(0), "x\r\ny");
}

TEST(CsvReadTest, WhitespacePreservedInsideQuotes) {
  // Unquoted fields are trimmed; quoted content is verbatim.
  Table t = ReadString("a,b\n  plain  ,\"  padded  \"\n").value();
  EXPECT_EQ(t.column(0).CategoryAt(0), "plain");
  EXPECT_EQ(t.column(1).CategoryAt(0), "  padded  ");
}

TEST(CsvReadTest, UnterminatedQuoteIsError) {
  Result<Table> r = ReadString("a\n\"oops\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvWriteTest, RoundTripPreservesNewlinesQuotesAndPadding) {
  const std::vector<std::string> nasty = {
      "plain",       "comma,inside", "quote\"inside", "newline\ninside",
      "crlf\r\nin",  "  padded  ",   "\ttabbed\t",    "both\",\nof them",
      "trailing\n",  "\"quoted\"",   "a,\"b\",c",     "ends with space ",
  };
  TableBuilder builder;
  builder.AddCategorical("v", nasty);
  Table t = std::move(builder).Build().value();
  std::string text = WriteString(t);
  Table back = ReadString(text).value();
  ASSERT_EQ(back.NumRows(), nasty.size());
  for (size_t i = 0; i < nasty.size(); ++i) {
    EXPECT_EQ(back.column(0).CategoryAt(i), nasty[i]) << "row " << i;
  }
  // Fixpoint: a second write of the re-read table is byte-identical.
  EXPECT_EQ(WriteString(back), text);
}

TEST(CsvWriteTest, HeaderNamesSurviveRoundTrip) {
  TableBuilder builder;
  builder.AddNumeric("with,comma", {1.0});
  builder.AddNumeric(" padded name ", {2.0});
  builder.AddNumeric("multi\nline", {3.0});
  Table t = std::move(builder).Build().value();
  Table back = ReadString(WriteString(t)).value();
  EXPECT_EQ(back.schema().field(0).name, "with,comma");
  EXPECT_EQ(back.schema().field(1).name, " padded name ");
  EXPECT_EQ(back.schema().field(2).name, "multi\nline");
  EXPECT_DOUBLE_EQ(back.ColumnByName(" padded name ").NumericAt(0), 2.0);
}

TEST(CsvWriteTest, RandomizedRoundTripProperty) {
  // Deterministic pseudo-random strings over a hostile alphabet; every
  // WriteString -> ReadString round trip must reproduce the table exactly.
  const std::string alphabet = "ab,\"\n\r \t;x";
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<std::string> col_a;
  std::vector<std::string> col_b;
  for (int r = 0; r < 60; ++r) {
    std::string a;
    std::string b;
    size_t len_a = next() % 8;
    size_t len_b = 1 + next() % 6;  // non-empty so no nulls complicate equality
    for (size_t i = 0; i < len_a; ++i) {
      a.push_back(alphabet[next() % alphabet.size()]);
    }
    for (size_t i = 0; i < len_b; ++i) {
      b.push_back(alphabet[next() % alphabet.size()]);
    }
    // An empty or all-whitespace unquoted value reads back as null, which
    // is by design; normalise those to a sentinel for exact comparison.
    if (a.empty()) {
      a = "x";
    }
    col_a.push_back(a);
    col_b.push_back(b);
  }
  TableBuilder builder;
  builder.AddCategorical("a", col_a);
  builder.AddCategorical("b", col_b);
  Table t = std::move(builder).Build().value();
  std::string text = WriteString(t);
  Table back = ReadString(text).value();
  ASSERT_EQ(back.NumRows(), t.NumRows());
  for (size_t r = 0; r < t.NumRows(); ++r) {
    if (t.column(0).IsNull(r)) {
      EXPECT_TRUE(back.column(0).IsNull(r));
    } else {
      EXPECT_EQ(back.column(0).CategoryAt(r), t.column(0).CategoryAt(r)) << "row " << r;
    }
    if (t.column(1).IsNull(r)) {
      EXPECT_TRUE(back.column(1).IsNull(r));
    } else {
      EXPECT_EQ(back.column(1).CategoryAt(r), t.column(1).CategoryAt(r)) << "row " << r;
    }
  }
  EXPECT_EQ(WriteString(back), text);
}

// ---------------------------------------------------------------------------
// ShardReader change detection: the reader's two passes verify, rather than
// trust, that the file stayed put in between.

namespace {

void WriteRows(const std::string& path, int rows, const char* tag) {
  std::ofstream out(path, std::ios::trunc);
  ASSERT_TRUE(out.good());
  out << "name,score\n";
  for (int i = 0; i < rows; ++i) {
    out << tag << i % 7 << ',' << i * 3 << '\n';
  }
}

// Drains the reader and returns the terminal status (OK when the file
// streamed to a clean end-of-input).
Status Drain(ShardReader& reader) {
  for (int guard = 0; guard < 1000; ++guard) {
    Result<std::optional<Table>> shard = reader.Next();
    if (!shard.ok()) {
      return shard.status();
    }
    if (!shard->has_value()) {
      return OkStatus();
    }
  }
  return InternalError("reader never terminated");
}

}  // namespace

TEST(ShardReaderChangeDetectionTest, UnchangedFileStreamsCleanly) {
  std::string path = ::testing::TempDir() + "/shard_reader_stable.csv";
  WriteRows(path, 50, "row");
  ShardReaderOptions options;
  options.shard_rows = 8;
  options.buffer_bytes = 64;  // small chunks: pass 2 reads the disk lazily
  Result<ShardReader> reader = ShardReader::Open(path, options);
  ASSERT_TRUE(reader.ok()) << reader.status().message();
  EXPECT_TRUE(Drain(*reader).ok());
  std::remove(path.c_str());
}

TEST(ShardReaderChangeDetectionTest, TruncationBetweenPassesIsDataLoss) {
  std::string path = ::testing::TempDir() + "/shard_reader_truncated.csv";
  WriteRows(path, 50, "row");
  ShardReaderOptions options;
  options.shard_rows = 8;
  options.buffer_bytes = 64;
  Result<ShardReader> reader = ShardReader::Open(path, options);
  ASSERT_TRUE(reader.ok()) << reader.status().message();
  WriteRows(path, 10, "row");  // rewritten shorter after the first pass
  Status status = Drain(*reader);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();
  EXPECT_NE(status.message().find("changed between passes"), std::string::npos)
      << status.message();
  std::remove(path.c_str());
}

TEST(ShardReaderChangeDetectionTest, AppendBetweenPassesIsDataLoss) {
  std::string path = ::testing::TempDir() + "/shard_reader_appended.csv";
  WriteRows(path, 50, "row");
  ShardReaderOptions options;
  options.shard_rows = 8;
  options.buffer_bytes = 64;
  Result<ShardReader> reader = ShardReader::Open(path, options);
  ASSERT_TRUE(reader.ok()) << reader.status().message();
  {
    std::ofstream out(path, std::ios::app);
    ASSERT_TRUE(out.good());
    for (int i = 0; i < 20; ++i) {
      out << "extra" << i % 5 << ',' << i << '\n';
    }
  }
  Status status = Drain(*reader);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();
  EXPECT_NE(status.message().find("changed between passes"), std::string::npos)
      << status.message();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace scoded::csv
