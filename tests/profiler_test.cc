// Tests for the span-aggregation profiler: direct aggregation semantics,
// span-driven self-time attribution, the structured log <-> span-id join
// point, and two end-to-end acceptance checks — the CLI's --profile and a
// bench binary's default-on profile must agree with the corresponding
// trace spans to within 5%.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/fileio.h"
#include "common/json.h"
#include "obs/log.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace scoded {
namespace {

// ------------------------------------------------- direct aggregation

TEST(ProfilerTest, AggregatesByNameEdgeAndStack) {
  obs::Profiler profiler;
  profiler.RecordSpan("child", "root", "root;child", 30, 30);
  profiler.RecordSpan("child", "root", "root;child", 50, 50);
  profiler.RecordSpan("root", "", "root", 100, 20);
  EXPECT_EQ(profiler.NumSpanNames(), 2u);

  Result<JsonValue> parsed = ParseJson(profiler.SnapshotJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* spans = parsed->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->array.size(), 2u);
  // Sorted by self time descending: child (80µs) before root (20µs).
  EXPECT_EQ(spans->array[0].Find("name")->string_value, "child");
  EXPECT_EQ(spans->array[0].Find("count")->number, 2.0);
  EXPECT_EQ(spans->array[0].Find("total_ms")->number, 0.08);
  EXPECT_EQ(spans->array[0].Find("self_ms")->number, 0.08);
  EXPECT_EQ(spans->array[1].Find("name")->string_value, "root");
  EXPECT_EQ(spans->array[1].Find("total_ms")->number, 0.1);
  EXPECT_EQ(spans->array[1].Find("self_ms")->number, 0.02);

  const JsonValue* edges = parsed->Find("edges");
  ASSERT_NE(edges, nullptr);
  ASSERT_EQ(edges->array.size(), 1u);
  EXPECT_EQ(edges->array[0].Find("parent")->string_value, "root");
  EXPECT_EQ(edges->array[0].Find("child")->string_value, "child");
  EXPECT_EQ(edges->array[0].Find("count")->number, 2.0);

  const JsonValue* stacks = parsed->Find("stacks");
  ASSERT_NE(stacks, nullptr);
  ASSERT_EQ(stacks->array.size(), 2u);
  // Collapsed-stack dump: one "path self_us" line per distinct stack.
  std::string collapsed = profiler.CollapsedStacks();
  EXPECT_NE(collapsed.find("root;child 80"), std::string::npos);
  EXPECT_NE(collapsed.find("root 20"), std::string::npos);

  std::string table = profiler.FlatTableText();
  EXPECT_NE(table.find("child"), std::string::npos);
  EXPECT_NE(table.find("root"), std::string::npos);

  profiler.Clear();
  EXPECT_EQ(profiler.NumSpanNames(), 0u);
}

TEST(ProfilerTest, FlatTableHonoursTopN) {
  obs::Profiler profiler;
  profiler.RecordSpan("a", "", "a", 300, 300);
  profiler.RecordSpan("b", "", "b", 200, 200);
  profiler.RecordSpan("c", "", "c", 100, 100);
  std::string table = profiler.FlatTableText(1);
  EXPECT_NE(table.find("a"), std::string::npos);
  EXPECT_EQ(table.find("\nb "), std::string::npos);
  EXPECT_EQ(table.find("\nc "), std::string::npos);
}

TEST(ProfilerTest, EmptyProfilerRendersCleanly) {
  obs::Profiler profiler;
  EXPECT_NE(profiler.FlatTableText().find("no spans recorded"), std::string::npos);
  Result<JsonValue> parsed = ParseJson(profiler.SnapshotJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Find("spans")->array.empty());
  EXPECT_TRUE(profiler.CollapsedStacks().empty());
}

// ----------------------------------------- span-driven (live) profiling

#if !defined(SCODED_OBS_DISABLED)

void SpinFor(std::chrono::microseconds duration) {
  auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - start < duration) {
  }
}

TEST(ProfilerTest, ScopedSpansFeedSelfTimeAndEdges) {
  obs::Profiler::Global().Clear();
  obs::EnableProfiler();
  {
    obs::ScopedSpan outer("pt_outer");
    SpinFor(std::chrono::microseconds(2000));
    {
      obs::ScopedSpan inner("pt_inner");
      SpinFor(std::chrono::microseconds(2000));
    }
  }
  obs::DisableProfiler();

  Result<JsonValue> parsed = ParseJson(obs::Profiler::Global().SnapshotJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::map<std::string, const JsonValue*> by_name;
  for (const JsonValue& span : parsed->Find("spans")->array) {
    by_name[span.Find("name")->string_value] = &span;
  }
  ASSERT_TRUE(by_name.count("pt_outer"));
  ASSERT_TRUE(by_name.count("pt_inner"));
  double outer_total = by_name["pt_outer"]->Find("total_ms")->number;
  double outer_self = by_name["pt_outer"]->Find("self_ms")->number;
  double inner_total = by_name["pt_inner"]->Find("total_ms")->number;
  // The outer span contains the inner: total >= inner total, and self =
  // total minus the inner's share (both burned ~2ms of real work).
  EXPECT_GE(outer_total, inner_total);
  EXPECT_NEAR(outer_self, outer_total - inner_total, 0.05);
  EXPECT_GE(outer_self, 1.0);
  EXPECT_GE(inner_total, 1.0);

  bool found_edge = false;
  for (const JsonValue& edge : parsed->Find("edges")->array) {
    if (edge.Find("parent")->string_value == "pt_outer" &&
        edge.Find("child")->string_value == "pt_inner") {
      found_edge = true;
    }
  }
  EXPECT_TRUE(found_edge);
  EXPECT_NE(obs::Profiler::Global().CollapsedStacks().find("pt_outer;pt_inner"),
            std::string::npos);
  obs::Profiler::Global().Clear();
}

TEST(ProfilerTest, SpanIdsVisibleToLoggingInsideSpans) {
  obs::EnableProfiler();
  EXPECT_EQ(obs::CurrentSpanId(), 0u);
  {
    obs::ScopedSpan span("pt_log_span");
    uint64_t id = obs::CurrentSpanId();
    EXPECT_NE(id, 0u);
    std::string record = obs::FormatLogRecord(obs::LogLevel::kInfo, "inside", {},
                                              obs::CurrentSpanId(), 1, obs::CurrentTid());
    EXPECT_NE(record.find("\"span\":" + std::to_string(id)), std::string::npos);
  }
  EXPECT_EQ(obs::CurrentSpanId(), 0u);
  obs::DisableProfiler();
  obs::Profiler::Global().Clear();
}

#endif  // !SCODED_OBS_DISABLED

// ------------------------------------ end-to-end: CLI and bench binaries

#if defined(SCODED_CLI_BIN) && defined(SCODED_FIXTURE_CSV)

// Sums trace-event durations by span name, in ms. (Unused in
// SCODED_OBS_DISABLED builds, where both surfaces are empty.)
[[maybe_unused]] std::map<std::string, double> TraceTotalsMs(const JsonValue& trace) {
  std::map<std::string, double> totals;
  for (const JsonValue& event : trace.array) {
    totals[event.Find("name")->string_value] += event.Find("dur")->number / 1000.0;
  }
  return totals;
}

// Acceptance: profile totals must agree with the trace spans to within 5%
// (both surfaces aggregate the same ScopedSpan durations). A small
// absolute slack covers sub-millisecond spans where 5% is below the
// clock's resolution.
[[maybe_unused]] void ExpectProfileMatchesTrace(const JsonValue& profile,
                                                const JsonValue& trace) {
  std::map<std::string, double> trace_ms = TraceTotalsMs(trace);
  const JsonValue* spans = profile.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_FALSE(spans->array.empty());
  for (const JsonValue& span : spans->array) {
    const std::string& name = span.Find("name")->string_value;
    ASSERT_TRUE(trace_ms.count(name)) << "span " << name << " missing from trace";
    double profile_total = span.Find("total_ms")->number;
    double trace_total = trace_ms[name];
    double tolerance = std::max(0.05 * trace_total, 0.05);
    EXPECT_NEAR(profile_total, trace_total, tolerance) << "span " << name;
  }
}

TEST(ProfilerEndToEndTest, CliProfileAgreesWithTrace) {
  std::string dir = ::testing::TempDir();
  std::string profile_path = dir + "/scoded_profile.json";
  std::string trace_path = dir + "/scoded_profile_trace.json";
  std::string command = std::string(SCODED_CLI_BIN) + " check --csv " + SCODED_FIXTURE_CSV +
                        " --sc \"Model _||_ Color\" --alpha 0.05 --profile " + profile_path +
                        " --trace-out " + trace_path + " > /dev/null 2>&1";
  int rc = std::system(command.c_str());
  ASSERT_EQ(rc, 0) << "command failed: " << command;

  Result<std::string> profile_text = ReadTextFile(profile_path);
  ASSERT_TRUE(profile_text.ok()) << profile_text.status().ToString();
  Result<JsonValue> profile = ParseJson(*profile_text);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  Result<std::string> trace_text = ReadTextFile(trace_path);
  ASSERT_TRUE(trace_text.ok()) << trace_text.status().ToString();
  Result<JsonValue> trace = ParseJson(*trace_text);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();

#if defined(SCODED_OBS_DISABLED)
  // Spans are compiled out: both surfaces must still emit valid, empty JSON.
  EXPECT_TRUE(profile->Find("spans")->array.empty());
  EXPECT_TRUE(trace->array.empty());
#else
  ExpectProfileMatchesTrace(*profile, *trace);
  // The whole-run span must be present and carry nonzero time.
  bool found_main = false;
  for (const JsonValue& span : profile->Find("spans")->array) {
    if (span.Find("name")->string_value == "cli/main") {
      found_main = true;
      EXPECT_GT(span.Find("total_ms")->number, 0.0);
    }
  }
  EXPECT_TRUE(found_main);
#endif
  std::remove(profile_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(ProfilerEndToEndTest, CliProfileCreatesMissingParentDirectories) {
  std::string dir = ::testing::TempDir() + "/scoded_prof_nested/deeper";
  std::string profile_path = dir + "/profile.json";
  std::string command = std::string(SCODED_CLI_BIN) + " check --csv " + SCODED_FIXTURE_CSV +
                        " --sc \"Model _||_ Color\" --alpha 0.05 --profile " + profile_path +
                        " > /dev/null 2>&1";
  ASSERT_EQ(std::system(command.c_str()), 0);
  Result<std::string> text = ReadTextFile(profile_path);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_TRUE(ParseJson(*text).ok());
  std::remove(profile_path.c_str());
}

#endif  // SCODED_CLI_BIN && SCODED_FIXTURE_CSV

#if defined(SCODED_BENCH_FIG14_BIN)

TEST(ProfilerEndToEndTest, Fig14BenchProfileAgreesWithTrace) {
  std::string dir = ::testing::TempDir() + "/scoded_fig14_bench";
  std::string command = "mkdir -p " + dir + " && cd " + dir +
                        " && SCODED_BENCH_TRACE=fig14_trace.json " + SCODED_BENCH_FIG14_BIN +
                        " > /dev/null 2>&1";
  int rc = std::system(command.c_str());
  ASSERT_EQ(rc, 0) << "command failed: " << command;

  Result<std::string> bench_text = ReadTextFile(dir + "/BENCH_fig14_scalability.json");
  ASSERT_TRUE(bench_text.ok()) << bench_text.status().ToString();
  Result<JsonValue> bench = ParseJson(*bench_text);
  ASSERT_TRUE(bench.ok()) << bench.status().ToString();
  // Build attribution rides along in every bench artefact.
  const JsonValue* build = bench->Find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_FALSE(build->Find("git_describe")->string_value.empty());

  Result<std::string> trace_text = ReadTextFile(dir + "/fig14_trace.json");
  ASSERT_TRUE(trace_text.ok()) << trace_text.status().ToString();
  Result<JsonValue> trace = ParseJson(*trace_text);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();

#if defined(SCODED_OBS_DISABLED)
  EXPECT_TRUE(trace->array.empty());
#else
  const JsonValue* profile = bench->Find("profile");
  ASSERT_NE(profile, nullptr) << "bench artefact lacks the default-on profile section";
  ExpectProfileMatchesTrace(*profile, *trace);
#endif
}

#endif  // SCODED_BENCH_FIG14_BIN

}  // namespace
}  // namespace scoded
