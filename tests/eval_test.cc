#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/boston.h"
#include "datasets/errors.h"
#include "eval/comparison.h"
#include "eval/metrics.h"
#include "eval/scoded_detector.h"
#include "table/table.h"

namespace scoded {
namespace {

TEST(MetricsTest, ExactValues) {
  std::vector<size_t> ranking = {5, 3, 9, 1, 7};
  std::set<size_t> truth = {3, 7, 100};
  PrecisionRecall at3 = EvaluateTopK(ranking, truth, 3);
  EXPECT_EQ(at3.hits, 1u);
  EXPECT_DOUBLE_EQ(at3.precision, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(at3.recall, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(at3.f_score, 1.0 / 3.0);
  PrecisionRecall at5 = EvaluateTopK(ranking, truth, 5);
  EXPECT_EQ(at5.hits, 2u);
  EXPECT_DOUBLE_EQ(at5.precision, 0.4);
  EXPECT_NEAR(at5.recall, 2.0 / 3.0, 1e-12);
}

// Regression: precision@k must divide by the number of guesses actually
// made, min(k, |ranking|), not by k — a detector that returns one perfect
// guess is not 25% precise at k=4.
TEST(MetricsTest, ShortRankingPrecisionOverGuessesMade) {
  std::vector<size_t> ranking = {1};
  std::set<size_t> truth = {1, 2};
  PrecisionRecall at4 = EvaluateTopK(ranking, truth, 4);
  EXPECT_EQ(at4.hits, 1u);
  EXPECT_DOUBLE_EQ(at4.precision, 1.0);
  EXPECT_DOUBLE_EQ(at4.recall, 0.5);
  // A short ranking with a miss still counts the miss against precision.
  PrecisionRecall miss = EvaluateTopK({1, 9}, truth, 4);
  EXPECT_EQ(miss.hits, 1u);
  EXPECT_DOUBLE_EQ(miss.precision, 0.5);
}

TEST(MetricsTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(EvaluateTopK({}, {1}, 3).f_score, 0.0);
  EXPECT_DOUBLE_EQ(EvaluateTopK({1}, {}, 1).recall, 0.0);
  EXPECT_EQ(EvaluateTopK({1}, {1}, 0).k, 0u);
}

TEST(MetricsTest, PerfectRanking) {
  std::vector<size_t> ranking = {1, 2, 3};
  std::set<size_t> truth = {1, 2, 3};
  PrecisionRecall r = EvaluateTopK(ranking, truth, 3);
  EXPECT_DOUBLE_EQ(r.f_score, 1.0);
}

TEST(MetricsTest, SweepMatchesIndividualCalls) {
  std::vector<size_t> ranking = {4, 2, 8, 6};
  std::set<size_t> truth = {2, 6};
  std::vector<PrecisionRecall> sweep = EvaluateAtKs(ranking, truth, {1, 2, 4});
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_EQ(sweep[1].hits, EvaluateTopK(ranking, truth, 2).hits);
  EXPECT_EQ(sweep[2].hits, 2u);
}

TEST(MetricsTest, BestFScoreFindsOptimum) {
  // Hits at positions 1 and 2, then misses: best F is at k=2.
  std::vector<size_t> ranking = {10, 11, 3, 4, 5};
  std::set<size_t> truth = {10, 11};
  PrecisionRecall best = BestFScore(ranking, truth);
  EXPECT_EQ(best.k, 2u);
  EXPECT_DOUBLE_EQ(best.f_score, 1.0);
}

TEST(ScodedDetectorTest, SingleConstraintEndToEnd) {
  BostonOptions options;
  options.rows = 500;
  Table clean = GenerateBostonData(options).value();
  InjectionOptions inject;
  inject.rate = 0.25;
  InjectionResult dirty = InjectSortingError(clean, "N", inject).value();
  std::set<size_t> truth(dirty.dirty_rows.begin(), dirty.dirty_rows.end());

  ScodedDetector detector({{ParseConstraint("N !_||_ D").value(), 0.05}});
  std::vector<size_t> ranking = detector.Rank(dirty.table, truth.size()).value();
  PrecisionRecall result = EvaluateTopK(ranking, truth, truth.size());
  // Sorting errors against a dependence SC: the paper reports F ≈ 0.6.
  EXPECT_GT(result.f_score, 0.4);
}

TEST(ScodedDetectorTest, MultiConstraintFusionRuns) {
  BostonOptions options;
  options.rows = 400;
  Table clean = GenerateBostonData(options).value();
  InjectionOptions inject;
  inject.rate = 0.2;
  InjectionResult dirty = InjectImputationError(clean, "N", inject).value();
  ScodedDetector detector({
      {ParseConstraint("N !_||_ D").value(), 0.05},
      {ParseConstraint("N !_||_ C").value(), 0.05},
  });
  std::vector<size_t> ranking = detector.Rank(dirty.table, 100).value();
  EXPECT_EQ(ranking.size(), 100u);
  std::set<size_t> unique(ranking.begin(), ranking.end());
  EXPECT_EQ(unique.size(), ranking.size());
}

TEST(ComparisonTest, CurvesEvaluateAllDetectors) {
  BostonOptions options;
  options.rows = 300;
  Table clean = GenerateBostonData(options).value();
  InjectionOptions inject;
  inject.rate = 0.25;
  InjectionResult dirty = InjectSortingError(clean, "N", inject).value();
  std::set<size_t> truth(dirty.dirty_rows.begin(), dirty.dirty_rows.end());
  ScodedDetector scoded({{ParseConstraint("N !_||_ D").value(), 0.05}});
  ScodedDetector broken({{ParseConstraint("N !_||_ missing").value(), 0.05}});
  std::vector<size_t> ks = StandardKSweep(truth.size());
  ComparisonResult result = CompareDetectors(dirty.table, truth, {&scoded, &broken}, ks);
  ASSERT_EQ(result.curves.size(), 2u);
  EXPECT_TRUE(result.curves[0].error.empty());
  EXPECT_EQ(result.curves[0].at_k.size(), ks.size());
  EXPECT_GT(result.curves[0].best.f_score, 0.3);
  EXPECT_FALSE(result.curves[1].error.empty());  // broken detector reported
  std::string text = result.ToText();
  EXPECT_NE(text.find("SCODED"), std::string::npos);
  EXPECT_NE(text.find("bestF"), std::string::npos);
  EXPECT_NE(text.find("failed"), std::string::npos);
}

TEST(ComparisonTest, StandardSweepScalesWithTruth) {
  std::vector<size_t> ks = StandardKSweep(100);
  EXPECT_EQ(ks, (std::vector<size_t>{25, 50, 75, 100, 125, 150}));
  EXPECT_TRUE(StandardKSweep(0).empty());
}

TEST(ScodedDetectorTest, EmptyConstraintsRejected) {
  Table t = GenerateBostonData({50, 1}).value();
  ScodedDetector detector({});
  EXPECT_FALSE(detector.Rank(t, 10).ok());
}

}  // namespace
}  // namespace scoded
