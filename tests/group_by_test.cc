#include "table/group_by.h"

#include <gtest/gtest.h>

#include "table/table.h"

namespace scoded {
namespace {

Table MakeTable() {
  TableBuilder builder;
  builder.AddCategorical("color", {"r", "g", "r", "g", "r"});
  builder.AddNumeric("value", {1.0, 2.0, 1.0, 2.0, 3.0});
  return std::move(builder).Build().value();
}

TEST(GroupByTest, SingleCategoricalColumn) {
  Table t = MakeTable();
  GroupByResult g = GroupRows(t, {0});
  ASSERT_EQ(g.groups.size(), 2u);
  EXPECT_EQ(g.groups[0], (std::vector<size_t>{0, 2, 4}));
  EXPECT_EQ(g.groups[1], (std::vector<size_t>{1, 3}));
  EXPECT_EQ(g.group_of_row, (std::vector<size_t>{0, 1, 0, 1, 0}));
}

TEST(GroupByTest, NumericExactGrouping) {
  Table t = MakeTable();
  GroupByResult g = GroupRows(t, {1});
  EXPECT_EQ(g.groups.size(), 3u);
}

TEST(GroupByTest, MultiColumnKeys) {
  Table t = MakeTable();
  GroupByResult g = GroupRows(t, {0, 1});
  // (r,1) x2, (g,2) x2, (r,3) x1
  EXPECT_EQ(g.groups.size(), 3u);
  EXPECT_EQ(g.keys[0].size(), 2u);
}

TEST(GroupByTest, EmptyColumnListGroupsEverything) {
  Table t = MakeTable();
  GroupByResult g = GroupRows(t, {});
  ASSERT_EQ(g.groups.size(), 1u);
  EXPECT_EQ(g.groups[0].size(), 5u);
}

TEST(GroupByTest, SubsetOfRows) {
  Table t = MakeTable();
  GroupByResult g = GroupRows(t, {0}, {1, 2, 3});
  ASSERT_EQ(g.groups.size(), 2u);
  EXPECT_EQ(g.groups[0], (std::vector<size_t>{1, 3}));  // "g" appears first now
  EXPECT_EQ(g.groups[1], (std::vector<size_t>{2}));
}

TEST(GroupByTest, NullsFormTheirOwnGroup) {
  TableBuilder builder;
  builder.AddNumericWithNulls("v", {1.0, 0.0, 1.0}, {true, false, true});
  Table t = std::move(builder).Build().value();
  GroupByResult g = GroupRows(t, {0});
  EXPECT_EQ(g.groups.size(), 2u);
}

TEST(EncodeCellKeyTest, NegativeZeroEqualsPositiveZero) {
  Column col = Column::Numeric({0.0, -0.0});
  EXPECT_EQ(EncodeCellKey(col, 0), EncodeCellKey(col, 1));
}

TEST(EncodeCellKeyTest, CategoricalUsesCodes) {
  Column col = Column::Categorical({"a", "b", "a"});
  EXPECT_EQ(EncodeCellKey(col, 0), EncodeCellKey(col, 2));
  EXPECT_NE(EncodeCellKey(col, 0), EncodeCellKey(col, 1));
}

}  // namespace
}  // namespace scoded
