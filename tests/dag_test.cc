#include "discovery/dag.h"

#include <gtest/gtest.h>

namespace scoded {
namespace {

Dag ChainAbc() {
  // A -> B -> C.
  Dag dag({"A", "B", "C"});
  EXPECT_TRUE(dag.AddEdge("A", "B").ok());
  EXPECT_TRUE(dag.AddEdge("B", "C").ok());
  return dag;
}

TEST(DagTest, EdgeBookkeeping) {
  Dag dag = ChainAbc();
  EXPECT_TRUE(dag.HasEdge(0, 1));
  EXPECT_FALSE(dag.HasEdge(1, 0));
  EXPECT_EQ(dag.Parents(2), (std::vector<int>{1}));
  EXPECT_EQ(dag.Children(0), (std::vector<int>{1}));
}

TEST(DagTest, RejectsSelfLoopsDuplicatesAndCycles) {
  Dag dag = ChainAbc();
  EXPECT_EQ(dag.AddEdge(0, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dag.AddEdge(0, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(dag.AddEdge(2, 0).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(dag.AddEdge(0, 5).code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(dag.NodeIndex("missing").ok());
}

TEST(DSeparationTest, ChainBlockedByMiddle) {
  Dag dag = ChainAbc();
  EXPECT_FALSE(dag.DSeparated({0}, {2}, {}));   // A -> B -> C active
  EXPECT_TRUE(dag.DSeparated({0}, {2}, {1}));   // blocked by B
}

TEST(DSeparationTest, ForkBlockedByParent) {
  // B <- A -> C.
  Dag dag({"A", "B", "C"});
  ASSERT_TRUE(dag.AddEdge("A", "B").ok());
  ASSERT_TRUE(dag.AddEdge("A", "C").ok());
  EXPECT_FALSE(dag.DSeparated({1}, {2}, {}));
  EXPECT_TRUE(dag.DSeparated({1}, {2}, {0}));
}

TEST(DSeparationTest, ColliderOpensWhenConditioned) {
  // A -> C <- B.
  Dag dag({"A", "B", "C"});
  ASSERT_TRUE(dag.AddEdge("A", "C").ok());
  ASSERT_TRUE(dag.AddEdge("B", "C").ok());
  EXPECT_TRUE(dag.DSeparated({0}, {1}, {}));    // collider blocks
  EXPECT_FALSE(dag.DSeparated({0}, {1}, {2}));  // conditioning opens it
}

TEST(DSeparationTest, ColliderDescendantAlsoOpens) {
  // A -> C <- B, C -> D: conditioning on D (a descendant of the collider)
  // activates the path.
  Dag dag({"A", "B", "C", "D"});
  ASSERT_TRUE(dag.AddEdge("A", "C").ok());
  ASSERT_TRUE(dag.AddEdge("B", "C").ok());
  ASSERT_TRUE(dag.AddEdge("C", "D").ok());
  EXPECT_TRUE(dag.DSeparated({0}, {1}, {}));
  EXPECT_FALSE(dag.DSeparated({0}, {1}, {3}));
}

TEST(DSeparationTest, PaperCarExample) {
  // Figure 1(b): Model -> Color? The paper's network has edges among
  // Model, Color, Price, Fuel with Color ⊥ Price | Model. Encode
  // Color <- Model -> Price -> Fuel.
  Dag dag({"Model", "Color", "Price", "Fuel"});
  ASSERT_TRUE(dag.AddEdge("Model", "Color").ok());
  ASSERT_TRUE(dag.AddEdge("Model", "Price").ok());
  ASSERT_TRUE(dag.AddEdge("Price", "Fuel").ok());
  int model = dag.NodeIndex("Model").value();
  int color = dag.NodeIndex("Color").value();
  int price = dag.NodeIndex("Price").value();
  int fuel = dag.NodeIndex("Fuel").value();
  EXPECT_FALSE(dag.DSeparated({color}, {price}, {}));
  EXPECT_TRUE(dag.DSeparated({color}, {price}, {model}));
  EXPECT_TRUE(dag.DSeparated({color}, {fuel}, {model}));
  EXPECT_FALSE(dag.DSeparated({model}, {fuel}, {}));
  EXPECT_TRUE(dag.DSeparated({model}, {fuel}, {price}));
}

TEST(DSeparationTest, SetArguments) {
  // A -> B, A -> C, D isolated.
  Dag dag({"A", "B", "C", "D"});
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  ASSERT_TRUE(dag.AddEdge(0, 2).ok());
  EXPECT_TRUE(dag.DSeparated({1, 2}, {3}, {}));
  EXPECT_FALSE(dag.DSeparated({1, 2}, {0}, {}));
  EXPECT_TRUE(dag.DSeparated({1}, {2, 3}, {0}));
}

TEST(ImpliedIndependenciesTest, ChainYieldsExpectedScs) {
  Dag dag = ChainAbc();
  std::vector<StatisticalConstraint> scs = dag.ImpliedIndependencies(1);
  // Expect A ⊥ C | B among them, and no unconditional A ⊥ C.
  bool found_conditional = false;
  bool found_marginal = false;
  for (const StatisticalConstraint& sc : scs) {
    if (sc.x == std::vector<std::string>{"A"} && sc.y == std::vector<std::string>{"C"}) {
      if (sc.z == std::vector<std::string>{"B"}) {
        found_conditional = true;
      }
      if (sc.z.empty()) {
        found_marginal = true;
      }
    }
  }
  EXPECT_TRUE(found_conditional);
  EXPECT_FALSE(found_marginal);
}

TEST(ImpliedIndependenciesTest, IsolatedNodeIndependentOfEverything) {
  Dag dag({"A", "B"});
  std::vector<StatisticalConstraint> scs = dag.ImpliedIndependencies(0);
  ASSERT_EQ(scs.size(), 1u);
  EXPECT_EQ(scs[0], Independence({"A"}, {"B"}));
}

}  // namespace
}  // namespace scoded
