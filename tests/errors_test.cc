#include "datasets/errors.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scoded {
namespace {

Table NumericTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> a;
  std::vector<double> b;
  for (size_t i = 0; i < n; ++i) {
    a.push_back(rng.Normal(10.0, 3.0));
    b.push_back(rng.Normal(0.0, 1.0));
  }
  TableBuilder builder;
  builder.AddNumeric("A", a);
  builder.AddNumeric("B", b);
  return std::move(builder).Build().value();
}

TEST(SortingErrorTest, OnlySelectedRowsChangeAndMultisetPreserved) {
  Table t = NumericTable(200, 1);
  InjectionOptions options;
  options.rate = 0.3;
  InjectionResult r = InjectSortingError(t, "A", options).value();
  EXPECT_EQ(r.dirty_rows.size(), 60u);
  std::set<size_t> dirty(r.dirty_rows.begin(), r.dirty_rows.end());
  // Unselected rows unchanged.
  for (size_t i = 0; i < t.NumRows(); ++i) {
    if (dirty.count(i) == 0) {
      EXPECT_DOUBLE_EQ(r.table.ColumnByName("A").NumericAt(i),
                       t.ColumnByName("A").NumericAt(i));
    }
  }
  // The multiset of values on the dirty rows is preserved (a permutation).
  std::vector<double> before;
  std::vector<double> after;
  for (size_t row : r.dirty_rows) {
    before.push_back(t.ColumnByName("A").NumericAt(row));
    after.push_back(r.table.ColumnByName("A").NumericAt(row));
  }
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  EXPECT_EQ(before, after);
  // Values ascend in row order (no guide column).
  std::vector<size_t> sorted_rows = r.dirty_rows;
  std::sort(sorted_rows.begin(), sorted_rows.end());
  for (size_t i = 1; i < sorted_rows.size(); ++i) {
    EXPECT_LE(r.table.ColumnByName("A").NumericAt(sorted_rows[i - 1]),
              r.table.ColumnByName("A").NumericAt(sorted_rows[i]));
  }
}

TEST(SortingErrorTest, BasedOnColumnCreatesMonotoneCoupling) {
  Table t = NumericTable(300, 2);
  InjectionOptions options;
  options.rate = 0.5;
  options.based_on = "B";
  InjectionResult r = InjectSortingError(t, "A", options).value();
  // Among dirty rows, A must now be a non-decreasing function of B.
  std::vector<size_t> rows = r.dirty_rows;
  std::sort(rows.begin(), rows.end(), [&](size_t x, size_t y) {
    return t.ColumnByName("B").NumericAt(x) < t.ColumnByName("B").NumericAt(y);
  });
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(r.table.ColumnByName("A").NumericAt(rows[i - 1]),
              r.table.ColumnByName("A").NumericAt(rows[i]));
  }
}

TEST(ImputationErrorTest, DirtyRowsGetTheMean) {
  Table t = NumericTable(100, 3);
  double mean = 0.0;
  for (size_t i = 0; i < 100; ++i) {
    mean += t.ColumnByName("A").NumericAt(i);
  }
  mean /= 100.0;
  InjectionOptions options;
  options.rate = 0.2;
  InjectionResult r = InjectImputationError(t, "A", options).value();
  EXPECT_EQ(r.dirty_rows.size(), 20u);
  for (size_t row : r.dirty_rows) {
    EXPECT_DOUBLE_EQ(r.table.ColumnByName("A").NumericAt(row), mean);
  }
}

TEST(ImputationErrorTest, BasedOnSelectsTopRowsOfGuide) {
  Table t = NumericTable(100, 4);
  InjectionOptions options;
  options.rate = 0.1;
  options.based_on = "B";
  InjectionResult r = InjectImputationError(t, "A", options).value();
  // Every selected row's B must be >= every unselected row's B.
  std::set<size_t> dirty(r.dirty_rows.begin(), r.dirty_rows.end());
  double min_selected = 1e300;
  double max_unselected = -1e300;
  for (size_t i = 0; i < 100; ++i) {
    double b = t.ColumnByName("B").NumericAt(i);
    if (dirty.count(i)) {
      min_selected = std::min(min_selected, b);
    } else {
      max_unselected = std::max(max_unselected, b);
    }
  }
  EXPECT_GE(min_selected, max_unselected);
}

TEST(ImputationErrorTest, CategoricalUsesMode) {
  TableBuilder builder;
  builder.AddCategorical("C", {"a", "a", "a", "b", "c", "b", "a"});
  Table t = std::move(builder).Build().value();
  InjectionOptions options;
  options.rate = 1.0;
  InjectionResult r = InjectImputationError(t, "C", options).value();
  for (size_t i = 0; i < r.table.NumRows(); ++i) {
    EXPECT_EQ(r.table.ColumnByName("C").CategoryAt(i), "a");
  }
}

TEST(CombinationErrorTest, SplitsBudgetDisjointly) {
  Table t = NumericTable(200, 5);
  InjectionOptions options;
  options.rate = 0.4;
  InjectionResult r = InjectCombinationError(t, "A", options).value();
  EXPECT_EQ(r.dirty_rows.size(), 80u);
  std::set<size_t> unique(r.dirty_rows.begin(), r.dirty_rows.end());
  EXPECT_EQ(unique.size(), 80u);
}

TEST(InjectErrorTest, DispatcherAndErrors) {
  Table t = NumericTable(50, 6);
  InjectionOptions options;
  options.rate = 0.2;
  for (SyntheticErrorType type : {SyntheticErrorType::kSorting, SyntheticErrorType::kImputation,
                                  SyntheticErrorType::kCombination}) {
    InjectionResult r = InjectError(type, t, "A", options).value();
    EXPECT_EQ(r.table.NumRows(), t.NumRows());
    EXPECT_FALSE(r.dirty_rows.empty());
  }
  EXPECT_FALSE(InjectSortingError(t, "missing", options).ok());
  options.based_on = "missing";
  EXPECT_FALSE(InjectImputationError(t, "A", options).ok());
}

TEST(InjectErrorTest, DeterministicForFixedSeed) {
  Table t = NumericTable(100, 7);
  InjectionOptions options;
  options.rate = 0.25;
  options.seed = 42;
  InjectionResult a = InjectSortingError(t, "A", options).value();
  InjectionResult b = InjectSortingError(t, "A", options).value();
  EXPECT_EQ(a.dirty_rows, b.dirty_rows);
  for (size_t i = 0; i < t.NumRows(); ++i) {
    EXPECT_DOUBLE_EQ(a.table.ColumnByName("A").NumericAt(i),
                     b.table.ColumnByName("A").NumericAt(i));
  }
}

TEST(InjectErrorTest, RateZeroAndOne) {
  Table t = NumericTable(40, 8);
  InjectionOptions options;
  options.rate = 0.0;
  EXPECT_TRUE(InjectSortingError(t, "A", options).value().dirty_rows.empty());
  options.rate = 1.0;
  EXPECT_EQ(InjectImputationError(t, "A", options).value().dirty_rows.size(), 40u);
}

// Regression: an all-null categorical column has no mode, and the mode
// lookup used to index an empty count vector. It must fail cleanly instead.
TEST(ImputationErrorTest, AllNullCategoricalColumnIsRejected) {
  TableBuilder builder;
  builder.AddColumn("C", Column::CategoricalFromCodes(std::vector<int32_t>{-1, -1, -1},
                                                      std::vector<std::string>{}));
  builder.AddNumeric("A", {1.0, 2.0, 3.0});
  Table t = std::move(builder).Build().value();
  InjectionOptions options;
  options.rate = 1.0;
  Result<InjectionResult> r = InjectImputationError(t, "C", options);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("non-null category"), std::string::npos);
  EXPECT_NE(r.status().message().find("C"), std::string::npos);
}

TEST(SortingErrorTest, CategoricalColumnSortsByCategoryName) {
  TableBuilder builder;
  builder.AddCategorical("C", {"delta", "alpha", "charlie", "bravo"});
  Table t = std::move(builder).Build().value();
  InjectionOptions options;
  options.rate = 1.0;
  InjectionResult r = InjectSortingError(t, "C", options).value();
  EXPECT_EQ(r.table.ColumnByName("C").CategoryAt(0), "alpha");
  EXPECT_EQ(r.table.ColumnByName("C").CategoryAt(3), "delta");
}

}  // namespace
}  // namespace scoded
