#include "core/stream_monitor.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/violation.h"
#include "table/table.h"

namespace scoded {
namespace {

Table Prototype() {
  TableBuilder builder;
  builder.AddNumeric("x", {});
  builder.AddNumeric("y", {});
  builder.AddNumeric("w", {});
  return std::move(builder).Build().value();
}

Table CorrelatedBatch(uint64_t seed, int rows) {
  Rng rng(seed);
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> w;
  for (int i = 0; i < rows; ++i) {
    double v = rng.Normal();
    x.push_back(v);
    y.push_back(v + rng.Normal(0.0, 0.3));
    w.push_back(rng.Normal());
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  builder.AddNumeric("w", w);
  return std::move(builder).Build().value();
}

std::vector<ApproximateSc> TwoConstraints() {
  return {{ParseConstraint("x !_||_ y").value(), 0.3},
          {ParseConstraint("x _||_ w").value(), 0.01}};
}

TEST(StreamMonitorTest, CreateIsAllOrNothing) {
  std::vector<ApproximateSc> constraints = TwoConstraints();
  EXPECT_TRUE(StreamMonitor::Create(Prototype(), constraints).ok());
  constraints.push_back({ParseConstraint("x _||_ nope").value(), 0.05});
  EXPECT_FALSE(StreamMonitor::Create(Prototype(), constraints).ok());
  EXPECT_TRUE(StreamMonitor::Create(Prototype(), {}).ok());
}

TEST(StreamMonitorTest, FansBatchesToEveryMonitor) {
  StreamMonitor stream = StreamMonitor::Create(Prototype(), TwoConstraints()).value();
  EXPECT_EQ(stream.NumMonitors(), 2u);
  ASSERT_TRUE(stream.Append(CorrelatedBatch(11, 60)).ok());
  ASSERT_TRUE(stream.Append(CorrelatedBatch(12, 40)).ok());
  EXPECT_EQ(stream.NumRecords(), 100u);
  std::vector<StreamMonitor::ConstraintState> states = stream.States();
  ASSERT_EQ(states.size(), 2u);
  for (const StreamMonitor::ConstraintState& state : states) {
    EXPECT_EQ(state.records, 100u);
    EXPECT_FALSE(state.violated);
  }
  EXPECT_EQ(states[0].constraint, "x !_||_ y");
  // x !_||_ y genuinely is dependent, x _||_ w genuinely independent.
  EXPECT_LT(states[0].p_value, 0.01);
  EXPECT_GT(states[1].p_value, 0.01);
  EXPECT_FALSE(stream.AnyViolated());
}

TEST(StreamMonitorTest, StatesMatchSingleMonitorsExactly) {
  // Group fan-out must be pure bookkeeping: each owned monitor ends in the
  // same state as a standalone ScMonitor fed the same batches.
  StreamMonitor stream = StreamMonitor::Create(Prototype(), TwoConstraints()).value();
  std::vector<ScMonitor> solo;
  for (const ApproximateSc& asc : TwoConstraints()) {
    solo.push_back(ScMonitor::Create(Prototype(), asc).value());
  }
  for (uint64_t seed = 20; seed < 25; ++seed) {
    Table batch = CorrelatedBatch(seed, 30);
    ASSERT_TRUE(stream.Append(batch).ok());
    for (ScMonitor& monitor : solo) {
      ASSERT_TRUE(monitor.Append(batch).ok());
    }
  }
  for (size_t i = 0; i < solo.size(); ++i) {
    EXPECT_DOUBLE_EQ(stream.monitor(i).CurrentStatistic(), solo[i].CurrentStatistic());
    EXPECT_DOUBLE_EQ(stream.monitor(i).CurrentPValue(), solo[i].CurrentPValue());
  }
}

TEST(StreamMonitorTest, DeterministicAcrossThreadCounts) {
  std::vector<std::vector<StreamMonitor::ConstraintState>> runs;
  for (int threads : {1, 4}) {
    parallel::SetThreads(threads);
    StreamMonitor stream = StreamMonitor::Create(Prototype(), TwoConstraints()).value();
    for (uint64_t seed = 40; seed < 44; ++seed) {
      ASSERT_TRUE(stream.Append(CorrelatedBatch(seed, 50)).ok());
    }
    runs.push_back(stream.States());
  }
  parallel::SetThreads(0);  // restore default
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[0][i].statistic, runs[1][i].statistic);  // bit-identical
    EXPECT_EQ(runs[0][i].p_value, runs[1][i].p_value);
  }
}

TEST(StreamMonitorTest, RejectedBatchIsGroupNoOp) {
  StreamMonitor stream = StreamMonitor::Create(Prototype(), TwoConstraints()).value();
  ASSERT_TRUE(stream.Append(CorrelatedBatch(30, 50)).ok());
  std::vector<StreamMonitor::ConstraintState> before = stream.States();

  // The batch is ingestible by the first monitor (x, y present and
  // numeric) but not the second (w missing): the group must reject it
  // without mutating ANY monitor, including the one that could accept it.
  TableBuilder bad;
  bad.AddNumeric("x", {1.0, 2.0});
  bad.AddNumeric("y", {1.0, 2.0});
  EXPECT_FALSE(stream.Append(std::move(bad).Build().value()).ok());

  EXPECT_EQ(stream.NumRecords(), 50u);
  std::vector<StreamMonitor::ConstraintState> after = stream.States();
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].records, before[i].records);
    EXPECT_DOUBLE_EQ(after[i].statistic, before[i].statistic);
    EXPECT_DOUBLE_EQ(after[i].p_value, before[i].p_value);
  }
}

TEST(StreamMonitorTest, WindowOptionAppliesToEveryMonitor) {
  StreamMonitorOptions options;
  options.monitor.window = 32;
  StreamMonitor stream = StreamMonitor::Create(Prototype(), TwoConstraints(), options).value();
  for (uint64_t seed = 50; seed < 53; ++seed) {
    ASSERT_TRUE(stream.Append(CorrelatedBatch(seed, 40)).ok());
  }
  EXPECT_EQ(stream.NumRecords(), 120u);
  for (size_t i = 0; i < stream.NumMonitors(); ++i) {
    EXPECT_EQ(stream.monitor(i).WindowOccupancy(), 32u);
  }
}

TEST(StreamMonitorTest, AnyViolatedAndTelemetry) {
  // One dependence constraint over independent columns: violated.
  std::vector<ApproximateSc> constraints = {{ParseConstraint("x !_||_ w").value(), 0.3}};
  StreamMonitor stream = StreamMonitor::Create(Prototype(), constraints).value();
  ASSERT_TRUE(stream.Append(CorrelatedBatch(60, 120)).ok());
  EXPECT_TRUE(stream.AnyViolated());
  obs::RunTelemetry telemetry = stream.AggregateTelemetry();
  EXPECT_EQ(telemetry.Count("stream_batches"), 1);
}

}  // namespace
}  // namespace scoded
