// End-to-end integration tests: each one exercises a full user journey
// across modules (generate -> corrupt -> detect -> drill down / repair ->
// verify), plus cross-module consistency checks.

#include <set>

#include <gtest/gtest.h>

#include "baselines/afd.h"
#include "constraints/graphoid.h"
#include "constraints/ic.h"
#include "core/scoded.h"
#include "datasets/boston.h"
#include "datasets/errors.h"
#include "datasets/hosp.h"
#include "discovery/pc.h"
#include "eval/metrics.h"
#include "eval/scoded_detector.h"
#include "repair/cell_repair.h"
#include "table/csv.h"

namespace scoded {
namespace {

TEST(IntegrationTest, DetectDrillPartitionRoundTrip) {
  // Corrupt Boston, detect the DSC violation side-effect, drill down,
  // partition, and verify the partitioned data satisfies the constraint.
  Table clean = GenerateBostonData({506, 11}).value();
  InjectionOptions inject;
  inject.rate = 0.35;
  InjectionResult dirty = InjectSortingError(clean, "N", inject).value();

  Scoded system(dirty.table);
  ApproximateSc asc{system.Parse("N !_||_ D").value(), 0.05};
  // Sorting 35% of N at random weakens N !_||_ D but need not kill it;
  // drill-down is run regardless (Sec. 6.1).
  DrillDownResult top = system.DrillDown(asc, dirty.dirty_rows.size()).value();
  std::set<size_t> truth(dirty.dirty_rows.begin(), dirty.dirty_rows.end());
  PrecisionRecall pr = EvaluateTopK(top.rows, truth, truth.size());
  EXPECT_GT(pr.f_score, 0.35);

  PartitionResult part = system.Partition(asc).value();
  if (part.satisfied && !part.removed_rows.empty()) {
    Table fixed = dirty.table.WithoutRows(part.removed_rows);
    EXPECT_FALSE(DetectViolation(fixed, asc).value().violated);
  }
}

TEST(IntegrationTest, CsvRoundTripPreservesDetection) {
  // Detection results must survive a CSV write/read cycle.
  Table clean = GenerateBostonData({300, 12}).value();
  InjectionOptions inject;
  inject.rate = 0.3;
  inject.based_on = "B";
  InjectionResult dirty = InjectSortingError(clean, "R", inject).value();
  ApproximateSc asc{ParseConstraint("R _||_ B").value(), 0.05};
  ViolationReport direct = DetectViolation(dirty.table, asc).value();

  std::string path = ::testing::TempDir() + "/scoded_integration.csv";
  ASSERT_TRUE(csv::WriteFile(dirty.table, path).ok());
  Table reloaded = csv::ReadFile(path).value();
  ViolationReport via_csv = DetectViolation(reloaded, asc).value();
  EXPECT_EQ(direct.violated, via_csv.violated);
  // CSV stringification rounds doubles; p-values match loosely.
  EXPECT_NEAR(direct.p_value, via_csv.p_value, 0.05);
}

TEST(IntegrationTest, DiscoverMinimizeEnforce) {
  // PC discovers constraints on clean data; the set is minimised and then
  // enforced in one CheckAll batch; nothing should be violated.
  Table clean = GenerateBostonData({800, 13}).value();
  PcOptions pc;
  pc.max_conditioning = 1;
  PcResult structure = LearnPcStructure(clean, pc).value();
  std::vector<StatisticalConstraint> discovered = structure.DiscoveredConstraints();
  ASSERT_FALSE(discovered.empty());
  std::vector<StatisticalConstraint> minimal = MinimizeConstraints(discovered).value();
  EXPECT_LE(minimal.size(), discovered.size());

  Scoded system(clean);
  std::vector<ApproximateSc> batch;
  for (const StatisticalConstraint& sc : minimal) {
    batch.push_back({sc, sc.is_independence() ? 0.001 : 0.2});
  }
  Result<Scoded::BatchCheckResult> result = system.CheckAll(batch);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->consistency.consistent);
  // The constraints were learned from this very data: at most a small
  // number of borderline violations.
  EXPECT_LE(result->violations, batch.size() / 4);
}

TEST(IntegrationTest, CheckAllRejectsInconsistentSets) {
  Table clean = GenerateBostonData({100, 14}).value();
  Scoded system(clean);
  std::vector<ApproximateSc> batch = {
      {Independence({"N"}, {"D"}), 0.05},
      {Dependence({"N"}, {"D"}), 0.05},
  };
  Result<Scoded::BatchCheckResult> result = system.CheckAll(batch);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(IntegrationTest, HospDetectThenRepair) {
  // Full cleaning journey on HOSP: detect with SCODED, beat AFD, repair
  // the RHS typos, and verify the FD tightens.
  HospOptions options;
  options.rows = 3000;
  options.num_zips = 100;
  options.error_rate = 0.08;
  options.lhs_error_fraction = 0.0;
  HospData data = GenerateHospData(options).value();
  std::set<size_t> truth(data.dirty_rows.begin(), data.dirty_rows.end());

  FunctionalDependency fd{{"Zip"}, {"City"}};
  ScodedDetector scoded({{FdToDsc(fd), 0.05}});
  AfdDetector afd({fd});
  PrecisionRecall scoded_pr =
      EvaluateTopK(scoded.Rank(data.table, truth.size()).value(), truth, truth.size());
  PrecisionRecall afd_pr =
      EvaluateTopK(afd.Rank(data.table, truth.size()).value(), truth, truth.size());
  EXPECT_GE(scoded_pr.f_score, afd_pr.f_score - 0.05);
  EXPECT_GT(scoded_pr.f_score, 0.6);

  double ratio_before = FdApproximationRatio(data.table, fd).value();
  RepairPlan plan = SuggestCellRepairs(data.table, {FdToDsc(fd), 0.05}, truth.size()).value();
  Table repaired = ApplyRepairs(data.table, plan.repairs).value();
  double ratio_after = FdApproximationRatio(repaired, fd).value();
  EXPECT_LT(ratio_after, ratio_before / 2.0);
}

TEST(IntegrationTest, MinimizeConstraintsDropsDerivable) {
  std::vector<StatisticalConstraint> constraints = {
      Independence({"A"}, {"B", "C"}),
      Independence({"A"}, {"B"}),          // derivable by decomposition
      Independence({"A"}, {"B"}, {"C"}),   // derivable by weak union
      Dependence({"D"}, {"E"}),
      Dependence({"D"}, {"E"}),            // duplicate
  };
  std::vector<StatisticalConstraint> minimal = MinimizeConstraints(constraints).value();
  ASSERT_EQ(minimal.size(), 2u);
  EXPECT_EQ(minimal[0], constraints[0]);
  EXPECT_EQ(minimal[1], constraints[3]);
}

TEST(IntegrationTest, MinimizeKeepsIndependentFacts) {
  std::vector<StatisticalConstraint> constraints = {
      Independence({"A"}, {"B"}),
      Independence({"C"}, {"D"}),
  };
  EXPECT_EQ(MinimizeConstraints(constraints).value().size(), 2u);
}

}  // namespace
}  // namespace scoded
