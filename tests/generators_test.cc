#include <set>

#include <gtest/gtest.h>

#include "constraints/ic.h"
#include "core/violation.h"
#include "datasets/boston.h"
#include "datasets/car.h"
#include "datasets/hockey.h"
#include "datasets/hosp.h"
#include "datasets/nebraska.h"
#include "datasets/sensor.h"
#include "stats/hypothesis.h"
#include "stats/kendall.h"

namespace scoded {
namespace {

double PValue(const Table& table, const char* constraint) {
  ApproximateSc asc{ParseConstraint(constraint).value(), 0.05};
  return DetectViolation(table, asc).value().p_value;
}

TEST(SensorGeneratorTest, NeighbouringSensorsDependent) {
  SensorOptions options;
  options.epochs = 1000;
  Table t = GenerateSensorData(options).value();
  EXPECT_EQ(t.NumRows(), 1000u);
  EXPECT_EQ(t.NumColumns(), 4u);  // Epoch + T7..T9
  EXPECT_LT(PValue(t, "T7 !_||_ T8"), 1e-10);
  EXPECT_LT(PValue(t, "T8 !_||_ T9"), 1e-10);
  EXPECT_LT(PValue(t, "T7 !_||_ T9"), 1e-10);
}

TEST(SensorGeneratorTest, CorrelationDecaysWithDistance) {
  // The Intel Lab deployment property: adjacent sensors correlate more
  // strongly than sensors two positions apart.
  SensorOptions options;
  options.epochs = 2000;
  Table t = GenerateSensorData(options).value();
  auto col = [&](const char* name) {
    return t.ColumnByName(name).numeric_values();
  };
  double near = KendallTau(col("T7"), col("T8")).tau_b;
  double far = KendallTau(col("T7"), col("T9")).tau_b;
  EXPECT_GT(near, far);
  EXPECT_GT(far, 0.3);  // still clearly dependent
}

TEST(SensorGeneratorTest, HumidityAnticorrelatesWithTemperature) {
  SensorOptions options;
  options.epochs = 1200;
  options.include_humidity = true;
  Table t = GenerateSensorData(options).value();
  EXPECT_TRUE(t.ColumnIndex("H7").ok());
  double tau = KendallTau(t.ColumnByName("T7").numeric_values(),
                          t.ColumnByName("H7").numeric_values())
                   .tau_b;
  EXPECT_LT(tau, -0.4);
}

TEST(SensorGeneratorTest, OptionsRespected) {
  SensorOptions options;
  options.epochs = 100;
  options.first_sensor = 1;
  options.num_sensors = 5;
  Table t = GenerateSensorData(options).value();
  EXPECT_TRUE(t.ColumnIndex("T1").ok());
  EXPECT_TRUE(t.ColumnIndex("T5").ok());
  options.epochs = 0;
  EXPECT_FALSE(GenerateSensorData(options).ok());
}

TEST(BostonGeneratorTest, Table3ConstraintStructureHolds) {
  BostonOptions options;
  options.rows = 2000;  // more rows than the original for stable p-values
  Table t = GenerateBostonData(options).value();
  EXPECT_LT(PValue(t, "N !_||_ D"), 1e-10);    // dependence present
  EXPECT_GT(PValue(t, "R _||_ B"), 0.01);      // independence holds
  EXPECT_LT(PValue(t, "TX !_||_ B | C"), 1e-6);  // conditional dependence
  EXPECT_GT(PValue(t, "N _||_ B | TX"), 0.01);   // conditional independence
}

TEST(BostonGeneratorTest, DefaultsMatchOriginalSize) {
  Table t = GenerateBostonData().value();
  EXPECT_EQ(t.NumRows(), 506u);
  EXPECT_EQ(t.NumColumns(), 6u);
}

TEST(HospGeneratorTest, CleanPartSatisfiesFdsDirtyPartBreaksThem) {
  HospOptions options;
  options.rows = 5000;
  HospData data = GenerateHospData(options).value();
  EXPECT_EQ(data.dirty_rows.size(), data.lhs_dirty_rows.size() + data.rhs_dirty_rows.size());
  EXPECT_NEAR(static_cast<double>(data.dirty_rows.size()), 1250.0, 1.0);
  // The corrupted table violates the FD; removing the dirty rows fixes it.
  EXPECT_FALSE(SatisfiesFd(data.table, {{"Zip"}, {"City"}}).value());
  Table clean = data.table.WithoutRows(data.dirty_rows);
  EXPECT_TRUE(SatisfiesFd(clean, {{"Zip"}, {"City"}}).value());
  EXPECT_TRUE(SatisfiesFd(clean, {{"Zip"}, {"State"}}).value());
}

TEST(HospGeneratorTest, LhsTyposCreateSingletonZips) {
  HospOptions options;
  options.rows = 2000;
  HospData data = GenerateHospData(options).value();
  // A typo'd Zip should not collide with legitimate zips.
  const Column& zip = data.table.ColumnByName("Zip");
  std::set<size_t> lhs(data.lhs_dirty_rows.begin(), data.lhs_dirty_rows.end());
  for (size_t row : data.lhs_dirty_rows) {
    EXPECT_NE(zip.CategoryAt(row).find('~'), std::string::npos);
  }
}

TEST(CarGeneratorTest, Table3ConstraintsHold) {
  CarOptions options;
  options.rows = 1728;
  Table t = GenerateCarData(options).value();
  EXPECT_LT(PValue(t, "BP !_||_ CL"), 1e-8);
  EXPECT_GT(PValue(t, "SA _||_ DR"), 0.01);
}

TEST(HockeyGeneratorTest, ImputationCreatesPreCutoffZeroPattern) {
  HockeyData data = GenerateHockeyData().value();
  EXPECT_FALSE(data.imputed_rows.empty());
  const Column& gpm = data.table.ColumnByName("GPM");
  const Column& year = data.table.ColumnByName("DraftYear");
  for (size_t row : data.imputed_rows) {
    EXPECT_DOUBLE_EQ(gpm.NumericAt(row), 0.0);
    EXPECT_LE(year.NumericAt(row), 2000.0);
  }
}

TEST(HockeyGeneratorTest, GamesTrackGpmOnCleanRows) {
  HockeyData data = GenerateHockeyData().value();
  std::set<size_t> dirty(data.imputed_rows.begin(), data.imputed_rows.end());
  std::vector<size_t> clean;
  for (size_t i = 0; i < data.table.NumRows(); ++i) {
    if (dirty.count(i) == 0) {
      clean.push_back(i);
    }
  }
  Table clean_table = data.table.Gather(clean);
  EXPECT_LT(PValue(clean_table, "GPM !_||_ Games"), 1e-10);
}

TEST(NebraskaGeneratorTest, CleanYearsShowDependenceBadYearsDoNot) {
  NebraskaData data = GenerateNebraskaData().value();
  const Column& year = data.table.ColumnByName("Year");
  auto year_rows = [&](int y) {
    std::vector<size_t> rows;
    for (size_t i = 0; i < data.table.NumRows(); ++i) {
      if (year.NumericAt(i) == static_cast<double>(y)) {
        rows.push_back(i);
      }
    }
    return rows;
  };
  ApproximateSc wind{ParseConstraint("Wind !_||_ Weather").value(), 0.3};
  // A clean year keeps the dependence (p small); an imputed year loses it.
  double p_clean =
      DetectViolation(data.table, wind, year_rows(1975), {}).value().p_value;
  double p_dirty =
      DetectViolation(data.table, wind, year_rows(1989), {}).value().p_value;
  EXPECT_LT(p_clean, 0.05);
  EXPECT_GT(p_dirty, p_clean);

  ApproximateSc sea{ParseConstraint("Sea !_||_ Weather").value(), 0.3};
  double p_sea_clean =
      DetectViolation(data.table, sea, year_rows(1975), {}).value().p_value;
  double p_sea_dirty =
      DetectViolation(data.table, sea, year_rows(1972), {}).value().p_value;
  EXPECT_LT(p_sea_clean, 0.05);
  EXPECT_GT(p_sea_dirty, p_sea_clean);
}

TEST(NebraskaGeneratorTest, DirtyRowsMatchConfiguredYears) {
  NebraskaData data = GenerateNebraskaData().value();
  const Column& year = data.table.ColumnByName("Year");
  const Column& month = data.table.ColumnByName("Month");
  for (size_t row : data.wind_dirty_rows) {
    double y = year.NumericAt(row);
    EXPECT_TRUE(y == 1978.0 || y == 1989.0);
    EXPECT_GE(month.NumericAt(row), 3.0);
  }
  for (size_t row : data.sea_dirty_rows) {
    EXPECT_DOUBLE_EQ(year.NumericAt(row), 1972.0);
  }
}

TEST(GeneratorDeterminismTest, SameSeedSameData) {
  Table a = GenerateBostonData({100, 9}).value();
  Table b = GenerateBostonData({100, 9}).value();
  for (size_t c = 0; c < a.NumColumns(); ++c) {
    for (size_t r = 0; r < a.NumRows(); ++r) {
      EXPECT_DOUBLE_EQ(a.column(c).NumericAt(r), b.column(c).NumericAt(r));
    }
  }
}

}  // namespace
}  // namespace scoded
