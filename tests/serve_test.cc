// The scoded serve daemon: wire framing, request routing, session
// lifecycle (backpressure, idle eviction), client/server round trips,
// and the parity contract — a streamed session's statistics are
// bit-identical to a local monitor over the same batches, and a remote
// check's verdict line is byte-identical to `scoded check`.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/net.h"
#include "constraints/sc.h"
#include "core/scoded.h"
#include "core/stream_monitor.h"
#include "serve/client.h"
#include "serve/framing.h"
#include "serve/render.h"
#include "serve/server.h"
#include "serve/session.h"
#include "serve/wire.h"
#include "table/csv.h"

namespace scoded {
namespace {

using net::DialLoopback;
using net::TcpConn;
using net::TcpListener;

struct ConnPair {
  TcpConn client;
  TcpConn server;
};

void MakeConnectedPair(ConnPair* pair) {
  Result<TcpListener> listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  std::thread acceptor([&] {
    Result<TcpConn> accepted = listener->Accept();
    if (accepted.ok()) {
      pair->server = std::move(accepted).value();
    }
  });
  Result<TcpConn> client = DialLoopback(listener->port());
  acceptor.join();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  pair->client = std::move(client).value();
  ASSERT_TRUE(pair->server.valid());
}

// A small table with the fixture's shape: two categorical, two numeric.
Table CarsTable() {
  TableBuilder builder;
  builder
      .AddCategorical("Model", {"X1", "X1", "X3", "X3", "X1", "X3", "X1", "X3", "X1",
                                "X3", "X1", "X3"})
      .AddCategorical("Color", {"White", "Black", "White", "Black", "White", "Black",
                                "Black", "White", "White", "Black", "Black", "White"})
      .AddNumeric("Price", {41000, 40500, 52000, 51000, 42000, 53000, 40800, 51500,
                            41500, 52500, 40200, 51800})
      .AddNumeric("Mileage", {12000, 15000, 8000, 9500, 9000, 7000, 16000, 8800, 11000,
                              7500, 17000, 8200});
  Result<Table> table = std::move(builder).Build();
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return std::move(table).value();
}

ApproximateSc MustConstraint(const std::string& text, double alpha) {
  Result<StatisticalConstraint> sc = ParseConstraint(text);
  EXPECT_TRUE(sc.ok()) << sc.status().ToString();
  return {std::move(sc).value(), alpha};
}

JsonValue MustParse(const std::string& payload) {
  Result<JsonValue> parsed = ParseJson(payload);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << " in " << payload;
  return parsed.ok() ? std::move(parsed).value() : JsonValue{};
}

bool ResponseOk(const JsonValue& response) {
  const JsonValue* ok = response.Find("ok");
  return ok != nullptr && ok->is_bool() && ok->bool_value;
}

std::string ResponseCode(const JsonValue& response) {
  const JsonValue* code = response.Find("code");
  return code != nullptr && code->is_string() ? code->string_value : "";
}

// ---------------------------------------------------------------------------
// Framing

TEST(FramingTest, RoundTripsPayloadsIncludingEmpty) {
  ConnPair pair;
  ASSERT_NO_FATAL_FAILURE(MakeConnectedPair(&pair));

  const std::string payloads[] = {"", "{}", R"({"op":"ping"})",
                                  std::string(100000, 'x')};
  // Write all frames back-to-back, then read them back in order: the
  // length prefix, not timing, delimits messages.
  for (const std::string& payload : payloads) {
    ASSERT_TRUE(serve::WriteFrame(pair.server, payload).ok());
  }
  for (const std::string& payload : payloads) {
    Result<std::string> got = serve::ReadFrame(pair.client);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, payload);
  }
}

TEST(FramingTest, RejectsOversizedLengthAnnounce) {
  ConnPair pair;
  ASSERT_NO_FATAL_FAILURE(MakeConnectedPair(&pair));

  // A hostile 4-byte prefix announcing ~4 GiB: rejected from the prefix
  // alone, before any payload allocation.
  ASSERT_TRUE(pair.server.WriteAll(std::string("\xff\xff\xff\xff", 4)).ok());
  Result<std::string> got = serve::ReadFrame(pair.client, /*max_bytes=*/1024);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(FramingTest, WriteRejectsPayloadOverLimit) {
  ConnPair pair;
  ASSERT_NO_FATAL_FAILURE(MakeConnectedPair(&pair));
  std::string huge(serve::kMaxFrameBytes + size_t{1}, 'x');
  EXPECT_EQ(serve::WriteFrame(pair.server, huge).code(), StatusCode::kInvalidArgument);
}

TEST(FramingTest, DistinguishesCleanEofFromTruncation) {
  {
    // Peer departs between frames: clean end-of-stream.
    ConnPair pair;
    ASSERT_NO_FATAL_FAILURE(MakeConnectedPair(&pair));
    pair.server.Close();
    Result<std::string> got = serve::ReadFrame(pair.client);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  }
  {
    // Peer dies mid-prefix: a truncated frame.
    ConnPair pair;
    ASSERT_NO_FATAL_FAILURE(MakeConnectedPair(&pair));
    ASSERT_TRUE(pair.server.WriteAll(std::string("\x00\x00", 2)).ok());
    pair.server.Close();
    Result<std::string> got = serve::ReadFrame(pair.client);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
  }
  {
    // Peer dies mid-payload: also truncation.
    ConnPair pair;
    ASSERT_NO_FATAL_FAILURE(MakeConnectedPair(&pair));
    ASSERT_TRUE(pair.server.WriteAll(std::string("\x00\x00\x00\x0a" "abc", 7)).ok());
    pair.server.Close();
    Result<std::string> got = serve::ReadFrame(pair.client);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
  }
}

// ---------------------------------------------------------------------------
// Wire encoding: schema and batch round trips must be exact.

TEST(WireTest, SchemaRoundTrips) {
  Table table = CarsTable();
  JsonWriter json;
  serve::WriteSchemaJson(table.schema(), json);
  Result<Schema> back = serve::ParseSchemaJson(MustParse(json.str()));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->NumFields(), table.schema().NumFields());
  for (size_t i = 0; i < back->NumFields(); ++i) {
    EXPECT_EQ(back->field(i).name, table.schema().field(i).name);
    EXPECT_EQ(back->field(i).type, table.schema().field(i).type);
  }
}

TEST(WireTest, BatchRoundTripIsBitExact) {
  // Awkward doubles on purpose: values whose shortest decimal form is
  // long, denormals, negative zero, and non-finite cells.
  TableBuilder builder;
  builder
      .AddNumericWithNulls("x",
                           {0.1, 1.0 / 3.0, -0.0, 5e-324, 1e308,
                            std::numeric_limits<double>::quiet_NaN(),
                            std::numeric_limits<double>::infinity(),
                            -std::numeric_limits<double>::infinity(), 0.0},
                           {true, true, true, true, true, true, true, true, false})
      .AddCategorical("c", {"a", "b", "a", "c", "b", "a", "c", "c", "a"});
  Result<Table> table = std::move(builder).Build();
  ASSERT_TRUE(table.ok()) << table.status().ToString();

  JsonWriter json;
  serve::WriteBatchJson(*table, json);
  Result<Table> back = serve::ParseBatchJson(MustParse(json.str()));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->NumRows(), table->NumRows());
  ASSERT_EQ(back->NumColumns(), table->NumColumns());

  const Column& x = table->column(0);
  const Column& x_back = back->column(0);
  for (size_t row = 0; row < table->NumRows(); ++row) {
    ASSERT_EQ(x.IsNull(row), x_back.IsNull(row)) << "row " << row;
    if (x.IsNull(row)) {
      continue;
    }
    double original = x.NumericAt(row);
    double round_tripped = x_back.NumericAt(row);
    if (std::isnan(original)) {
      EXPECT_TRUE(std::isnan(round_tripped)) << "row " << row;
    } else {
      // Bitwise, not approximate: -0.0 must stay -0.0.
      EXPECT_EQ(std::signbit(original), std::signbit(round_tripped)) << "row " << row;
      EXPECT_EQ(original, round_tripped) << "row " << row;
    }
  }
  const Column& c = table->column(1);
  const Column& c_back = back->column(1);
  for (size_t row = 0; row < table->NumRows(); ++row) {
    EXPECT_EQ(c.CodeAt(row), c_back.CodeAt(row)) << "row " << row;
  }
}

// ---------------------------------------------------------------------------
// Request router (no sockets).

TEST(ServeRouterTest, PingReportsProtocolAndSessions) {
  serve::Server server;
  JsonValue response = MustParse(server.HandleRequest(R"({"op":"ping"})"));
  ASSERT_TRUE(ResponseOk(response));
  const JsonValue* protocol = response.Find("protocol");
  ASSERT_NE(protocol, nullptr);
  EXPECT_EQ(protocol->number, 1.0);
  const JsonValue* sessions = response.Find("sessions");
  ASSERT_NE(sessions, nullptr);
  EXPECT_EQ(sessions->number, 0.0);
}

TEST(ServeRouterTest, RejectsMalformedRequests) {
  serve::Server server;
  struct Case {
    const char* payload;
    const char* expected_code;
  };
  const Case cases[] = {
      {"this is not json", "InvalidArgument"},
      {R"({"no_op_member":true})", "InvalidArgument"},
      {R"({"op":"launch_missiles"})", "InvalidArgument"},
      {R"({"op":"check"})", "InvalidArgument"},            // missing csv/sc
      {R"({"op":"check","csv":"a\n1\n","sc":5})", "InvalidArgument"},
      {R"({"op":"open_session"})", "InvalidArgument"},     // missing schema
      {R"({"op":"query","session":"s999"})", "NotFound"},
      {R"({"op":"append_batch","session":"s999","batch":{"rows":0,"columns":[]}})",
       "NotFound"},
      {R"({"op":"close_session","session":"s999"})", "NotFound"},
  };
  for (const Case& c : cases) {
    JsonValue response = MustParse(server.HandleRequest(c.payload));
    EXPECT_FALSE(ResponseOk(response)) << c.payload;
    EXPECT_EQ(ResponseCode(response), c.expected_code) << c.payload;
  }
}

TEST(ServeRouterTest, OpenSessionValidatesWindowAndConstraints) {
  serve::Server server;
  // Build a valid open_session, then poison one member at a time.
  JsonWriter schema_json;
  serve::WriteSchemaJson(CarsTable().schema(), schema_json);
  std::string schema = schema_json.str();

  std::string negative_window = R"({"op":"open_session","schema":)" + schema +
                                R"(,"constraints":[{"sc":"Model _||_ Color"}],"window":-1})";
  JsonValue response = MustParse(server.HandleRequest(negative_window));
  EXPECT_FALSE(ResponseOk(response));
  EXPECT_EQ(ResponseCode(response), "InvalidArgument");

  std::string empty_constraints =
      R"({"op":"open_session","schema":)" + schema + R"(,"constraints":[]})";
  response = MustParse(server.HandleRequest(empty_constraints));
  EXPECT_FALSE(ResponseOk(response));
  EXPECT_EQ(ResponseCode(response), "InvalidArgument");

  std::string unknown_column = R"({"op":"open_session","schema":)" + schema +
                               R"(,"constraints":[{"sc":"Model _||_ Nope"}]})";
  response = MustParse(server.HandleRequest(unknown_column));
  EXPECT_FALSE(ResponseOk(response));
  EXPECT_EQ(server.NumSessions(), 0u);
}

TEST(ServeRouterTest, CheckMatchesInProcessScoded) {
  Table table = CarsTable();
  // Render the table to CSV text via the writer-independent route: build
  // the request from the same cells the in-process check sees.
  std::ostringstream csv;
  csv << "Model,Color,Price,Mileage\n";
  for (size_t row = 0; row < table.NumRows(); ++row) {
    csv << table.column(0).CategoryAt(row) << "," << table.column(1).CategoryAt(row)
        << "," << table.column(2).NumericAt(row) << "," << table.column(3).NumericAt(row)
        << "\n";
  }
  std::string csv_text = csv.str();

  ApproximateSc asc = MustConstraint("Model !_||_ Price", 0.3);
  Result<Table> parsed = csv::ReadString(csv_text);
  ASSERT_TRUE(parsed.ok());
  Scoded local(std::move(parsed).value());
  Result<ViolationReport> expected = local.CheckViolation(asc);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  serve::Server server;
  JsonWriter request;
  request.BeginObject();
  request.Key("op").String("check");
  request.Key("sc").String("Model !_||_ Price");
  request.Key("alpha").DoubleFull(0.3);
  request.Key("csv").String(csv_text);
  request.EndObject();
  JsonValue response = MustParse(server.HandleRequest(request.str()));
  ASSERT_TRUE(ResponseOk(response));

  // %.17g round-trips doubles exactly, so the parsed numbers must be
  // bitwise equal to the in-process result.
  EXPECT_EQ(response.Find("p_value")->number, expected->p_value);
  EXPECT_EQ(response.Find("statistic")->number, expected->test.statistic);
  EXPECT_EQ(response.Find("violated")->bool_value, expected->violated);
  EXPECT_EQ(response.Find("line")->string_value, serve::CheckResultLine(asc, *expected));
}

// The tentpole contract: a streamed session's per-constraint statistics
// equal a local StreamMonitor fed the same batches — to the last bit.
TEST(ServeParityTest, StreamedSessionMatchesLocalMonitor) {
  Table table = CarsTable();
  std::vector<ApproximateSc> constraints = {
      MustConstraint("Price !_||_ Mileage", 0.3),
      MustConstraint("Model _||_ Color", 0.05),
  };

  Result<Table> prototype = serve::EmptyTableForSchema(table.schema());
  ASSERT_TRUE(prototype.ok());
  Result<StreamMonitor> local = StreamMonitor::Create(*prototype, constraints);
  ASSERT_TRUE(local.ok()) << local.status().ToString();

  serve::Server server;
  JsonWriter open;
  open.BeginObject();
  open.Key("op").String("open_session");
  open.Key("schema");
  serve::WriteSchemaJson(table.schema(), open);
  open.Key("constraints").BeginArray();
  for (const ApproximateSc& asc : constraints) {
    open.BeginObject();
    open.Key("sc").String(asc.sc.ToString());
    open.Key("alpha").DoubleFull(asc.alpha);
    open.EndObject();
  }
  open.EndArray();
  open.Key("window").Uint(0);
  open.EndObject();
  JsonValue opened = MustParse(server.HandleRequest(open.str()));
  ASSERT_TRUE(ResponseOk(opened));
  std::string session = opened.Find("session")->string_value;

  const size_t kBatch = 5;
  for (size_t start = 0; start < table.NumRows(); start += kBatch) {
    std::vector<size_t> rows;
    for (size_t row = start; row < std::min(start + kBatch, table.NumRows()); ++row) {
      rows.push_back(row);
    }
    Table batch = table.Gather(rows);
    ASSERT_TRUE(local->Append(batch).ok());

    JsonWriter append;
    append.BeginObject();
    append.Key("op").String("append_batch");
    append.Key("session").String(session);
    append.Key("batch");
    serve::WriteBatchJson(batch, append);
    append.EndObject();
    JsonValue appended = MustParse(server.HandleRequest(append.str()));
    ASSERT_TRUE(ResponseOk(appended));
    EXPECT_EQ(appended.Find("records")->number,
              static_cast<double>(local->NumRecords()));

    // After every batch the remote states must match the local monitor
    // bitwise, and the rendered monitor rows byte-for-byte.
    JsonValue queried = MustParse(
        server.HandleRequest(R"({"op":"query","session":")" + session + R"("})"));
    ASSERT_TRUE(ResponseOk(queried));
    std::vector<StreamMonitor::ConstraintState> states = local->States();
    const JsonValue* remote_states = queried.Find("states");
    ASSERT_NE(remote_states, nullptr);
    ASSERT_EQ(remote_states->array.size(), states.size());
    for (size_t i = 0; i < states.size(); ++i) {
      const JsonValue& remote = remote_states->array[i];
      EXPECT_EQ(remote.Find("constraint")->string_value, states[i].constraint);
      EXPECT_EQ(remote.Find("p_value")->number, states[i].p_value);
      EXPECT_EQ(remote.Find("statistic")->number, states[i].statistic);
      EXPECT_EQ(remote.Find("violated")->bool_value, states[i].violated);
      EXPECT_EQ(remote.Find("line")->string_value, serve::MonitorStateLine(states[i]));
    }
    EXPECT_EQ(queried.Find("any_violated")->bool_value, local->AnyViolated());
  }

  JsonValue closed = MustParse(
      server.HandleRequest(R"({"op":"close_session","session":")" + session + R"("})"));
  EXPECT_TRUE(ResponseOk(closed));
  EXPECT_EQ(server.NumSessions(), 0u);
}

// ---------------------------------------------------------------------------
// Session table policy.

TEST(ServeSessionTest, BackpressureAtMaxSessions) {
  serve::SessionLimits limits;
  limits.max_sessions = 1;
  serve::SessionTable table(limits);
  Table cars = CarsTable();
  std::vector<ApproximateSc> constraints = {MustConstraint("Model _||_ Color", 0.05)};

  Result<std::string> first = table.Open(cars.schema(), constraints, {});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  Result<std::string> second = table.Open(cars.schema(), constraints, {});
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);

  // Backpressure clears as soon as a slot frees up.
  ASSERT_TRUE(table.Close(*first).ok());
  Result<std::string> third = table.Open(cars.schema(), constraints, {});
  EXPECT_TRUE(third.ok()) << third.status().ToString();
  // Session ids are never reused.
  EXPECT_NE(*third, *first);
}

TEST(ServeSessionTest, IdleSessionsAreEvicted) {
  serve::SessionLimits limits;
  limits.idle_evict_millis = 1;
  serve::SessionTable table(limits);
  Table cars = CarsTable();
  Result<std::string> id =
      table.Open(cars.schema(), {MustConstraint("Model _||_ Color", 0.05)}, {});
  ASSERT_TRUE(id.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(table.EvictIdle(), 1u);
  EXPECT_EQ(table.size(), 0u);
  Status gone = table.With(*id, [](StreamMonitor&) { return OkStatus(); });
  EXPECT_EQ(gone.code(), StatusCode::kNotFound);
}

// Regression: a session whose handler runs longer than the idle limit used
// to be evictable mid-request — the sweep compared last_used (stamped on
// entry) against an aggressive limit and destroyed the monitor under the
// handler's feet. An in-flight request must pin its session.
TEST(ServeSessionTest, InFlightRequestPinsSessionAgainstEviction) {
  serve::SessionLimits limits;
  limits.idle_evict_millis = 1;  // aggressive: any observable pause is "idle"
  serve::SessionTable table(limits);
  Table cars = CarsTable();
  Result<std::string> id =
      table.Open(cars.schema(), {MustConstraint("Model _||_ Color", 0.05)}, {});
  ASSERT_TRUE(id.ok());

  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::thread request([&] {
    Status slow = table.With(*id, [&](StreamMonitor&) {
      entered = true;
      while (!release) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return OkStatus();
    });
    EXPECT_TRUE(slow.ok()) << slow.ToString();
  });
  while (!entered) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The handler is now parked well past the idle limit; sweeps must skip it.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(table.EvictIdle(), 0u);
  EXPECT_EQ(table.size(), 1u);
  release = true;
  request.join();

  // Completion restamps the idle clock, so the session is immediately
  // usable — and only a genuine idle stretch evicts it.
  Status touch = table.With(*id, [](StreamMonitor&) { return OkStatus(); });
  EXPECT_TRUE(touch.ok()) << touch.ToString();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(table.EvictIdle(), 1u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(ServeSessionTest, ZeroIdleLimitDisablesEviction) {
  serve::SessionLimits limits;
  limits.idle_evict_millis = 0;
  serve::SessionTable table(limits);
  Table cars = CarsTable();
  ASSERT_TRUE(table.Open(cars.schema(), {MustConstraint("Model _||_ Color", 0.05)}, {})
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(table.EvictIdle(), 0u);
  EXPECT_EQ(table.size(), 1u);
}

// ---------------------------------------------------------------------------
// Client/server over real sockets.

TEST(ServeClientTest, EndToEndRoundTrip) {
  serve::Server server;
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.running());

  Result<serve::Client> client = serve::Client::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  Result<JsonValue> pong = client->Ping();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();

  Table table = CarsTable();
  std::vector<ApproximateSc> constraints = {MustConstraint("Price !_||_ Mileage", 0.3)};
  Result<std::string> session = client->OpenSession(table.schema(), constraints, 0);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(server.NumSessions(), 1u);

  Result<size_t> records = client->AppendBatch(*session, table);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ(*records, table.NumRows());

  Result<JsonValue> state = client->Query(*session);
  ASSERT_TRUE(state.ok());
  const JsonValue* states = state->Find("states");
  ASSERT_NE(states, nullptr);
  ASSERT_EQ(states->array.size(), 1u);

  // Server-side errors come back as the Status the server produced.
  Result<JsonValue> missing = client->Query("s999");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  EXPECT_TRUE(client->CloseSession(*session).ok());
  EXPECT_EQ(server.NumSessions(), 0u);

  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(ServeClientTest, StopDropsLiveConnectionsAndSessions) {
  serve::Server server;
  ASSERT_TRUE(server.Start().ok());
  Result<serve::Client> client = serve::Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  Table table = CarsTable();
  Result<std::string> session =
      client->OpenSession(table.schema(), {MustConstraint("Model _||_ Color", 0.05)}, 0);
  ASSERT_TRUE(session.ok());

  server.Stop();
  EXPECT_EQ(server.NumSessions(), 0u);
  // The force-closed connection surfaces as an error, not a hang.
  Result<JsonValue> after = client->Ping();
  EXPECT_FALSE(after.ok());

  // The server restarts cleanly on a fresh port.
  ASSERT_TRUE(server.Start().ok());
  Result<serve::Client> reconnect = serve::Client::Connect(server.port());
  ASSERT_TRUE(reconnect.ok());
  EXPECT_TRUE(reconnect->Ping().ok());
  server.Stop();
}

TEST(ServeClientTest, RemoteCheckEqualsInProcessLine) {
  serve::Server server;
  ASSERT_TRUE(server.Start().ok());
  Result<serve::Client> client = serve::Client::Connect(server.port());
  ASSERT_TRUE(client.ok());

  const std::string csv_text = "A,B\n1,2\n2,4\n3,6\n4,8\n5,10\n6,12\n7,14\n8,16\n";
  ApproximateSc asc = MustConstraint("A !_||_ B", 0.3);
  Result<Table> parsed = csv::ReadString(csv_text);
  ASSERT_TRUE(parsed.ok());
  Scoded local(std::move(parsed).value());
  Result<ViolationReport> expected = local.CheckViolation(asc);
  ASSERT_TRUE(expected.ok());

  Result<JsonValue> response = client->Check(csv_text, "A !_||_ B", 0.3);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->Find("line")->string_value, serve::CheckResultLine(asc, *expected));
  EXPECT_EQ(response->Find("p_value")->number, expected->p_value);
  server.Stop();
}

// ---------------------------------------------------------------------------
// CLI byte-parity: `scoded client ...` against an in-process daemon must
// print exactly what the local commands print, at 1 and 4 threads.

#if defined(SCODED_CLI_BIN) && defined(SCODED_FIXTURE_CSV)

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct CliRun {
  int exit_code = -1;
  std::string stdout_text;
};

CliRun RunCli(const std::string& args, const std::string& tag) {
  std::string out_path = ::testing::TempDir() + "/serve_cli_" + tag + ".out";
  std::string command = std::string(SCODED_CLI_BIN) + " " + args + " > " + out_path;
  int rc = std::system(command.c_str());
  CliRun run;
  run.exit_code = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  run.stdout_text = ReadWholeFile(out_path);
  return run;
}

TEST(ServeCliParityTest, ClientCheckIsByteIdenticalToLocalCheck) {
  serve::Server server;
  ASSERT_TRUE(server.Start().ok());
  std::string port = std::to_string(server.port());
  std::string check_args = "--csv " SCODED_FIXTURE_CSV " --sc \"Model !_||_ Price\" --alpha 0.3";

  CliRun local = RunCli("check " + check_args, "check_local");
  CliRun local_mt = RunCli("check " + check_args + " --threads 4", "check_local_mt");
  CliRun remote = RunCli("client check --port " + port + " " + check_args, "check_remote");

  // 0 = holds, 2 = violated; the remote verdict must agree either way.
  EXPECT_TRUE(local.exit_code == 0 || local.exit_code == 2) << local.exit_code;
  EXPECT_EQ(remote.exit_code, local.exit_code);
  EXPECT_EQ(remote.stdout_text, local.stdout_text);
  EXPECT_EQ(remote.stdout_text, local_mt.stdout_text);
  EXPECT_FALSE(remote.stdout_text.empty());
  server.Stop();
}

TEST(ServeCliParityTest, ClientMonitorIsByteIdenticalToLocalMonitor) {
  serve::Server server;
  ASSERT_TRUE(server.Start().ok());
  std::string port = std::to_string(server.port());
  std::string monitor_args =
      "--csv " SCODED_FIXTURE_CSV
      " --sc \"Price !_||_ Mileage\" --sc \"Model _||_ Color\" --alpha 0.3 --batch 4";

  CliRun local = RunCli("monitor " + monitor_args, "monitor_local");
  CliRun local_mt = RunCli("monitor " + monitor_args + " --threads 4", "monitor_local_mt");
  CliRun remote =
      RunCli("client monitor --port " + port + " " + monitor_args, "monitor_remote");

  EXPECT_EQ(remote.exit_code, local.exit_code);
  EXPECT_EQ(remote.stdout_text, local.stdout_text);
  EXPECT_EQ(remote.stdout_text, local_mt.stdout_text);
  EXPECT_FALSE(remote.stdout_text.empty());
  server.Stop();
}

#endif  // SCODED_CLI_BIN && SCODED_FIXTURE_CSV

}  // namespace
}  // namespace scoded
