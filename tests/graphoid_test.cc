#include "constraints/graphoid.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace scoded {
namespace {

bool Contains(const std::vector<CiTriple>& closure, uint16_t x, uint16_t y, uint16_t z) {
  CiTriple t = NormalizeTriple(x, y, z);
  return std::find(closure.begin(), closure.end(), t) != closure.end();
}

TEST(NormalizeTripleTest, SymmetryCanonicalised) {
  CiTriple a = NormalizeTriple(0b01, 0b10, 0b100);
  CiTriple b = NormalizeTriple(0b10, 0b01, 0b100);
  EXPECT_EQ(a, b);
}

TEST(ClosureTest, DecompositionDerived) {
  // A ⊥ {B, C} gives A ⊥ B and A ⊥ C.
  std::vector<CiTriple> closure =
      SemiGraphoidClosure({NormalizeTriple(0b001, 0b110, 0)}, 3);
  EXPECT_TRUE(Contains(closure, 0b001, 0b010, 0));
  EXPECT_TRUE(Contains(closure, 0b001, 0b100, 0));
}

TEST(ClosureTest, WeakUnionDerived) {
  // A ⊥ {B, C} gives A ⊥ B | C.
  std::vector<CiTriple> closure =
      SemiGraphoidClosure({NormalizeTriple(0b001, 0b110, 0)}, 3);
  EXPECT_TRUE(Contains(closure, 0b001, 0b010, 0b100));
  EXPECT_TRUE(Contains(closure, 0b001, 0b100, 0b010));
}

TEST(ClosureTest, ContractionDerived) {
  // A ⊥ B  &  A ⊥ C | B  give  A ⊥ {B, C}.
  std::vector<CiTriple> closure = SemiGraphoidClosure(
      {NormalizeTriple(0b001, 0b010, 0), NormalizeTriple(0b001, 0b100, 0b010)}, 3);
  EXPECT_TRUE(Contains(closure, 0b001, 0b110, 0));
}

TEST(ClosureTest, SymmetricContraction) {
  // Same as above but with the statements' sides flipped; symmetry must
  // make contraction still fire.
  std::vector<CiTriple> closure = SemiGraphoidClosure(
      {NormalizeTriple(0b010, 0b001, 0), NormalizeTriple(0b100, 0b001, 0b010)}, 3);
  EXPECT_TRUE(Contains(closure, 0b001, 0b110, 0));
}

TEST(ClosureTest, NoSpuriousDerivation) {
  // A ⊥ B alone cannot yield anything about C.
  std::vector<CiTriple> closure = SemiGraphoidClosure({NormalizeTriple(0b001, 0b010, 0)}, 3);
  EXPECT_FALSE(Contains(closure, 0b001, 0b100, 0));
  EXPECT_FALSE(Contains(closure, 0b001, 0b010, 0b100));
  EXPECT_EQ(closure.size(), 1u);
}

TEST(ClosureTest, ClosureIsIdempotent) {
  std::vector<CiTriple> base = {NormalizeTriple(0b0001, 0b0110, 0b1000),
                                NormalizeTriple(0b0001, 0b1000, 0)};
  std::vector<CiTriple> once = SemiGraphoidClosure(base, 4);
  std::vector<CiTriple> twice = SemiGraphoidClosure(once, 4);
  std::set<CiTriple> a(once.begin(), once.end());
  std::set<CiTriple> b(twice.begin(), twice.end());
  EXPECT_EQ(a, b);
}

TEST(CheckConsistencyTest, DirectContradiction) {
  std::vector<StatisticalConstraint> constraints = {
      Independence({"X"}, {"Y"}),
      Dependence({"X"}, {"Y"}),
  };
  ConsistencyReport report = CheckConsistency(constraints).value();
  EXPECT_FALSE(report.consistent);
  ASSERT_EQ(report.conflicts.size(), 1u);
}

TEST(CheckConsistencyTest, SymmetricContradiction) {
  std::vector<StatisticalConstraint> constraints = {
      Independence({"X"}, {"Y"}),
      Dependence({"Y"}, {"X"}),
  };
  EXPECT_FALSE(CheckConsistency(constraints).value().consistent);
}

TEST(CheckConsistencyTest, DerivedContradictionViaDecomposition) {
  // X ⊥ {Y, W} entails X ⊥ Y, contradicting X ⊥̸ Y.
  std::vector<StatisticalConstraint> constraints = {
      Independence({"X"}, {"Y", "W"}),
      Dependence({"X"}, {"Y"}),
  };
  EXPECT_FALSE(CheckConsistency(constraints).value().consistent);
}

TEST(CheckConsistencyTest, DerivedContradictionViaContraction) {
  std::vector<StatisticalConstraint> constraints = {
      Independence({"A"}, {"B"}),
      Independence({"A"}, {"C"}, {"B"}),
      Dependence({"A"}, {"B", "C"}),
  };
  EXPECT_FALSE(CheckConsistency(constraints).value().consistent);
}

TEST(CheckConsistencyTest, ConsistentSetPasses) {
  std::vector<StatisticalConstraint> constraints = {
      Independence({"RowID"}, {"Price"}),
      Dependence({"Model"}, {"Price"}),
      Independence({"Color"}, {"Price"}, {"Model"}),
  };
  ConsistencyReport report = CheckConsistency(constraints).value();
  EXPECT_TRUE(report.consistent);
  EXPECT_TRUE(report.conflicts.empty());
}

TEST(CheckConsistencyTest, RejectsOverlappingSets) {
  std::vector<StatisticalConstraint> bad = {Independence({"X"}, {"Y"}, {"X"})};
  // Construct overlap manually (the parser would reject it too).
  bad[0].z = {"X"};
  EXPECT_FALSE(CheckConsistency(bad).ok());
}

TEST(CheckConsistencyTest, TooManyVariablesRejected) {
  std::vector<StatisticalConstraint> constraints;
  for (int i = 0; i < 9; ++i) {
    constraints.push_back(Independence({"A" + std::to_string(i)}, {"B" + std::to_string(i)}));
  }
  Result<ConsistencyReport> r = CheckConsistency(constraints);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace scoded
