#include "core/violation.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/scoded.h"
#include "table/table.h"

namespace scoded {
namespace {

// Figure 2 of the paper: the original car database (r1-r8) and the version
// with inserted records r9-r16 that breaks Model ⊥ Color.
Table OriginalCarTable() {
  TableBuilder builder;
  builder.AddCategorical("Model", {"BMW X1", "BMW X1", "BMW X1", "BMW X1", "Toyota Prius",
                                   "Toyota Prius", "Toyota Prius", "Toyota Prius"});
  builder.AddCategorical("Color",
                         {"White", "Black", "White", "Black", "White", "White", "White", "Black"});
  return std::move(builder).Build().value();
}

Table UpdatedCarTable() {
  TableBuilder builder;
  builder.AddCategorical(
      "Model", {"BMW X1", "BMW X1", "BMW X1", "BMW X1", "Toyota Prius", "Toyota Prius",
                "Toyota Prius", "Toyota Prius", "BMW X1", "BMW X1", "BMW X1", "BMW X1",
                "Toyota Prius", "Toyota Prius", "Toyota Prius", "Toyota Prius"});
  builder.AddCategorical("Color",
                         {"White", "Black", "White", "Black", "White", "White", "White", "Black",
                          "White", "White", "White", "Black", "Black", "Black", "Black", "Black"});
  return std::move(builder).Build().value();
}

TEST(ViolationTest, CarExampleInsertWeakensIndependence) {
  ApproximateSc asc{ParseConstraint("Model _||_ Color").value(), 0.4};
  ViolationReport before = DetectViolation(OriginalCarTable(), asc).value();
  ViolationReport after = DetectViolation(UpdatedCarTable(), asc).value();
  EXPECT_FALSE(before.violated);
  EXPECT_TRUE(after.violated);
  EXPECT_LT(after.p_value, before.p_value);
}

TEST(ViolationTest, AlphaControlsTheDecision) {
  // Same data, different α (Example 3 / Figure 4 of the paper).
  Table t = UpdatedCarTable();
  StatisticalConstraint sc = ParseConstraint("Model _||_ Color").value();
  ViolationReport lenient = DetectViolation(t, {sc, 0.05}).value();
  ViolationReport strict = DetectViolation(t, {sc, 0.99}).value();
  EXPECT_FALSE(lenient.violated);
  EXPECT_TRUE(strict.violated);
}

TEST(ViolationTest, DependenceScViolatedByIndependentData) {
  // Under H0 the p-value is uniform, so a DSC with α=0.3 is flagged on
  // independent data with probability 0.7 per draw; require a clear
  // majority across ten fixed seeds.
  int violated = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    std::vector<double> x;
    std::vector<double> y;
    for (int i = 0; i < 300; ++i) {
      x.push_back(rng.Normal());
      y.push_back(rng.Normal());
    }
    TableBuilder builder;
    builder.AddNumeric("x", x);
    builder.AddNumeric("y", y);
    Table t = std::move(builder).Build().value();
    ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.3};
    violated += DetectViolation(t, asc).value().violated ? 1 : 0;
  }
  EXPECT_GE(violated, 5);
}

TEST(ViolationTest, DependenceScSatisfiedByCorrelatedData) {
  Rng rng(2);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    double v = rng.Normal();
    x.push_back(v);
    y.push_back(v + rng.Normal(0.0, 0.5));
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  Table t = std::move(builder).Build().value();
  ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.3};
  EXPECT_FALSE(DetectViolation(t, asc).value().violated);
}

TEST(ViolationTest, SetValuedScDecomposes) {
  Rng rng(3);
  std::vector<double> x;
  std::vector<double> y1;
  std::vector<double> y2;
  for (int i = 0; i < 200; ++i) {
    double v = rng.Normal();
    x.push_back(v);
    y1.push_back(rng.Normal());          // independent of x
    y2.push_back(v + rng.Normal(0, 0.2));  // dependent on x
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y1", y1);
  builder.AddNumeric("y2", y2);
  Table t = std::move(builder).Build().value();
  ApproximateSc asc{ParseConstraint("x _||_ y1, y2").value(), 0.05};
  ViolationReport report = DetectViolation(t, asc).value();
  EXPECT_TRUE(report.violated);  // the y2 component breaks the joint ISC
  EXPECT_EQ(report.components.size(), 2u);
}

TEST(ViolationTest, InvalidAlphaRejected) {
  ApproximateSc asc{ParseConstraint("Model _||_ Color").value(), 1.5};
  EXPECT_FALSE(DetectViolation(OriginalCarTable(), asc).ok());
}

TEST(ViolationTest, UnknownColumnPropagates) {
  ApproximateSc asc{ParseConstraint("Model _||_ Fuel").value(), 0.05};
  EXPECT_FALSE(DetectViolation(OriginalCarTable(), asc).ok());
}

TEST(ScodedFacadeTest, ParseValidatesSchema) {
  Scoded system(OriginalCarTable());
  EXPECT_TRUE(system.Parse("Model _||_ Color").ok());
  EXPECT_FALSE(system.Parse("Model _||_ Fuel").ok());
  EXPECT_FALSE(system.Parse("garbage").ok());
}

TEST(ScodedFacadeTest, CheckViolationMatchesFreeFunction) {
  ApproximateSc asc{ParseConstraint("Model _||_ Color").value(), 0.4};
  Scoded system(UpdatedCarTable());
  ViolationReport via_facade = system.CheckViolation(asc).value();
  ViolationReport direct = DetectViolation(UpdatedCarTable(), asc).value();
  EXPECT_EQ(via_facade.violated, direct.violated);
  EXPECT_DOUBLE_EQ(via_facade.p_value, direct.p_value);
}

TEST(ScodedFacadeTest, ConsistencyPassThrough) {
  std::vector<StatisticalConstraint> constraints = {
      Independence({"A"}, {"B"}),
      Dependence({"A"}, {"B"}),
  };
  EXPECT_FALSE(Scoded::CheckConstraintConsistency(constraints).value().consistent);
}

}  // namespace
}  // namespace scoded
