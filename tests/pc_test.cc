#include "discovery/pc.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "table/table.h"

namespace scoded {
namespace {

bool HasDirected(const PcResult& result, const std::string& from, const std::string& to) {
  auto index = [&](const std::string& name) {
    for (size_t i = 0; i < result.names.size(); ++i) {
      if (result.names[i] == name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  std::pair<int, int> edge{index(from), index(to)};
  return std::find(result.directed.begin(), result.directed.end(), edge) !=
         result.directed.end();
}

TEST(PcTest, ChainSkeletonAndSeparatingSet) {
  // a -> b -> c: skeleton a-b, b-c; a and c separated by {b}.
  Rng rng(1);
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> c;
  for (int i = 0; i < 600; ++i) {
    double av = rng.Normal();
    double bv = av + rng.Normal(0.0, 0.6);
    double cv = bv + rng.Normal(0.0, 0.6);
    a.push_back(av);
    b.push_back(bv);
    c.push_back(cv);
  }
  TableBuilder builder;
  builder.AddNumeric("a", a);
  builder.AddNumeric("b", b);
  builder.AddNumeric("c", c);
  Table table = std::move(builder).Build().value();
  PcResult result = LearnPcStructure(table).value();
  EXPECT_TRUE(result.IsAdjacent(0, 1));
  EXPECT_TRUE(result.IsAdjacent(1, 2));
  EXPECT_FALSE(result.IsAdjacent(0, 2));
  auto it = result.separating_sets.find({0, 2});
  ASSERT_NE(it, result.separating_sets.end());
  EXPECT_EQ(it->second, (std::vector<int>{1}));
  // No v-structure in a chain.
  EXPECT_TRUE(result.directed.empty());
}

TEST(PcTest, ColliderOriented) {
  // a -> c <- b with a, b independent: skeleton a-c, b-c; v-structure
  // oriented into c because the separating set of (a, b) is empty.
  Rng rng(2);
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> c;
  for (int i = 0; i < 600; ++i) {
    double av = rng.Normal();
    double bv = rng.Normal();
    a.push_back(av);
    b.push_back(bv);
    c.push_back(av + bv + rng.Normal(0.0, 0.4));
  }
  TableBuilder builder;
  builder.AddNumeric("a", a);
  builder.AddNumeric("b", b);
  builder.AddNumeric("c", c);
  Table table = std::move(builder).Build().value();
  PcResult result = LearnPcStructure(table).value();
  EXPECT_TRUE(result.IsAdjacent(0, 2));
  EXPECT_TRUE(result.IsAdjacent(1, 2));
  EXPECT_FALSE(result.IsAdjacent(0, 1));
  EXPECT_TRUE(HasDirected(result, "a", "c"));
  EXPECT_TRUE(HasDirected(result, "b", "c"));
}

TEST(PcTest, IsolatedVariableDisconnected) {
  Rng rng(3);
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> noise;
  for (int i = 0; i < 400; ++i) {
    double av = rng.Normal();
    a.push_back(av);
    b.push_back(av + rng.Normal(0.0, 0.5));
    noise.push_back(rng.Normal());
  }
  TableBuilder builder;
  builder.AddNumeric("a", a);
  builder.AddNumeric("b", b);
  builder.AddNumeric("noise", noise);
  Table table = std::move(builder).Build().value();
  PcResult result = LearnPcStructure(table).value();
  EXPECT_TRUE(result.IsAdjacent(0, 1));
  EXPECT_FALSE(result.IsAdjacent(0, 2));
  EXPECT_FALSE(result.IsAdjacent(1, 2));
}

TEST(PcTest, DiscoveredConstraintsCoverAllPairs) {
  Rng rng(4);
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> c;
  for (int i = 0; i < 300; ++i) {
    double av = rng.Normal();
    a.push_back(av);
    b.push_back(av + rng.Normal(0.0, 0.5));
    c.push_back(rng.Normal());
  }
  TableBuilder builder;
  builder.AddNumeric("a", a);
  builder.AddNumeric("b", b);
  builder.AddNumeric("c", c);
  Table table = std::move(builder).Build().value();
  PcResult result = LearnPcStructure(table).value();
  std::vector<StatisticalConstraint> constraints = result.DiscoveredConstraints();
  EXPECT_EQ(constraints.size(), 3u);  // one per pair
  size_t dependences = 0;
  for (const StatisticalConstraint& sc : constraints) {
    dependences += sc.is_independence() ? 0 : 1;
  }
  EXPECT_GE(dependences, 1u);
  EXPECT_LT(dependences, 3u);
}

TEST(PcTest, CategoricalVariablesSupported) {
  // x determines y probabilistically; z independent.
  Rng rng(5);
  std::vector<std::string> x;
  std::vector<std::string> y;
  std::vector<std::string> z;
  for (int i = 0; i < 800; ++i) {
    std::string xv = "x" + std::to_string(rng.UniformInt(0, 2));
    x.push_back(xv);
    y.push_back(rng.Bernoulli(0.8) ? "y" + xv.substr(1)
                                   : "y" + std::to_string(rng.UniformInt(0, 2)));
    z.push_back("z" + std::to_string(rng.UniformInt(0, 2)));
  }
  TableBuilder builder;
  builder.AddCategorical("x", x);
  builder.AddCategorical("y", y);
  builder.AddCategorical("z", z);
  Table table = std::move(builder).Build().value();
  PcResult result = LearnPcStructure(table).value();
  EXPECT_TRUE(result.IsAdjacent(0, 1));
  EXPECT_FALSE(result.IsAdjacent(0, 2));
  EXPECT_FALSE(result.IsAdjacent(1, 2));
}

TEST(PcTest, InvalidOptionsRejected) {
  TableBuilder builder;
  builder.AddNumeric("a", {1.0, 2.0});
  Table one_col = std::move(builder).Build().value();
  EXPECT_FALSE(LearnPcStructure(one_col).ok());
  TableBuilder two;
  two.AddNumeric("a", {1.0, 2.0});
  two.AddNumeric("b", {1.0, 2.0});
  Table table = std::move(two).Build().value();
  PcOptions bad;
  bad.alpha = 0.0;
  EXPECT_FALSE(LearnPcStructure(table, bad).ok());
}

}  // namespace
}  // namespace scoded
