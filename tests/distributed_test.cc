// Coordinator/worker distributed checking: report parity with the
// single-process sharded checker at any worker count and transport, and
// the fault matrix — workers that die mid-summary, return torn frames,
// or stall past the deadline are retried against survivors to a
// byte-identical report; runs with no survivors fail Unavailable (never
// hang, never fold a partial result); well-formed worker error envelopes
// abort with the worker's own status.

#include "distributed/coordinator.h"

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/sharded_check.h"
#include "distributed/substrate.h"
#include "table/csv.h"

namespace scoded {
namespace {

// Renders the decision-relevant surface of a report the way `scoded check`
// prints it, so "identical reports" means the string a user would see.
std::string FormatReport(const ApproximateSc& asc, const ViolationReport& report) {
  char line[256];
  std::snprintf(line, sizeof(line), "%s: %s (p = %.17g, statistic = %.17g, method = %s, n = %lld)",
                asc.sc.ToString().c_str(), report.violated ? "VIOLATED" : "holds", report.p_value,
                report.test.statistic, std::string(TestMethodToString(report.test.method)).c_str(),
                static_cast<long long>(report.test.n));
  std::string out = line;
  for (const ComponentResult& part : report.components) {
    std::snprintf(line, sizeof(line), " | %s p=%.17g stat=%.17g dof=%lld n=%lld exact=%d",
                  part.component.ToString().c_str(), part.test.p_value, part.test.statistic,
                  static_cast<long long>(part.test.dof), static_cast<long long>(part.test.n),
                  part.test.used_exact ? 1 : 0);
    out += line;
  }
  return out;
}

// Wraps a real channel and injects one class of fault into the first
// `faults` summarize responses, after which it behaves perfectly — the
// shape of a worker that died or wedged partway through the run.
class FaultChannel : public dist::WorkerChannel {
 public:
  enum class Mode {
    kDie,       // response lost, connection reads as closed (kUnavailable)
    kTear,      // frame torn mid-payload (kDataLoss at the framing layer)
    kTruncate,  // frame delivered but the JSON payload is cut short
    kStall,     // no bytes until the deadline expires (kDeadlineExceeded)
    kBadOp,     // request corrupted; the worker answers an error envelope
  };

  FaultChannel(std::unique_ptr<dist::WorkerChannel> inner, Mode mode, int faults)
      : inner_(std::move(inner)), mode_(mode), faults_left_(faults) {}

  Status Send(std::string_view payload) override {
    if (mode_ == Mode::kBadOp && faults_left_ > 0 &&
        payload.find("summarize") != std::string_view::npos) {
      --faults_left_;
      return inner_->Send("{\"op\":\"frobnicate\"}");
    }
    return inner_->Send(payload);
  }

  Result<std::string> Receive(int deadline_millis) override {
    Result<std::string> payload = inner_->Receive(deadline_millis);
    if (faults_left_ <= 0 || !payload.ok() ||
        payload->find("summaries") == std::string::npos) {
      return payload;
    }
    --faults_left_;
    switch (mode_) {
      case Mode::kDie:
        return UnavailableError("injected: worker process died");
      case Mode::kTear:
        return DataLossError("injected: connection torn mid-frame");
      case Mode::kTruncate:
        return payload->substr(0, payload->size() / 2);
      case Mode::kStall:
        return DeadlineExceededError("injected: worker produced no bytes");
      case Mode::kBadOp:
        break;
    }
    return payload;
  }

  void Kill() override { inner_->Kill(); }
  int64_t pid() const override { return inner_->pid(); }

 private:
  std::unique_ptr<dist::WorkerChannel> inner_;
  Mode mode_;
  int faults_left_;
};

// In-process fleet where the listed worker indices are faulty.
class FaultSubstrate : public dist::Substrate {
 public:
  FaultSubstrate(FaultChannel::Mode mode, std::vector<size_t> faulty_workers, int faults = 1)
      : mode_(mode), faulty_(std::move(faulty_workers)), faults_(faults) {}

  Result<std::unique_ptr<dist::WorkerChannel>> Spawn(size_t worker_index) override {
    SCODED_ASSIGN_OR_RETURN(std::unique_ptr<dist::WorkerChannel> channel,
                            inner_.Spawn(worker_index));
    for (size_t w : faulty_) {
      if (w == worker_index) {
        return std::unique_ptr<dist::WorkerChannel>(
            new FaultChannel(std::move(channel), mode_, faults_));
      }
    }
    return channel;
  }

 private:
  dist::InProcessSubstrate inner_;
  FaultChannel::Mode mode_;
  std::vector<size_t> faulty_;
  int faults_;
};

class DistributedCheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/distributed_check_test.csv";
    Rng rng(97);
    std::ofstream out(path_);
    ASSERT_TRUE(out.good());
    out << "Model,Color,Price,Mileage\n";
    const char* models[] = {"civic", "corolla", "focus", "golf", "a4"};
    const char* colors[] = {"red", "blue", "white", "black"};
    for (int i = 0; i < 900; ++i) {
      int64_t m = rng.UniformInt(0, 4);
      int64_t c = rng.UniformInt(0, 9) < 4 ? m % 4 : rng.UniformInt(0, 3);
      if (rng.UniformInt(0, 49) == 0) {
        out << "";  // ~2% nulls keep the null-cell wire path honest
      } else {
        out << models[m];
      }
      out << ',' << colors[c] << ',';
      if (rng.UniformInt(0, 49) == 1) {
        out << "";
      } else {
        out << (1000 + m * 250 + rng.UniformInt(0, 400));
      }
      out << ',' << rng.UniformInt(0, 120000) << '\n';
    }
    out.close();

    constraints_.push_back({MustParse("Model _||_ Color"), 0.05});
    constraints_.push_back({MustParse("Model !_||_ Price"), 0.3});
    constraints_.push_back({MustParse("Price _||_ Mileage | Model"), 0.05});
  }

  void TearDown() override { std::remove(path_.c_str()); }

  static StatisticalConstraint MustParse(const std::string& text) {
    Result<StatisticalConstraint> sc = ParseConstraint(text);
    EXPECT_TRUE(sc.ok()) << sc.status().message();
    return std::move(sc).value();
  }

  ShardedCheckOptions BaseOptions() const {
    ShardedCheckOptions options;
    options.reader.shard_rows = 64;
    return options;
  }

  std::vector<std::string> Lines(const ShardedCheckResult& result) const {
    std::vector<std::string> lines;
    for (size_t i = 0; i < result.reports.size(); ++i) {
      lines.push_back(FormatReport(constraints_[i], result.reports[i]));
    }
    return lines;
  }

  std::vector<std::string> SingleProcessLines() {
    Result<ShardedCheckResult> result = ShardedCheckAll(path_, constraints_, BaseOptions());
    EXPECT_TRUE(result.ok()) << result.status().message();
    return Lines(*result);
  }

  std::string path_;
  std::vector<ApproximateSc> constraints_;
};

TEST_F(DistributedCheckTest, MatchesSingleProcessAtAnyWorkerCount) {
  std::vector<std::string> expected = SingleProcessLines();
  for (int workers : {1, 2, 4}) {
    dist::InProcessSubstrate substrate;
    dist::DistributedCheckOptions options;
    options.base = BaseOptions();
    options.workers = workers;
    Result<ShardedCheckResult> result =
        dist::DistributedCheckAll(path_, constraints_, substrate, options);
    ASSERT_TRUE(result.ok()) << "workers=" << workers << ": " << result.status().message();
    EXPECT_EQ(result->rows, uint64_t{900});
    EXPECT_EQ(result->shards, size_t{(900 + 63) / 64});
    EXPECT_EQ(Lines(*result), expected) << "workers=" << workers;
  }
}

TEST_F(DistributedCheckTest, MoreWorkersThanTasksStillFolds) {
  std::vector<std::string> expected = SingleProcessLines();
  dist::InProcessSubstrate substrate;
  dist::DistributedCheckOptions options;
  options.base = BaseOptions();
  options.base.reader.shard_rows = 900;  // one shard, one task
  options.workers = 4;
  Result<ShardedCheckResult> result =
      dist::DistributedCheckAll(path_, constraints_, substrate, options);
  ASSERT_TRUE(result.ok()) << result.status().message();
  // Different shard size, same data: decisions and p-values agree with the
  // 64-row sharding because summaries are exact.
  EXPECT_EQ(Lines(*result), expected);
}

TEST_F(DistributedCheckTest, RetriesWorkerDeathToIdenticalReport) {
  std::vector<std::string> expected = SingleProcessLines();
  for (FaultChannel::Mode mode : {FaultChannel::Mode::kDie, FaultChannel::Mode::kTear,
                                  FaultChannel::Mode::kTruncate}) {
    FaultSubstrate substrate(mode, {0});
    dist::DistributedCheckOptions options;
    options.base = BaseOptions();
    options.workers = 2;
    Result<ShardedCheckResult> result =
        dist::DistributedCheckAll(path_, constraints_, substrate, options);
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ(result->rows, uint64_t{900});
    EXPECT_EQ(Lines(*result), expected) << "mode=" << static_cast<int>(mode);
  }
}

TEST_F(DistributedCheckTest, RetriesStalledWorkerToIdenticalReport) {
  std::vector<std::string> expected = SingleProcessLines();
  FaultSubstrate substrate(FaultChannel::Mode::kStall, {0});
  dist::DistributedCheckOptions options;
  options.base = BaseOptions();
  options.workers = 2;
  options.deadline_millis = 30000;  // the stall is injected, not timed
  Result<ShardedCheckResult> result =
      dist::DistributedCheckAll(path_, constraints_, substrate, options);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(Lines(*result), expected);
}

TEST_F(DistributedCheckTest, AllWorkersLostFailsUnavailableWithoutHanging) {
  // Every worker dies on its first summarize and the fleet never recovers:
  // the coordinator must give up with kUnavailable, not hang or return a
  // partial fold.
  FaultSubstrate substrate(FaultChannel::Mode::kDie, {0, 1, 2}, /*faults=*/1000);
  dist::DistributedCheckOptions options;
  options.base = BaseOptions();
  options.workers = 3;
  Result<ShardedCheckResult> result =
      dist::DistributedCheckAll(path_, constraints_, substrate, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable) << result.status().ToString();
}

TEST_F(DistributedCheckTest, WorkerErrorEnvelopeAbortsWithItsStatus) {
  // A well-formed error envelope is the worker correctly reporting a
  // problem no retry can cure; the run aborts with the decoded status
  // instead of burning through the fleet.
  FaultSubstrate substrate(FaultChannel::Mode::kBadOp, {0, 1});
  dist::DistributedCheckOptions options;
  options.base = BaseOptions();
  options.workers = 2;
  Result<ShardedCheckResult> result =
      dist::DistributedCheckAll(path_, constraints_, substrate, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << result.status().ToString();
  EXPECT_NE(result.status().message().find("worker:"), std::string::npos)
      << result.status().ToString();
}

TEST_F(DistributedCheckTest, ZeroWorkersIsAUsageError) {
  dist::InProcessSubstrate substrate;
  dist::DistributedCheckOptions options;
  options.workers = 0;
  Result<ShardedCheckResult> result =
      dist::DistributedCheckAll(path_, constraints_, substrate, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DistributedCheckTest, MissingFileFailsBeforeSpawningWorkers) {
  // Substrate that refuses to spawn: proves the coordinator validates the
  // input before raising a fleet.
  class NoSpawn : public dist::Substrate {
   public:
    Result<std::unique_ptr<dist::WorkerChannel>> Spawn(size_t) override {
      ADD_FAILURE() << "coordinator spawned a worker for a missing file";
      return InternalError("unreachable");
    }
  };
  NoSpawn substrate;
  Result<ShardedCheckResult> result =
      dist::DistributedCheckAll(path_ + ".nope", constraints_, substrate, {});
  EXPECT_FALSE(result.ok());
}

// ---------------------------------------------------------------------------
// Real child processes: the fork/exec substrate against the installed-style
// binary, including a SIGKILL mid-run.
// ---------------------------------------------------------------------------

#ifdef SCODED_CLI_BIN

// Fork/exec substrate that SIGKILLs the chosen worker the moment it is
// spawned — by the time its first summarize lands, the process is gone and
// the coordinator sees the connection die mid-conversation.
class KillOnSpawnSubstrate : public dist::Substrate {
 public:
  explicit KillOnSpawnSubstrate(size_t victim)
      : inner_(SCODED_CLI_BIN, {"worker"}), victim_(victim) {}

  Result<std::unique_ptr<dist::WorkerChannel>> Spawn(size_t worker_index) override {
    SCODED_ASSIGN_OR_RETURN(std::unique_ptr<dist::WorkerChannel> channel,
                            inner_.Spawn(worker_index));
    if (worker_index == victim_ && channel->pid() > 0) {
      ::kill(static_cast<pid_t>(channel->pid()), SIGKILL);
    }
    return channel;
  }

 private:
  dist::ForkExecSubstrate inner_;
  size_t victim_;
};

TEST_F(DistributedCheckTest, ForkWorkersMatchSingleProcess) {
  std::vector<std::string> expected = SingleProcessLines();
  dist::ForkExecSubstrate substrate(SCODED_CLI_BIN, {"worker"});
  dist::DistributedCheckOptions options;
  options.base = BaseOptions();
  options.workers = 2;
  Result<ShardedCheckResult> result =
      dist::DistributedCheckAll(path_, constraints_, substrate, options);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(Lines(*result), expected);
}

TEST_F(DistributedCheckTest, TcpWorkersMatchSingleProcess) {
  std::vector<std::string> expected = SingleProcessLines();
  dist::TcpSubstrate substrate(SCODED_CLI_BIN, {"worker"});
  dist::DistributedCheckOptions options;
  options.base = BaseOptions();
  options.workers = 2;
  Result<ShardedCheckResult> result =
      dist::DistributedCheckAll(path_, constraints_, substrate, options);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(Lines(*result), expected);
}

TEST_F(DistributedCheckTest, SigkilledForkWorkerIsRetriedOnSurvivor) {
  std::vector<std::string> expected = SingleProcessLines();
  KillOnSpawnSubstrate substrate(/*victim=*/0);
  dist::DistributedCheckOptions options;
  options.base = BaseOptions();
  options.workers = 2;
  Result<ShardedCheckResult> result =
      dist::DistributedCheckAll(path_, constraints_, substrate, options);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->rows, uint64_t{900});
  EXPECT_EQ(Lines(*result), expected);
}

#endif  // SCODED_CLI_BIN

}  // namespace
}  // namespace scoded
