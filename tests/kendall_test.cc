#include "stats/kendall.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scoded {
namespace {

TEST(KendallTest, PerfectConcordance) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {10, 20, 30, 40, 50};
  KendallResult r = KendallTau(x, y);
  EXPECT_EQ(r.concordant, 10);
  EXPECT_EQ(r.discordant, 0);
  EXPECT_DOUBLE_EQ(r.tau_a, 1.0);
  EXPECT_DOUBLE_EQ(r.tau_b, 1.0);
}

TEST(KendallTest, PerfectDiscordance) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {4, 3, 2, 1};
  KendallResult r = KendallTau(x, y);
  EXPECT_EQ(r.discordant, 6);
  EXPECT_DOUBLE_EQ(r.tau_a, -1.0);
}

TEST(KendallTest, KnownMixedExample) {
  // x = 1..5, y = (3, 1, 2, 5, 4): discordant pairs are (1,2), (1,3),
  // (4,5); the remaining 7 are concordant, so τ_a = (7-3)/10 = 0.4.
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {3, 1, 2, 5, 4};
  KendallResult r = KendallTau(x, y);
  EXPECT_EQ(r.concordant, 7);
  EXPECT_EQ(r.discordant, 3);
  EXPECT_DOUBLE_EQ(r.tau_a, 0.4);
}

TEST(KendallTest, TiesAccounting) {
  std::vector<double> x = {1, 1, 2, 2};
  std::vector<double> y = {1, 2, 1, 2};
  KendallResult r = KendallTau(x, y);
  // Pairs: (0,1) tied x, (2,3) tied x, (0,2) tied y, (1,3) tied y,
  // (0,3) concordant, (1,2) discordant.
  EXPECT_EQ(r.ties_x, 2);
  EXPECT_EQ(r.ties_y, 2);
  EXPECT_EQ(r.ties_xy, 0);
  EXPECT_EQ(r.concordant, 1);
  EXPECT_EQ(r.discordant, 1);
  EXPECT_EQ(r.s, 0);
  EXPECT_DOUBLE_EQ(r.tau_b, 0.0);
}

TEST(KendallTest, JointTies) {
  std::vector<double> x = {1, 1, 2};
  std::vector<double> y = {5, 5, 6};
  KendallResult r = KendallTau(x, y);
  EXPECT_EQ(r.ties_xy, 1);
  EXPECT_EQ(r.concordant, 2);
}

TEST(KendallTest, DegenerateSizes) {
  EXPECT_EQ(KendallTau({}, {}).n, 0);
  EXPECT_DOUBLE_EQ(KendallTau({}, {}).p_two_sided, 1.0);
  KendallResult one = KendallTau({1.0}, {2.0});
  EXPECT_EQ(one.s, 0);
  EXPECT_DOUBLE_EQ(one.p_two_sided, 1.0);
}

TEST(KendallTest, ConstantColumnAllTies) {
  std::vector<double> x = {1, 1, 1, 1};
  std::vector<double> y = {1, 2, 3, 4};
  KendallResult r = KendallTau(x, y);
  EXPECT_EQ(r.concordant + r.discordant, 0);
  EXPECT_DOUBLE_EQ(r.tau_b, 0.0);
  EXPECT_DOUBLE_EQ(r.p_two_sided, 1.0);  // Var(S) = 0
}

TEST(KendallTest, GaussianPValueMatchesKnownCase) {
  // For n=10 with S=27 (tau_a=0.6), z = 27/sqrt(125) ≈ 2.4150,
  // two-sided p ≈ 0.01573 (no ties: Var = n(n-1)(2n+5)/18 = 125).
  std::vector<double> x;
  std::vector<double> y = {3, 1, 2, 5, 4, 6, 8, 7, 10, 9};
  for (int i = 1; i <= 10; ++i) {
    x.push_back(i);
  }
  KendallResult r = KendallTauNaive(x, y);
  EXPECT_EQ(r.n, 10);
  EXPECT_DOUBLE_EQ(r.var_s, 125.0);
  EXPECT_NEAR(r.z, static_cast<double>(r.s) / std::sqrt(125.0), 1e-12);
}

// Property: the O(n log n) implementation agrees exactly with the O(n²)
// reference on random data with heavy, moderate, and no ties.
class KendallEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(KendallEquivalenceTest, FastMatchesNaive) {
  int tie_levels = GetParam();
  Rng rng(1234 + static_cast<uint64_t>(tie_levels));
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = static_cast<size_t>(rng.UniformInt(2, 120));
    std::vector<double> x(n);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = static_cast<double>(rng.UniformInt(0, tie_levels));
      y[i] = static_cast<double>(rng.UniformInt(0, tie_levels));
    }
    KendallResult fast = KendallTau(x, y);
    KendallResult naive = KendallTauNaive(x, y);
    EXPECT_EQ(fast.concordant, naive.concordant);
    EXPECT_EQ(fast.discordant, naive.discordant);
    EXPECT_EQ(fast.ties_x, naive.ties_x);
    EXPECT_EQ(fast.ties_y, naive.ties_y);
    EXPECT_EQ(fast.ties_xy, naive.ties_xy);
    EXPECT_NEAR(fast.tau_b, naive.tau_b, 1e-12);
    EXPECT_NEAR(fast.var_s, naive.var_s, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(TieDensity, KendallEquivalenceTest,
                         ::testing::Values(2, 5, 20, 1000000));

TEST(KendallExactTest, TinyCasesByEnumeration) {
  // n=3: S ∈ {3, 1, -1, -3} with probabilities {1/6, 2/6, 2/6, 1/6}.
  EXPECT_NEAR(KendallExactPValue(3, 3), 2.0 / 6.0, 1e-12);   // |S|>=3
  EXPECT_NEAR(KendallExactPValue(1, 3), 1.0, 1e-12);         // |S|>=1 (all)
  EXPECT_NEAR(KendallExactPValue(-3, 3), 2.0 / 6.0, 1e-12);  // symmetric
}

TEST(KendallExactTest, N4Enumeration) {
  // n=4: inversions distribution over 24 permutations:
  // D: 0,1,2,3,4,5,6 with counts 1,3,5,6,5,3,1; S = 6 - 2D.
  EXPECT_NEAR(KendallExactPValue(6, 4), 2.0 / 24.0, 1e-12);
  EXPECT_NEAR(KendallExactPValue(4, 4), 8.0 / 24.0, 1e-12);
  EXPECT_NEAR(KendallExactPValue(2, 4), 18.0 / 24.0, 1e-12);
  EXPECT_NEAR(KendallExactPValue(0, 4), 1.0, 1e-12);
}

TEST(KendallExactTest, ZeroSGivesPOne) {
  EXPECT_DOUBLE_EQ(KendallExactPValue(0, 7), 1.0);
}

TEST(KendallExactTest, ApproachesGaussianForModerateN) {
  // At n=40, |S|=158 (tau=0.2026...): exact and Gaussian p should agree to
  // a couple of decimal places.
  int64_t n = 40;
  int64_t s = 158;
  double exact = KendallExactPValue(s, n);
  double var = static_cast<double>(n) * (n - 1) * (2 * n + 5) / 18.0;
  double z = static_cast<double>(s) / std::sqrt(var);
  double gaussian = std::erfc(std::fabs(z) / std::sqrt(2.0));
  EXPECT_NEAR(exact, gaussian, 0.01);
}

TEST(PairWeightTest, AllCases) {
  EXPECT_EQ(PairWeight(1, 1, 2, 2), 1);
  EXPECT_EQ(PairWeight(2, 2, 1, 1), 1);
  EXPECT_EQ(PairWeight(1, 2, 2, 1), -1);
  EXPECT_EQ(PairWeight(1, 1, 1, 2), 0);
  EXPECT_EQ(PairWeight(1, 1, 2, 1), 0);
  EXPECT_EQ(PairWeight(1, 1, 1, 1), 0);
}

TEST(TauBenefitsTest, SumIsTwiceS) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    size_t n = static_cast<size_t>(rng.UniformInt(2, 200));
    std::vector<double> x(n);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = static_cast<double>(rng.UniformInt(0, 30));
      y[i] = static_cast<double>(rng.UniformInt(0, 30));
    }
    std::vector<int64_t> benefits = ComputeTauBenefits(x, y);
    int64_t sum = 0;
    for (int64_t b : benefits) {
      sum += b;
    }
    EXPECT_EQ(sum, 2 * KendallTauNaive(x, y).s);
  }
}

// Property: the segment-tree initialisation (Algorithm 2) matches the
// O(n²) definition of per-record benefits, including under ties.
class TauBenefitsEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(TauBenefitsEquivalenceTest, SegmentTreeMatchesNaive) {
  Rng rng(31 + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 15; ++trial) {
    size_t n = static_cast<size_t>(rng.UniformInt(1, 150));
    std::vector<double> x(n);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = static_cast<double>(rng.UniformInt(0, GetParam()));
      y[i] = static_cast<double>(rng.UniformInt(0, GetParam()));
    }
    EXPECT_EQ(ComputeTauBenefits(x, y), ComputeTauBenefitsNaive(x, y));
  }
}

INSTANTIATE_TEST_SUITE_P(TieDensity, TauBenefitsEquivalenceTest,
                         ::testing::Values(1, 3, 10, 100000));

void ExpectSameKendall(const KendallResult& a, const KendallResult& b) {
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.concordant, b.concordant);
  EXPECT_EQ(a.discordant, b.discordant);
  EXPECT_EQ(a.ties_x, b.ties_x);
  EXPECT_EQ(a.ties_y, b.ties_y);
  EXPECT_EQ(a.ties_xy, b.ties_xy);
  EXPECT_EQ(a.s, b.s);
  // Bit-identical by contract: the floats derive from the same integer
  // counts through CompleteKendallResult.
  EXPECT_EQ(a.tau_a, b.tau_a);
  EXPECT_EQ(a.tau_b, b.tau_b);
  EXPECT_EQ(a.var_s, b.var_s);
  EXPECT_EQ(a.z, b.z);
  EXPECT_EQ(a.p_two_sided, b.p_two_sided);
}

// Property: the weighted-point form used by out-of-core shard summaries
// matches KendallTau (and the naive reference) on any expansion of the
// points, in any row order, with unsorted and duplicated points.
TEST(KendallFromCountsTest, MatchesExpandedComputationExactly) {
  Rng rng(77);
  for (int trial = 0; trial < 25; ++trial) {
    size_t m = static_cast<size_t>(rng.UniformInt(1, 40));
    std::vector<WeightedPoint> points;
    std::vector<double> x;
    std::vector<double> y;
    for (size_t i = 0; i < m; ++i) {
      WeightedPoint p;
      p.x = static_cast<double>(rng.UniformInt(0, 6));
      p.y = static_cast<double>(rng.UniformInt(0, 6));
      p.count = rng.UniformInt(1, 4);
      for (int64_t c = 0; c < p.count; ++c) {
        x.push_back(p.x);
        y.push_back(p.y);
      }
      points.push_back(p);
    }
    // Shuffle the expanded rows (jointly): row order must not matter.
    std::vector<size_t> order(x.size());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    rng.Shuffle(order);
    std::vector<double> sx(x.size());
    std::vector<double> sy(y.size());
    for (size_t i = 0; i < order.size(); ++i) {
      sx[i] = x[order[i]];
      sy[i] = y[order[i]];
    }
    KendallResult expected = KendallTau(sx, sy);
    ExpectSameKendall(expected, KendallTauFromCounts(points));
    ExpectSameKendall(expected, KendallTauNaive(sx, sy));
  }
}

TEST(KendallFromCountsTest, NanCoordinatesOrderAfterNumbers) {
  double nan = std::nan("");
  std::vector<WeightedPoint> points = {
      {1.0, 2.0, 2}, {nan, 2.0, 1}, {3.0, nan, 2}, {nan, nan, 1}, {2.0, 1.0, 3},
  };
  std::vector<double> x;
  std::vector<double> y;
  for (const WeightedPoint& p : points) {
    for (int64_t c = 0; c < p.count; ++c) {
      x.push_back(p.x);
      y.push_back(p.y);
    }
  }
  ExpectSameKendall(KendallTau(x, y), KendallTauFromCounts(points));
}

}  // namespace
}  // namespace scoded
