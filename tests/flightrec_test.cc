#include "obs/flightrec.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fileio.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/sharded_check.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SCODED_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define SCODED_TSAN 1
#endif

namespace scoded {
namespace {

// A syntactically complete report, used by the parser tests in every build
// (including SCODED_DISABLE_OBS, where the recorder itself is a stub).
constexpr char kCannedReport[] =
    "SCODED-FLIGHT-REPORT v1\n"
    "kind: crash\n"
    "signal: SIGSEGV\n"
    "reason: fatal signal\n"
    "time_us: 123456\n"
    "build: deadbeef Release\n"
    "== backtrace ==\n"
    "./scoded(+0x1234)[0xdead]\n"
    "libc.so.6(+0x5678)[0xbeef]\n"
    "== thread 0 ==\n"
    "sys_tid: 4242\n"
    "spans: cli/main;core/sharded_check_all;core/shard_read\n"
    "journal:\n"
    "  100 span_begin cli/main 0\n"
    "  200 heartbeat core.shard_read 3\n"
    "== thread 1 ==\n"
    "sys_tid: 4243\n"
    "spans: -\n"
    "journal:\n"
    "== metrics ==\n"
    "counter stats.tests_executed 42\n"
    "gauge progress.shards_done 3.000000\n"
    "== end ==\n";

TEST(FlightReportParserTest, ParsesCannedReport) {
  Result<std::vector<obs::FlightReport>> reports =
      obs::ParseFlightReports(kCannedReport);
  ASSERT_TRUE(reports.ok()) << reports.status().message();
  ASSERT_EQ(reports->size(), 1u);
  const obs::FlightReport& report = (*reports)[0];
  EXPECT_EQ(report.kind, "crash");
  EXPECT_EQ(report.signal_name, "SIGSEGV");
  EXPECT_EQ(report.reason, "fatal signal");
  EXPECT_EQ(report.time_us, 123456);
  EXPECT_EQ(report.build, "deadbeef Release");
  ASSERT_EQ(report.backtrace.size(), 2u);
  EXPECT_EQ(report.backtrace[0], "./scoded(+0x1234)[0xdead]");
  ASSERT_EQ(report.threads.size(), 2u);
  EXPECT_EQ(report.threads[0].tid, 0u);
  EXPECT_EQ(report.threads[0].sys_tid, 4242u);
  ASSERT_EQ(report.threads[0].span_stack.size(), 3u);
  EXPECT_EQ(report.threads[0].span_stack[1], "core/sharded_check_all");
  ASSERT_EQ(report.threads[0].journal.size(), 2u);
  EXPECT_NE(report.threads[0].journal[1].find("heartbeat"), std::string::npos);
  EXPECT_TRUE(report.threads[1].span_stack.empty());
  ASSERT_EQ(report.metrics.size(), 2u);
  EXPECT_EQ(report.metrics[0], "counter stats.tests_executed 42");
}

TEST(FlightReportParserTest, ParsesMultipleReportsAndSkipsJunkBetween) {
  std::string two = std::string(kCannedReport) + "noise the shell printed\n" +
                    kCannedReport;
  Result<std::vector<obs::FlightReport>> reports = obs::ParseFlightReports(two);
  ASSERT_TRUE(reports.ok()) << reports.status().message();
  EXPECT_EQ(reports->size(), 2u);
}

TEST(FlightReportParserTest, RejectsGarbage) {
  EXPECT_FALSE(obs::ParseFlightReports("not a report at all\n").ok());
  EXPECT_FALSE(obs::ParseFlightReports("").ok());
}

TEST(FlightReportParserTest, RejectsTruncatedReport) {
  std::string truncated(kCannedReport);
  truncated.resize(truncated.find("== end =="));
  Result<std::vector<obs::FlightReport>> reports =
      obs::ParseFlightReports(truncated);
  EXPECT_FALSE(reports.ok());
  EXPECT_NE(reports.status().message().find("== end =="), std::string::npos);
}

TEST(FlightReportParserTest, RenderRoundTripMentionsTheLoadBearingParts) {
  Result<std::vector<obs::FlightReport>> reports =
      obs::ParseFlightReports(kCannedReport);
  ASSERT_TRUE(reports.ok());
  std::string rendered = obs::RenderFlightReport((*reports)[0]);
  EXPECT_NE(rendered.find("CRASH"), std::string::npos);
  EXPECT_NE(rendered.find("SIGSEGV"), std::string::npos);
  EXPECT_NE(rendered.find("core/sharded_check_all"), std::string::npos);
  EXPECT_NE(rendered.find("stats.tests_executed"), std::string::npos);
}

#if defined(SCODED_OBS_DISABLED)

// With observability compiled out the recorder is a stub that fails loudly
// when asked for explicitly and no-ops otherwise.
TEST(FlightRecorderStubTest, ArmFailsLoudly) {
  Status status = obs::ArmFlightRecorder();
  EXPECT_EQ(status.code(), StatusCode::kUnimplemented);
  EXPECT_FALSE(obs::FlightRecorderArmed());
  EXPECT_TRUE(obs::CrashReportPath().empty());
}

TEST(FlightRecorderStubTest, WatchdogFailsLoudly) {
  EXPECT_EQ(obs::StartWatchdog().code(), StatusCode::kUnimplemented);
  EXPECT_FALSE(obs::WatchdogRunning());
}

TEST(FlightRecorderStubTest, HooksAreNoOps) {
  obs::Heartbeat("stub", 1);
  obs::DumpStallReport("stub");
  obs::DisarmFlightRecorder();
  obs::StopWatchdog();
}

#else  // !SCODED_OBS_DISABLED

std::string MakeReportDir(const std::string& stem) {
  std::string dir = ::testing::TempDir() + "/" + stem;
  std::string cmd = "mkdir -p '" + dir + "'";
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

std::string WriteShardFixture(const std::string& path, int rows) {
  Rng rng(17);
  std::ofstream out(path);
  EXPECT_TRUE(out.good());
  out << "A,B,C\n";
  for (int i = 0; i < rows; ++i) {
    int64_t a = rng.UniformInt(0, 5);
    out << a << ',' << a + rng.UniformInt(0, 2) << ',' << rng.UniformInt(0, 9)
        << '\n';
  }
  return path;
}

ApproximateSc MustParseAsc(const std::string& text, double alpha) {
  Result<StatisticalConstraint> sc = ParseConstraint(text);
  EXPECT_TRUE(sc.ok()) << sc.status().message();
  return {std::move(sc).value(), alpha};
}

// The acceptance test: a forked child dies of SIGSEGV mid-ShardedCheckAll
// and leaves a parseable crash report with a backtrace, the active span
// stack of the checking thread, and journal events.
//
// First in the file on purpose: the child must fork before any other test
// has started pool worker threads (they would not survive the fork).
TEST(FlightRecorderDeathTest, SigsegvDuringShardedCheckLeavesCrashReport) {
#if defined(SCODED_TSAN)
  GTEST_SKIP() << "TSan kills forked children (die_after_fork)";
#endif
  std::string dir = MakeReportDir("flightrec_crash");
  std::string csv =
      WriteShardFixture(::testing::TempDir() + "/flightrec_crash.csv", 60000);
  pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child. Exit codes: 3 = could not arm, 0 = the check finished without
    // crashing (both are parent-side failures).
    parallel::SetThreads(1);
    obs::FlightRecorderOptions options;
    options.report_dir = dir;
    options.events_per_thread = 128;
    if (!obs::ArmFlightRecorder(options).ok()) {
      _exit(3);
    }
    // Crash as soon as the check makes observable progress, so the main
    // thread is caught with its sharded-check spans open.
    std::thread([] {
      obs::Counter* rows = obs::Metrics::Global().FindOrCreateCounter("shard.rows");
      while (rows->Value() == 0) {
        std::this_thread::yield();
      }
      volatile int* null_page = nullptr;
      *null_page = 1;
    }).detach();
    ShardedCheckOptions options_check;
    options_check.reader.shard_rows = 500;
    (void)ShardedCheckAll(csv, {MustParseAsc("A _||_ C", 0.05)}, options_check);
    _exit(0);
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  if (WIFEXITED(wstatus)) {
    // A sanitizer that intercepted the chained SIGSEGV exits nonzero
    // instead of dying of the signal; both prove the crash happened.
    EXPECT_NE(WEXITSTATUS(wstatus), 0) << "check finished without crashing";
    ASSERT_NE(WEXITSTATUS(wstatus), 3) << "child could not arm the recorder";
  } else {
    ASSERT_TRUE(WIFSIGNALED(wstatus));
    EXPECT_EQ(WTERMSIG(wstatus), SIGSEGV);
  }
  std::string report_path =
      dir + "/scoded-crash-" + std::to_string(pid) + ".report";
  Result<std::string> text = ReadTextFile(report_path);
  ASSERT_TRUE(text.ok()) << "no crash report at " << report_path;
  Result<std::vector<obs::FlightReport>> reports = obs::ParseFlightReports(*text);
  ASSERT_TRUE(reports.ok()) << reports.status().message();
  ASSERT_EQ(reports->size(), 1u);
  const obs::FlightReport& report = (*reports)[0];
  EXPECT_EQ(report.kind, "crash");
  EXPECT_EQ(report.signal_name, "SIGSEGV");
  EXPECT_FALSE(report.backtrace.empty());
  // The checking thread must be caught inside the sharded check, and at
  // least one thread journaled at least one event.
  bool found_shard_span = false;
  bool found_event = false;
  for (const obs::FlightReport::Thread& thread : report.threads) {
    found_event = found_event || !thread.journal.empty();
    for (const std::string& span : thread.span_stack) {
      found_shard_span = found_shard_span || span.rfind("core/shard", 0) == 0;
    }
  }
  EXPECT_TRUE(found_shard_span) << "no core/shard* span open in any thread";
  EXPECT_TRUE(found_event) << "no journal events in any thread";
}

TEST(FlightRecorderTest, ArmRejectsZeroCapacity) {
  obs::FlightRecorderOptions options;
  options.events_per_thread = 0;
  Status status = obs::ArmFlightRecorder(options);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(obs::FlightRecorderArmed());
}

TEST(FlightRecorderTest, CleanArmDisarmLeavesNoFiles) {
  std::string dir = MakeReportDir("flightrec_clean");
  obs::FlightRecorderOptions options;
  options.report_dir = dir;
  ASSERT_TRUE(obs::ArmFlightRecorder(options).ok());
  EXPECT_TRUE(obs::FlightRecorderArmed());
  std::string crash_path = obs::CrashReportPath();
  std::string stall_path = obs::StallReportPath();
  EXPECT_NE(crash_path.find(dir), std::string::npos);
  EXPECT_NE(stall_path.find(dir), std::string::npos);
  // Arming is idempotent while armed.
  EXPECT_TRUE(obs::ArmFlightRecorder(options).ok());
  obs::DisarmFlightRecorder();
  EXPECT_FALSE(obs::FlightRecorderArmed());
  // Nothing was dumped, so disarm unlinked both pre-opened files.
  EXPECT_FALSE(ReadTextFile(crash_path).ok());
  EXPECT_FALSE(ReadTextFile(stall_path).ok());
}

TEST(FlightRecorderTest, StallDumpCapturesJournalSpansAndMetrics) {
  std::string dir = MakeReportDir("flightrec_stall");
  obs::FlightRecorderOptions options;
  options.report_dir = dir;
  options.events_per_thread = 64;
  ASSERT_TRUE(obs::ArmFlightRecorder(options).ok());
  std::string stall_path = obs::StallReportPath();
  {
    obs::ScopedSpan outer("test/outer");
    obs::ScopedSpan inner("test/inner");
    obs::Heartbeat("test.beat", 7);
    obs::LogWarn("synthetic stall for the test");
    // Dump while both spans are still open: they must appear as the live
    // span stack, not just as journal events.
    obs::DumpStallReport("unit-test stall");
  }
  obs::DisarmFlightRecorder();
  Result<std::string> text = ReadTextFile(stall_path);
  ASSERT_TRUE(text.ok()) << "no stall report at " << stall_path;
  Result<std::vector<obs::FlightReport>> reports = obs::ParseFlightReports(*text);
  ASSERT_TRUE(reports.ok()) << reports.status().message();
  ASSERT_EQ(reports->size(), 1u);
  const obs::FlightReport& report = (*reports)[0];
  EXPECT_EQ(report.kind, "stall");
  EXPECT_EQ(report.signal_name, "on-demand");
  EXPECT_EQ(report.reason, "unit-test stall");
  EXPECT_FALSE(report.build.empty());
  bool found_stack = false;
  bool found_beat = false;
  bool found_log = false;
  for (const obs::FlightReport::Thread& thread : report.threads) {
    if (thread.span_stack.size() >= 2 && thread.span_stack[0] == "test/outer" &&
        thread.span_stack[1] == "test/inner") {
      found_stack = true;
    }
    for (const std::string& event : thread.journal) {
      found_beat = found_beat || (event.find("heartbeat") != std::string::npos &&
                                  event.find("test.beat") != std::string::npos);
      found_log = found_log || event.find("synthetic stall") != std::string::npos;
    }
  }
  EXPECT_TRUE(found_stack) << "live span stack missing test/outer > test/inner";
  EXPECT_TRUE(found_beat) << "heartbeat event missing from the journal";
  EXPECT_TRUE(found_log) << "log record missing from the journal";
  // The final metrics snapshot rides along.
  bool found_metric = false;
  for (const std::string& line : report.metrics) {
    found_metric = found_metric || line.find("flightrec.stall_reports") != std::string::npos;
  }
  EXPECT_TRUE(found_metric);
  ASSERT_EQ(::unlink(stall_path.c_str()), 0);
}

TEST(FlightRecorderTest, WatchdogDumpsOnStalledPool) {
  std::string dir = MakeReportDir("flightrec_watchdog");
  obs::FlightRecorderOptions options;
  options.report_dir = dir;
  ASSERT_TRUE(obs::ArmFlightRecorder(options).ok());
  std::string stall_path = obs::StallReportPath();
  // Simulate a hung pool: one heartbeat happened, work is still pending,
  // and then nothing moves.
  obs::Gauge* pending =
      obs::Metrics::Global().FindOrCreateGauge("parallel.pool_pending_chunks");
  obs::Heartbeat("test.stalled_task", 1);
  pending->Set(5.0);
  obs::WatchdogOptions watchdog;
  watchdog.stall_seconds = 0.15;
  watchdog.poll_ms = 25;
  ASSERT_TRUE(obs::StartWatchdog(watchdog).ok());
  EXPECT_TRUE(obs::WatchdogRunning());
  // A second watchdog is refused.
  EXPECT_EQ(obs::StartWatchdog(watchdog).code(), StatusCode::kFailedPrecondition);
  std::string text;
  for (int i = 0; i < 200; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    Result<std::string> read = ReadTextFile(stall_path);
    if (read.ok() && read->find("== end ==") != std::string::npos) {
      text = *read;
      break;
    }
  }
  pending->Set(0.0);
  obs::StopWatchdog();
  EXPECT_FALSE(obs::WatchdogRunning());
  obs::DisarmFlightRecorder();
  ASSERT_FALSE(text.empty()) << "watchdog never dumped a stall report";
  Result<std::vector<obs::FlightReport>> reports = obs::ParseFlightReports(text);
  ASSERT_TRUE(reports.ok()) << reports.status().message();
  ASSERT_GE(reports->size(), 1u);
  EXPECT_EQ((*reports)[0].kind, "stall");
  EXPECT_EQ((*reports)[0].signal_name, "watchdog");
  EXPECT_NE((*reports)[0].reason.find("no heartbeat"), std::string::npos);
  ASSERT_EQ(::unlink(stall_path.c_str()), 0);
}

TEST(FlightRecorderTest, WatchdogStaysQuietWithoutPendingWork) {
  std::string dir = MakeReportDir("flightrec_quiet");
  obs::FlightRecorderOptions options;
  options.report_dir = dir;
  ASSERT_TRUE(obs::ArmFlightRecorder(options).ok());
  std::string stall_path = obs::StallReportPath();
  obs::Metrics::Global()
      .FindOrCreateGauge("parallel.pool_pending_chunks")
      ->Set(0.0);
  obs::Metrics::Global()
      .FindOrCreateGauge("parallel.pool_inflight_tasks")
      ->Set(0.0);
  obs::Heartbeat("test.idle", 1);
  obs::WatchdogOptions watchdog;
  watchdog.stall_seconds = 0.05;
  watchdog.poll_ms = 10;
  ASSERT_TRUE(obs::StartWatchdog(watchdog).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  obs::StopWatchdog();
  obs::DisarmFlightRecorder();
  // Quiet but idle is not a stall: the file must have been unlinked empty.
  EXPECT_FALSE(ReadTextFile(stall_path).ok());
}

TEST(FlightRecorderTest, WatchdogRequiresArmedRecorder) {
  ASSERT_FALSE(obs::FlightRecorderArmed());
  EXPECT_EQ(obs::StartWatchdog().code(), StatusCode::kFailedPrecondition);
}

TEST(FlightRecorderTest, StallFileAccumulatesMultipleDumps) {
  std::string dir = MakeReportDir("flightrec_multi");
  obs::FlightRecorderOptions options;
  options.report_dir = dir;
  ASSERT_TRUE(obs::ArmFlightRecorder(options).ok());
  std::string stall_path = obs::StallReportPath();
  obs::DumpStallReport("first");
  obs::DumpStallReport("second");
  obs::DisarmFlightRecorder();
  Result<std::string> text = ReadTextFile(stall_path);
  ASSERT_TRUE(text.ok());
  Result<std::vector<obs::FlightReport>> reports = obs::ParseFlightReports(*text);
  ASSERT_TRUE(reports.ok()) << reports.status().message();
  ASSERT_EQ(reports->size(), 2u);
  EXPECT_EQ((*reports)[0].reason, "first");
  EXPECT_EQ((*reports)[1].reason, "second");
  ASSERT_EQ(::unlink(stall_path.c_str()), 0);
}

// `scoded inspect` smoke: renders a real stall dump and fails cleanly on
// garbage input.
TEST(FlightRecorderCliTest, InspectRendersAndRejects) {
  std::string dir = MakeReportDir("flightrec_cli");
  obs::FlightRecorderOptions options;
  options.report_dir = dir;
  ASSERT_TRUE(obs::ArmFlightRecorder(options).ok());
  std::string stall_path = obs::StallReportPath();
  obs::DumpStallReport("inspect smoke");
  obs::DisarmFlightRecorder();
  std::string out_path = dir + "/inspect.out";
  std::string cmd = std::string(SCODED_CLI_BIN) + " inspect '" + stall_path +
                    "' > '" + out_path + "'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  Result<std::string> rendered = ReadTextFile(out_path);
  ASSERT_TRUE(rendered.ok());
  EXPECT_NE(rendered->find("STALL report"), std::string::npos);
  EXPECT_NE(rendered->find("inspect smoke"), std::string::npos);
  std::string garbage_path = dir + "/garbage.report";
  ASSERT_TRUE(WriteTextFile(garbage_path, "not a flight report\n").ok());
  std::string bad = std::string(SCODED_CLI_BIN) + " inspect '" + garbage_path +
                    "' > /dev/null 2>&1";
  EXPECT_NE(std::system(bad.c_str()), 0);
  ASSERT_EQ(::unlink(stall_path.c_str()), 0);
}

#endif  // SCODED_OBS_DISABLED

}  // namespace
}  // namespace scoded
