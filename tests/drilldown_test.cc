#include "core/drilldown.h"

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/partition.h"
#include "core/scoded.h"
#include "core/violation.h"
#include "table/table.h"

namespace scoded {
namespace {

// Figure 2's updated car table (16 records); the paper's drill-down returns
// five mutually correlated records (r8, r13-r16: all Toyota Prius, Black).
Table UpdatedCarTable() {
  TableBuilder builder;
  builder.AddCategorical(
      "Model", {"BMW X1", "BMW X1", "BMW X1", "BMW X1", "Toyota Prius", "Toyota Prius",
                "Toyota Prius", "Toyota Prius", "BMW X1", "BMW X1", "BMW X1", "BMW X1",
                "Toyota Prius", "Toyota Prius", "Toyota Prius", "Toyota Prius"});
  builder.AddCategorical("Color",
                         {"White", "Black", "White", "Black", "White", "White", "White", "Black",
                          "White", "White", "White", "Black", "Black", "Black", "Black", "Black"});
  return std::move(builder).Build().value();
}

// n_clean independent numeric records plus n_dirty strongly correlated
// ones; returns the table and the dirty row ids.
std::pair<Table, std::set<size_t>> PlantedCorrelationTable(size_t n_clean, size_t n_dirty,
                                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x;
  std::vector<double> y;
  std::set<size_t> dirty;
  for (size_t i = 0; i < n_clean; ++i) {
    x.push_back(rng.Normal(0.0, 1.0));
    y.push_back(rng.Normal(0.0, 1.0));
  }
  for (size_t i = 0; i < n_dirty; ++i) {
    // A tight monotone cluster far in the tail: unmistakably dependent.
    double v = 5.0 + 0.1 * static_cast<double>(i);
    dirty.insert(x.size());
    x.push_back(v);
    y.push_back(v * 2.0);
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  return {std::move(builder).Build().value(), dirty};
}

TEST(DrillDownTest, CarExampleReturnsMutuallyCorrelatedRecords) {
  ApproximateSc asc{ParseConstraint("Model _||_ Color").value(), 0.4};
  DrillDownResult result = DrillDown(UpdatedCarTable(), asc, 5).value();
  ASSERT_EQ(result.rows.size(), 5u);
  EXPECT_EQ(result.strategy_used, Strategy::kComplement);
  // All five returned records must come from the over-represented diagonal
  // cells (Model, Color) ∈ {(BMW, White), (Prius, Black)} — the pattern the
  // paper's analyst discovers.
  const Table t = UpdatedCarTable();
  for (size_t row : result.rows) {
    const std::string& model = t.ColumnByName("Model").CategoryAt(row);
    const std::string& color = t.ColumnByName("Color").CategoryAt(row);
    bool diagonal = (model == "BMW X1" && color == "White") ||
                    (model == "Toyota Prius" && color == "Black");
    EXPECT_TRUE(diagonal) << "row " << row << " = " << model << "/" << color;
  }
}

TEST(DrillDownTest, TauComplementRecoversPlantedCluster) {
  auto [table, dirty] = PlantedCorrelationTable(200, 30, 1);
  ApproximateSc asc{ParseConstraint("x _||_ y").value(), 0.05};
  ASSERT_TRUE(DetectViolation(table, asc).value().violated);
  DrillDownResult result = DrillDown(table, asc, 30).value();
  ASSERT_EQ(result.rows.size(), 30u);
  size_t hits = 0;
  for (size_t row : result.rows) {
    hits += dirty.count(row);
  }
  EXPECT_GE(hits, 24u);  // >= 80% precision on an easy planted cluster
}

TEST(DrillDownTest, TauDirectStrategyReducesStatistic) {
  auto [table, dirty] = PlantedCorrelationTable(200, 30, 2);
  ApproximateSc asc{ParseConstraint("x _||_ y").value(), 0.05};
  DrillDownResult result = DrillDown(table, asc, 30, {Strategy::kDirect, {}}).value();
  EXPECT_EQ(result.strategy_used, Strategy::kDirect);
  EXPECT_LT(result.final_statistic, result.initial_statistic);
  size_t hits = 0;
  for (size_t row : result.rows) {
    hits += dirty.count(row);
  }
  EXPECT_GE(hits, 20u);
}

TEST(DrillDownTest, DependenceScFindsImputedRows) {
  // y tracks x except for 40 "imputed" rows where y is a constant.
  Rng rng(3);
  std::vector<double> x;
  std::vector<double> y;
  std::set<size_t> dirty;
  for (size_t i = 0; i < 200; ++i) {
    double v = rng.Normal();
    x.push_back(v);
    y.push_back(2.0 * v + rng.Normal(0.0, 0.05));
  }
  for (size_t i = 0; i < 40; ++i) {
    dirty.insert(x.size());
    x.push_back(rng.Normal());
    y.push_back(0.123);  // mean-imputation artefact
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  Table table = std::move(builder).Build().value();
  ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.05};
  // K strategy (the paper's default for DSCs): removing imputed rows
  // restores the dependence fastest.
  DrillDownResult result = DrillDown(table, asc, 40).value();
  EXPECT_EQ(result.strategy_used, Strategy::kDirect);
  size_t hits = 0;
  for (size_t row : result.rows) {
    hits += dirty.count(row);
  }
  EXPECT_GE(hits, 30u);
  // The raw S statistic shrinks with n; dependence strength is S divided by
  // the number of pairs, which must grow as the imputed rows leave.
  double n0 = 240.0 * 239.0 / 2.0;
  double n1 = 200.0 * 199.0 / 2.0;
  EXPECT_GT(result.final_statistic / n1, result.initial_statistic / n0);
}

TEST(DrillDownTest, CategoricalPlantedErrors) {
  // x,y independent uniform over 3x3, plus 90 planted rows that follow the
  // deterministic mapping a_i -> b_i (a sorting-error-like pattern; note a
  // single-cell plant would mostly be absorbed by the marginals).
  Rng rng(4);
  std::vector<std::string> x;
  std::vector<std::string> y;
  std::set<size_t> dirty;
  for (size_t i = 0; i < 300; ++i) {
    x.push_back("a" + std::to_string(rng.UniformInt(0, 2)));
    y.push_back("b" + std::to_string(rng.UniformInt(0, 2)));
  }
  for (size_t i = 0; i < 90; ++i) {
    dirty.insert(x.size());
    x.push_back("a" + std::to_string(i % 3));
    y.push_back("b" + std::to_string(i % 3));
  }
  TableBuilder builder;
  builder.AddCategorical("x", x);
  builder.AddCategorical("y", y);
  Table table = std::move(builder).Build().value();
  ApproximateSc asc{ParseConstraint("x _||_ y").value(), 0.05};
  ASSERT_TRUE(DetectViolation(table, asc).value().violated);

  // Kᶜ returns a *mutually correlated* subset (Sec. 5.2): within the
  // returned records the X -> Y mapping must be functional (each x category
  // pairs with exactly one y), and here the over-represented mapping is the
  // planted diagonal a_i -> b_i.
  DrillDownResult kc = DrillDown(table, asc, 90).value();
  std::map<std::string, std::set<std::string>> mapping;
  size_t on_diagonal = 0;
  for (size_t row : kc.rows) {
    const std::string& xv = table.column(0).CategoryAt(row);
    const std::string& yv = table.column(1).CategoryAt(row);
    mapping[xv].insert(yv);
    on_diagonal += (xv.back() == yv.back()) ? 1 : 0;
  }
  for (const auto& [xv, ys] : mapping) {
    EXPECT_EQ(ys.size(), 1u) << "x=" << xv << " maps to multiple y values";
  }
  EXPECT_EQ(on_diagonal, kc.rows.size());

  // The K strategy removes records that most reduce the dependence; they
  // must come (almost) exclusively from the over-represented diagonal.
  DrillDownResult k = DrillDown(table, asc, 90, {Strategy::kDirect, {}}).value();
  size_t removed_diagonal = 0;
  for (size_t row : k.rows) {
    const std::string& xv = table.column(0).CategoryAt(row);
    const std::string& yv = table.column(1).CategoryAt(row);
    removed_diagonal += (xv.back() == yv.back()) ? 1 : 0;
  }
  EXPECT_GE(removed_diagonal, 70u);
  EXPECT_LT(k.final_statistic, k.initial_statistic);
}

TEST(DrillDownTest, ConditionalConstraintDrillsWithinStrata) {
  // Two strata; dependence planted only inside stratum "s1".
  Rng rng(5);
  std::vector<double> x;
  std::vector<double> y;
  std::vector<std::string> z;
  std::set<size_t> dirty;
  for (size_t i = 0; i < 150; ++i) {
    x.push_back(rng.Normal());
    y.push_back(rng.Normal());
    z.push_back(i % 2 == 0 ? "s0" : "s1");
  }
  for (size_t i = 0; i < 25; ++i) {
    double v = 4.0 + 0.1 * static_cast<double>(i);
    dirty.insert(x.size());
    x.push_back(v);
    y.push_back(2.0 * v);
    z.push_back("s1");
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  builder.AddCategorical("z", z);
  Table table = std::move(builder).Build().value();
  ApproximateSc asc{ParseConstraint("x _||_ y | z").value(), 0.05};
  DrillDownResult result = DrillDown(table, asc, 25).value();
  size_t hits = 0;
  for (size_t row : result.rows) {
    hits += dirty.count(row);
  }
  EXPECT_GE(hits, 20u);
}

TEST(DrillDownTest, KLargerThanDataReturnsEverything) {
  auto [table, dirty] = PlantedCorrelationTable(20, 5, 6);
  ApproximateSc asc{ParseConstraint("x _||_ y").value(), 0.05};
  DrillDownResult result = DrillDown(table, asc, 1000).value();
  EXPECT_EQ(result.rows.size(), 25u);
}

TEST(RankingTest, DirectRankingPrefixesMatchDrillDown) {
  auto [table, dirty] = PlantedCorrelationTable(100, 20, 7);
  ApproximateSc asc{ParseConstraint("x _||_ y").value(), 0.05};
  DrillDownOptions options;
  options.strategy = Strategy::kDirect;
  std::vector<size_t> ranking = RankSuspiciousRecords(table, asc, 120, options).value();
  DrillDownResult top10 = DrillDown(table, asc, 10, options).value();
  ASSERT_GE(ranking.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(ranking[i], top10.rows[i]);
  }
}

TEST(RankingTest, ComplementRankingPrefixesMatchDrillDown) {
  auto [table, dirty] = PlantedCorrelationTable(100, 20, 8);
  ApproximateSc asc{ParseConstraint("x _||_ y").value(), 0.05};
  DrillDownOptions options;
  options.strategy = Strategy::kComplement;
  std::vector<size_t> ranking = RankSuspiciousRecords(table, asc, 120, options).value();
  DrillDownResult top10 = DrillDown(table, asc, 10, options).value();
  ASSERT_GE(ranking.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(ranking[i], top10.rows[i]);
  }
}

TEST(RankingTest, RankingHasNoDuplicates) {
  auto [table, dirty] = PlantedCorrelationTable(80, 10, 9);
  ApproximateSc asc{ParseConstraint("x _||_ y").value(), 0.05};
  std::vector<size_t> ranking = RankSuspiciousRecords(table, asc, 90).value();
  std::set<size_t> unique(ranking.begin(), ranking.end());
  EXPECT_EQ(unique.size(), ranking.size());
}

TEST(PartitionTest, RestoresIndependenceConstraint) {
  auto [table, dirty] = PlantedCorrelationTable(200, 30, 10);
  ApproximateSc asc{ParseConstraint("x _||_ y").value(), 0.05};
  PartitionResult result = PartitionDataset(table, asc).value();
  EXPECT_TRUE(result.satisfied);
  EXPECT_LT(result.initial_p, 0.05);
  EXPECT_GE(result.final_p, 0.05);
  EXPECT_LE(result.removed_rows.size(), 60u);  // near-minimal, not half the data
  // Verify against the real test: removing ΔD restores the constraint.
  Table cleaned = table.WithoutRows(result.removed_rows);
  EXPECT_FALSE(DetectViolation(cleaned, asc).value().violated);
}

TEST(PartitionTest, AlreadySatisfiedRemovesNothing) {
  Rng rng(11);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(rng.Normal());
    y.push_back(rng.Normal());
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  Table table = std::move(builder).Build().value();
  ApproximateSc asc{ParseConstraint("x _||_ y").value(), 0.05};
  PartitionResult result = PartitionDataset(table, asc).value();
  EXPECT_TRUE(result.satisfied);
  EXPECT_TRUE(result.removed_rows.empty());
}

TEST(PartitionTest, BudgetLimitsRemovals) {
  auto [table, dirty] = PlantedCorrelationTable(50, 50, 12);
  ApproximateSc asc{ParseConstraint("x _||_ y").value(), 0.05};
  PartitionOptions options;
  options.max_removal_fraction = 0.05;
  PartitionResult result = PartitionDataset(table, asc, options).value();
  EXPECT_LE(result.removed_rows.size(), 5u);
}

TEST(PartitionTest, SetValuedConstraintUnimplemented) {
  auto [table, dirty] = PlantedCorrelationTable(20, 5, 13);
  StatisticalConstraint sc = Independence({"x"}, {"y"});
  sc.y.push_back("x2");  // fake second variable: binding will fail anyway
  ApproximateSc asc{sc, 0.05};
  EXPECT_FALSE(PartitionDataset(table, asc).ok());
}

// The greedy K strategy vs the exhaustive optimum (Definition 7/8) on
// instances small enough to enumerate: the greedy objective value must be
// close to optimal (and often exactly optimal).
class GreedyVsBruteForceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GreedyVsBruteForceTest, GreedyNearOptimalOnTinyInstances) {
  Rng rng(GetParam());
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 14; ++i) {
    double v = rng.Normal();
    x.push_back(v);
    y.push_back(rng.Bernoulli(0.5) ? v + rng.Normal(0.0, 0.3) : rng.Normal());
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  Table table = std::move(builder).Build().value();
  ApproximateSc asc{ParseConstraint("x _||_ y").value(), 0.05};
  const size_t k = 3;

  DrillDownOptions options;
  options.strategy = Strategy::kDirect;
  DrillDownResult greedy = DrillDown(table, asc, k, options).value();
  DrillDownResult optimal = internal::BruteForceTopK(table, asc, k).value();
  // Compare on a common scale: the |z| statistic of the data remaining
  // after each removal set (the engine itself reports raw |S|).
  Table after_greedy = table.WithoutRows(greedy.rows);
  double greedy_stat = IndependenceTest(after_greedy, 0, 1, {}).value().statistic;
  // ISC: both minimise the remaining dependence statistic. The greedy may
  // be suboptimal, but must be within a modest additive slack of optimal
  // (statistics here are |z| values, typically 0-4).
  EXPECT_GE(greedy_stat + 1e-9, optimal.final_statistic);
  EXPECT_LE(greedy_stat, optimal.final_statistic + 0.75);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyVsBruteForceTest,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

TEST(BruteForceTopKTest, RejectsOversizedEnumerations) {
  Rng rng(1);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(rng.Normal());
    y.push_back(rng.Normal());
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  Table table = std::move(builder).Build().value();
  ApproximateSc asc{ParseConstraint("x _||_ y").value(), 0.05};
  EXPECT_FALSE(internal::BruteForceTopK(table, asc, 50).ok());
}

TEST(Theorem1Test, TopKViaPartitionOracleMatchesGreedyPrefix) {
  // The other direction of the Theorem 1 reduction: the partition oracle,
  // driven by a binary search over alpha, reproduces the greedy top-k set.
  auto [table, dirty] = PlantedCorrelationTable(150, 25, 77);
  StatisticalConstraint sc = Independence({"x"}, {"y"});
  for (size_t k : {5u, 15u, 25u}) {
    DrillDownResult via_oracle = TopKViaPartitionOracle(table, {sc, 0.05}, k).value();
    DrillDownOptions options;
    options.strategy = Strategy::kDirect;
    DrillDownResult direct = DrillDown(table, {sc, 0.05}, k, options).value();
    EXPECT_EQ(via_oracle.rows, direct.rows) << "k=" << k;
  }
}

TEST(Theorem1Test, OraclePropagatesCallerAlphaAndOptionsIntoFallback) {
  // Regression: the greedy fallback used to run with a hardcoded
  // ApproximateSc{sc, 0.05}, ignoring the caller's significance level and
  // PartitionOptions. The reduction must hold at any alpha.
  auto [table, dirty] = PlantedCorrelationTable(150, 25, 79);
  StatisticalConstraint sc = Independence({"x"}, {"y"});
  for (double alpha : {0.01, 0.3}) {
    for (size_t k : {5u, 20u}) {
      DrillDownResult via_oracle = TopKViaPartitionOracle(table, {sc, alpha}, k).value();
      DrillDownOptions options;
      options.strategy = Strategy::kDirect;
      DrillDownResult direct = DrillDown(table, {sc, alpha}, k, options).value();
      EXPECT_EQ(via_oracle.rows, direct.rows) << "alpha=" << alpha << " k=" << k;
    }
  }
}

TEST(Theorem1Test, OracleRejectsDependenceScAndOversizedK) {
  auto [table, dirty] = PlantedCorrelationTable(30, 5, 78);
  EXPECT_FALSE(TopKViaPartitionOracle(table, {Dependence({"x"}, {"y"}), 0.05}, 3).ok());
  EXPECT_FALSE(TopKViaPartitionOracle(table, {Independence({"x"}, {"y"}), 0.05}, 999).ok());
}

TEST(ScodedFacadeTest, DrillDownAndRankDelegate) {
  auto [table, dirty] = PlantedCorrelationTable(100, 20, 14);
  Scoded system(std::move(table));
  ApproximateSc asc{ParseConstraint("x _||_ y").value(), 0.05};
  DrillDownResult dd = system.DrillDown(asc, 20).value();
  EXPECT_EQ(dd.rows.size(), 20u);
  std::vector<size_t> ranking = system.RankRecords(asc, 50).value();
  EXPECT_EQ(ranking.size(), 50u);
  PartitionResult part = system.Partition(asc).value();
  EXPECT_TRUE(part.satisfied);
}

}  // namespace
}  // namespace scoded
