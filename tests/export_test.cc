// Tests for the live-telemetry layer: the Prometheus text renderer (pinned
// by a committed golden file), the time-series sampler and its ring
// buffers, the embedded /metrics HTTP endpoint, and the common/net socket
// helper they are built on. The obs-disabled build compiles a reduced
// suite asserting the stubs fail loudly.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/status.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

#if !defined(SCODED_OBS_DISABLED)
#include "common/fileio.h"
#include "common/net.h"
#endif

namespace scoded {
namespace {

#if defined(SCODED_OBS_DISABLED)

// ------------------------------------------------- compiled-out behaviour
//
// The stubs must fail loudly: a --metrics-port user on an obs-disabled
// build gets an Unimplemented error, never a silently dead endpoint.

TEST(ExportDisabledTest, ServerStartReportsUnimplemented) {
  Status status = obs::MetricsServer::Global().Start(0);
  EXPECT_EQ(status.code(), StatusCode::kUnimplemented);
  EXPECT_FALSE(obs::MetricsServer::Global().running());
  EXPECT_EQ(obs::MetricsServer::Global().port(), 0);
  obs::MetricsServer::Global().Stop();  // no-op, must not crash
}

TEST(ExportDisabledTest, SamplerStartReportsUnimplemented) {
  Status status = obs::Sampler::Global().Start();
  EXPECT_EQ(status.code(), StatusCode::kUnimplemented);
  EXPECT_FALSE(obs::Sampler::Global().running());
  obs::Sampler::Global().SampleOnce();  // no-op
  obs::Sampler::Global().Stop();        // no-op
  EXPECT_EQ(obs::Sampler::Global().TimeSeriesJson(), "{\"series\":[]}");
}

#else  // !SCODED_OBS_DISABLED

// ------------------------------------------------------------- rendering

// A deterministic registry exercising every rendering rule: dot-to-
// underscore sanitisation, the counter `_total` suffix, integral vs
// fractional gauge formatting, and log2 histogram buckets (zeros in
// bucket 0, value v in bucket bit_width(v) with inclusive bound 2^b - 1).
obs::MetricsSnapshot GoldenSnapshot() {
  obs::Metrics metrics;
  metrics.FindOrCreateCounter("core.shards_read")->Add(42);
  metrics.FindOrCreateCounter("stats.tests_executed")->Add(7);
  metrics.FindOrCreateGauge("progress.current_min_p")->Set(0.03125);
  metrics.FindOrCreateGauge("progress.rows_ingested")->Set(123456);
  metrics.FindOrCreateGauge("test.negative-rate")->Set(-2.5);
  obs::Histogram* histogram = metrics.FindOrCreateHistogram("core.shard_rows_us");
  histogram->Observe(0);
  histogram->Observe(1);
  histogram->Observe(1);
  histogram->Observe(3);
  histogram->Observe(100);
  histogram->Observe(1000000);
  return metrics.Snapshot();
}

TEST(PrometheusRenderTest, MatchesGoldenFile) {
  std::string rendered = obs::RenderPrometheusText(GoldenSnapshot());
  if (std::getenv("SCODED_REGEN_GOLDEN") != nullptr) {
    ASSERT_TRUE(WriteTextFile(SCODED_EXPORT_GOLDEN, rendered).ok());
    GTEST_SKIP() << "regenerated " << SCODED_EXPORT_GOLDEN;
  }
  Result<std::string> golden = ReadTextFile(SCODED_EXPORT_GOLDEN);
  ASSERT_TRUE(golden.ok()) << golden.status().message()
                           << " (rerun with SCODED_REGEN_GOLDEN=1 to create)";
  EXPECT_EQ(rendered, *golden)
      << "Prometheus exposition drifted from the committed golden; if the "
         "change is intentional rerun with SCODED_REGEN_GOLDEN=1 and commit.";
}

TEST(PrometheusRenderTest, CounterNamesSanitisedAndSuffixed) {
  obs::Metrics metrics;
  metrics.FindOrCreateCounter("stats.tests_executed")->Add(3);
  std::string text = obs::RenderPrometheusText(metrics.Snapshot());
  EXPECT_NE(text.find("# HELP scoded_stats_tests_executed_total "
                      "SCODED metric stats.tests_executed\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE scoded_stats_tests_executed_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("scoded_stats_tests_executed_total 3\n"), std::string::npos);
}

TEST(PrometheusRenderTest, HistogramBucketsAreCumulativeLog2) {
  obs::Metrics metrics;
  obs::Histogram* histogram = metrics.FindOrCreateHistogram("test.hist");
  histogram->Observe(0);   // bucket 0 (le 0)
  histogram->Observe(1);   // bucket 1 (le 1)
  histogram->Observe(3);   // bucket 2 (le 3)
  histogram->Observe(3);   // bucket 2 again
  histogram->Observe(100); // bucket 7 (le 127)
  std::string text = obs::RenderPrometheusText(metrics.Snapshot());
  // Cumulative counts: 1 at le=0, 2 at le=1, 4 at le=3, empty buckets
  // rendered too (cumulative stays flat), 5 at le=127, then +Inf.
  EXPECT_NE(text.find("scoded_test_hist_bucket{le=\"0\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("scoded_test_hist_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("scoded_test_hist_bucket{le=\"3\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("scoded_test_hist_bucket{le=\"7\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("scoded_test_hist_bucket{le=\"127\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("scoded_test_hist_bucket{le=\"+Inf\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("scoded_test_hist_sum 107\n"), std::string::npos);
  EXPECT_NE(text.find("scoded_test_hist_count 5\n"), std::string::npos);
  // Buckets past the highest occupied one are elided.
  EXPECT_EQ(text.find("le=\"255\""), std::string::npos);
}

TEST(PrometheusRenderTest, FractionalGaugeRoundTrips) {
  obs::Metrics metrics;
  metrics.FindOrCreateGauge("test.g")->Set(0.1);
  std::string text = obs::RenderPrometheusText(metrics.Snapshot());
  // Anchor past the HELP/TYPE lines to the sample line itself.
  size_t pos = text.find("\nscoded_test_g ");
  ASSERT_NE(pos, std::string::npos);
  double parsed = std::strtod(text.c_str() + pos + std::string("\nscoded_test_g ").size(),
                              nullptr);
  EXPECT_EQ(parsed, 0.1);  // %.17g round-trips exactly
}

// ------------------------------------------------------------ ring buffer

TEST(RingSeriesTest, WrapsOverwritingOldest) {
  obs::RingSeries ring(3);
  for (int i = 0; i < 5; ++i) {
    ring.Push(i, static_cast<double>(i * 10));
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.capacity(), 3u);
  std::vector<obs::TimePoint> points = ring.Points();
  ASSERT_EQ(points.size(), 3u);
  // Oldest-first window over the last three pushes: t = 2, 3, 4.
  EXPECT_EQ(points[0].t_us, 2);
  EXPECT_EQ(points[1].t_us, 3);
  EXPECT_EQ(points[2].t_us, 4);
  EXPECT_EQ(points[2].value, 40.0);
}

TEST(RingSeriesTest, PartiallyFilledKeepsInsertionOrder) {
  obs::RingSeries ring(8);
  ring.Push(1, 1.0);
  ring.Push(2, 2.0);
  std::vector<obs::TimePoint> points = ring.Points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].t_us, 1);
  EXPECT_EQ(points[1].t_us, 2);
}

// --------------------------------------------------------------- sampler

// Object member access with a loud failure instead of a silent default.
const JsonValue& Member(const JsonValue& value, std::string_view key) {
  static const JsonValue kNull;
  const JsonValue* found = value.Find(key);
  EXPECT_NE(found, nullptr) << "missing JSON member: " << key;
  return found == nullptr ? kNull : *found;
}

TEST(SamplerTest, SampleOncePopulatesProcessAndRegistrySeries) {
  obs::Metrics::Global().FindOrCreateCounter("test.sampler_counter")->Add(5);
  obs::Sampler::Global().Clear();
  obs::Sampler::Global().SampleOnce();
  std::string json = obs::Sampler::Global().TimeSeriesJson();
  Result<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message() << "\n" << json;
  const JsonValue& series = Member(*parsed, "series");
  bool saw_rss = false;
  bool saw_counter = false;
  for (const JsonValue& entry : series.array) {
    const std::string& name = Member(entry, "name").string_value;
    if (name == "process.rss_kb") {
      saw_rss = true;
      const JsonValue& points = Member(entry, "points");
      ASSERT_FALSE(points.array.empty());
      // [t_ms, value]; a live process has a positive RSS.
      EXPECT_GT(points.array.back().array.at(1).number, 0.0);
      EXPECT_EQ(Member(entry, "kind").string_value, "gauge");
    }
    if (name == "test.sampler_counter") {
      saw_counter = true;
      EXPECT_EQ(Member(entry, "kind").string_value, "counter");
      const JsonValue& points = Member(entry, "points");
      ASSERT_FALSE(points.array.empty());
      EXPECT_GE(points.array.back().array.at(1).number, 5.0);
    }
  }
  EXPECT_TRUE(saw_rss);
  EXPECT_TRUE(saw_counter);
}

TEST(SamplerTest, StartStopCollectsTicks) {
  obs::Sampler::Global().Clear();
  obs::SamplerOptions options;
  options.interval_ms = 5;
  options.capacity = 16;
  ASSERT_TRUE(obs::Sampler::Global().Start(options).ok());
  EXPECT_TRUE(obs::Sampler::Global().running());
  // Double Start while running is idempotent, not an error.
  EXPECT_TRUE(obs::Sampler::Global().Start(options).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  obs::Sampler::Global().Stop();
  EXPECT_FALSE(obs::Sampler::Global().running());
  Result<JsonValue> parsed = ParseJson(obs::Sampler::Global().TimeSeriesJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(Member(*parsed, "interval_ms").number, 5.0);
  EXPECT_EQ(Member(*parsed, "capacity").number, 16.0);
  const JsonValue& series = Member(*parsed, "series");
  ASSERT_FALSE(series.array.empty());
  // Multiple ticks happened, capacity bounds the window.
  for (const JsonValue& entry : series.array) {
    size_t n = Member(entry, "points").array.size();
    EXPECT_GE(n, 2u);
    EXPECT_LE(n, 16u);
  }
  // Stop is idempotent; a stopped sampler keeps its history.
  obs::Sampler::Global().Stop();
}

TEST(SamplerTest, ConcurrentWritersDoNotDisturbSampling) {
  // Hammer counters and a histogram from several threads while the
  // sampler snapshots at its fastest cadence; the total must stay exact
  // and the sampler's final tick must observe it. (The TSan CI leg runs
  // this test too, which is the real point.)
  obs::Metrics::Global().FindOrCreateCounter("test.hammer")->Reset();
  obs::Sampler::Global().Clear();
  obs::SamplerOptions options;
  options.interval_ms = 1;
  ASSERT_TRUE(obs::Sampler::Global().Start(options).ok());
  constexpr int kThreads = 4;
  constexpr int kIncrements = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      obs::Counter* counter = obs::Metrics::Global().FindOrCreateCounter("test.hammer");
      obs::Histogram* histogram =
          obs::Metrics::Global().FindOrCreateHistogram("test.hammer_us");
      for (int i = 0; i < kIncrements; ++i) {
        counter->Add();
        histogram->Observe(i);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  obs::Sampler::Global().SampleOnce();  // deterministic final tick
  obs::Sampler::Global().Stop();
  EXPECT_EQ(obs::Metrics::Global().FindOrCreateCounter("test.hammer")->Value(),
            int64_t{kThreads} * kIncrements);
  Result<JsonValue> parsed = ParseJson(obs::Sampler::Global().TimeSeriesJson());
  ASSERT_TRUE(parsed.ok());
  bool saw_final = false;
  for (const JsonValue& entry : Member(*parsed, "series").array) {
    if (Member(entry, "name").string_value == "test.hammer") {
      const JsonValue& points = Member(entry, "points");
      ASSERT_FALSE(points.array.empty());
      EXPECT_EQ(points.array.back().array.at(1).number,
                static_cast<double>(int64_t{kThreads} * kIncrements));
      saw_final = true;
    }
  }
  EXPECT_TRUE(saw_final);
}

TEST(SamplerTest, UpdateProcessGaugesPublishesRss) {
  obs::UpdateProcessGauges();
  obs::MetricsSnapshot snapshot = obs::Metrics::Global().Snapshot();
  double rss = 0.0;
  double uptime = -1.0;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name == "process.rss_kb") {
      rss = value;
    }
    if (name == "process.uptime_seconds") {
      uptime = value;
    }
  }
  EXPECT_GT(rss, 0.0);
  EXPECT_GE(uptime, 0.0);
}

// ------------------------------------------------------------- net helper

TEST(NetTest, BindDialRoundTrip) {
  Result<net::TcpListener> listener = net::TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok()) << listener.status().message();
  EXPECT_GT(listener->port(), 0);
  std::thread server([&listener] {
    Result<net::TcpConn> conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    Result<std::string> got = conn->ReadUntil("\n", 128);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(conn->WriteAll("pong:" + *got).ok());
  });
  Result<net::TcpConn> client = net::DialLoopback(listener->port());
  ASSERT_TRUE(client.ok()) << client.status().message();
  ASSERT_TRUE(client->WriteAll("ping\n").ok());
  client->ShutdownWrite();
  Result<std::string> reply = client->ReadAll(128);
  server.join();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "pong:ping\n");
}

TEST(NetTest, DialRefusedPortFails) {
  // Bind then close to get a port that is (momentarily) guaranteed free.
  Result<net::TcpListener> listener = net::TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  uint16_t port = listener->port();
  listener->Close();
  Result<net::TcpConn> conn = net::DialLoopback(port);
  EXPECT_FALSE(conn.ok());
}

TEST(NetTest, BusyPortReportsError) {
  Result<net::TcpListener> first = net::TcpListener::Bind(0);
  ASSERT_TRUE(first.ok());
  Result<net::TcpListener> second = net::TcpListener::Bind(first->port());
  EXPECT_FALSE(second.ok());
  EXPECT_NE(second.status().message().find(std::to_string(first->port())),
            std::string::npos);
}

// --------------------------------------------------------- HTTP endpoint

std::string HttpGet(uint16_t port, const std::string& request) {
  Result<net::TcpConn> conn = net::DialLoopback(port);
  EXPECT_TRUE(conn.ok());
  if (!conn.ok()) {
    return std::string();
  }
  EXPECT_TRUE(conn->WriteAll(request).ok());
  Result<std::string> response = conn->ReadAll(1 << 20);
  EXPECT_TRUE(response.ok());
  return response.ok() ? *response : std::string();
}

std::string Body(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

TEST(MetricsServerTest, ServesMetricsHealthzAndTimeseries) {
  obs::Metrics::Global().FindOrCreateCounter("test.server_counter")->Add(9);
  ASSERT_TRUE(obs::MetricsServer::Global().Start(0).ok());
  EXPECT_TRUE(obs::MetricsServer::Global().running());
  uint16_t port = obs::MetricsServer::Global().port();
  ASSERT_GT(port, 0);

  std::string metrics =
      HttpGet(port, "GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("scoded_test_server_counter_total"), std::string::npos);
  // The endpoint refreshes process gauges on every scrape.
  EXPECT_NE(metrics.find("scoded_process_rss_kb"), std::string::npos);

  std::string healthz = HttpGet(port, "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(healthz.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_EQ(Body(healthz), "ok\n");

  // Query strings are ignored in routing.
  std::string with_query = HttpGet(port, "GET /healthz?probe=1 HTTP/1.0\r\n\r\n");
  EXPECT_NE(with_query.find("200 OK"), std::string::npos);

  std::string timeseries = HttpGet(port, "GET /timeseries HTTP/1.0\r\n\r\n");
  EXPECT_NE(timeseries.find("application/json"), std::string::npos);
  Result<JsonValue> parsed = ParseJson(Body(timeseries));
  EXPECT_TRUE(parsed.ok()) << Body(timeseries);

  std::string missing = HttpGet(port, "GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_NE(missing.find("HTTP/1.0 404 Not Found"), std::string::npos);

  std::string post = HttpGet(port, "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.0 405 Method Not Allowed"), std::string::npos);

  // Second Start while running fails with the bound port in the message.
  Status again = obs::MetricsServer::Global().Start(0);
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);

  obs::MetricsServer::Global().Stop();
  EXPECT_FALSE(obs::MetricsServer::Global().running());
  obs::MetricsServer::Global().Stop();  // idempotent

  // The server restarts cleanly after a Stop.
  ASSERT_TRUE(obs::MetricsServer::Global().Start(0).ok());
  uint16_t port2 = obs::MetricsServer::Global().port();
  std::string healthz2 = HttpGet(port2, "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(healthz2.find("200 OK"), std::string::npos);
  obs::MetricsServer::Global().Stop();
}

TEST(MetricsServerTest, ConcurrentScrapesWhileCountersMove) {
  ASSERT_TRUE(obs::MetricsServer::Global().Start(0).ok());
  uint16_t port = obs::MetricsServer::Global().port();
  std::atomic<bool> done{false};
  std::thread writer([&done] {
    obs::Counter* counter = obs::Metrics::Global().FindOrCreateCounter("test.scrape_race");
    while (!done.load(std::memory_order_relaxed)) {
      counter->Add();
    }
  });
  for (int i = 0; i < 20; ++i) {
    std::string response = HttpGet(port, "GET /metrics HTTP/1.0\r\n\r\n");
    EXPECT_NE(response.find("200 OK"), std::string::npos);
  }
  done.store(true, std::memory_order_relaxed);
  writer.join();
  obs::MetricsServer::Global().Stop();
}

// ------------------------------------------------------- gauge monotones

TEST(GaugeTest, MaxWithNeverLowers) {
  obs::Metrics metrics;
  obs::Gauge* gauge = metrics.FindOrCreateGauge("test.max");
  gauge->MaxWith(5.0);
  EXPECT_EQ(gauge->Value(), 5.0);
  gauge->MaxWith(3.0);
  EXPECT_EQ(gauge->Value(), 5.0);
  gauge->MaxWith(7.5);
  EXPECT_EQ(gauge->Value(), 7.5);
}

TEST(GaugeTest, MinWithNeverRaises) {
  obs::Metrics metrics;
  obs::Gauge* gauge = metrics.FindOrCreateGauge("test.min");
  gauge->Set(1.0);
  gauge->MinWith(0.25);
  EXPECT_EQ(gauge->Value(), 0.25);
  gauge->MinWith(0.5);
  EXPECT_EQ(gauge->Value(), 0.25);
}

TEST(GaugeTest, ConcurrentMaxWithIsMonotone) {
  obs::Metrics metrics;
  obs::Gauge* gauge = metrics.FindOrCreateGauge("test.race_max");
  constexpr int kThreads = 8;
  constexpr int kSteps = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([gauge, t] {
      for (int i = 0; i < kSteps; ++i) {
        gauge->MaxWith(static_cast<double>(t * kSteps + i));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(gauge->Value(), static_cast<double>((kThreads - 1) * kSteps + kSteps - 1));
}

#endif  // SCODED_OBS_DISABLED

}  // namespace
}  // namespace scoded
