#include <cerrno>

#include <algorithm>
#include <cstdint>
#include <set>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace scoded {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, ErrnoMessageMatchesKnownErrnos) {
  // The exact wording is libc's business; non-empty and distinct per errno
  // is what callers rely on when stitching messages together.
  std::string enoent = ErrnoMessage(ENOENT);
  std::string eacces = ErrnoMessage(EACCES);
  EXPECT_FALSE(enoent.empty());
  EXPECT_FALSE(eacces.empty());
  EXPECT_NE(enoent, eacces);
  EXPECT_EQ(enoent, "No such file or directory");
  // Bogus errno values still come back as printable text.
  EXPECT_FALSE(ErrnoMessage(999999).empty());
}

TEST(StatusTest, OkCodeDropsMessage) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFoundError("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusWithoutValueBecomesInternalError) {
  Result<int> r{Status()};
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Doubled(Result<int> input) {
  SCODED_ASSIGN_OR_RETURN(int v, input);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_EQ(Doubled(NotFoundError("nope")).status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, CategoricalRespectsZeroWeights) {
  Rng rng(7);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.Categorical(weights), 1u);
  }
}

TEST(RngTest, CategoricalRoughlyProportional) {
  Rng rng(42);
  std::vector<double> weights = {1.0, 3.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  double ratio = static_cast<double>(counts[1]) / counts[0];
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 3.6);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(9);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t s : sample) {
    EXPECT_LT(s, 100u);
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(5);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"one"}, ","), "one");
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble(" -2e3 ").value(), -2000.0);
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("1.5x").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
}

TEST(StringUtilTest, ParseInt) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt(" -17 ").value(), -17);
  EXPECT_FALSE(ParseInt("3.5").has_value());
  EXPECT_FALSE(ParseInt("").has_value());
}

TEST(StringUtilTest, ParseCheckedIntAcceptsInRangeIntegers) {
  EXPECT_EQ(ParseCheckedInt("42", 0, 100, "--k").value(), 42);
  EXPECT_EQ(ParseCheckedInt(" -17 ", -100, 0, "--k").value(), -17);
  EXPECT_EQ(ParseCheckedInt("0", 0, 0, "--k").value(), 0);
  EXPECT_EQ(ParseCheckedInt("9223372036854775807", INT64_MIN, INT64_MAX, "cell").value(),
            INT64_MAX);
  EXPECT_EQ(ParseCheckedInt("-9223372036854775808", INT64_MIN, INT64_MAX, "cell").value(),
            INT64_MIN);
}

TEST(StringUtilTest, ParseCheckedIntRejectsJunkAndOverflow) {
  for (const char* bad : {"", "   ", "3.5", "42x", "x42", "4 2", "0x10",
                          "9223372036854775808", "--", "nope"}) {
    Result<int64_t> parsed = ParseCheckedInt(bad, INT64_MIN, INT64_MAX, "--flag");
    EXPECT_FALSE(parsed.ok()) << "input: '" << bad << "'";
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(StringUtilTest, ParseCheckedIntEnforcesTheRangeAndNamesTheSetting) {
  Result<int64_t> high = ParseCheckedInt("70000", 0, 65535, "--port");
  ASSERT_FALSE(high.ok());
  EXPECT_NE(high.status().message().find("--port"), std::string::npos)
      << high.status().message();
  EXPECT_NE(high.status().message().find("65535"), std::string::npos)
      << high.status().message();
  Result<int64_t> low = ParseCheckedInt("-1", 0, 65535, "SCODED_SHARD_ROWS");
  ASSERT_FALSE(low.ok());
  EXPECT_NE(low.status().message().find("SCODED_SHARD_ROWS"), std::string::npos);
}

TEST(StringUtilTest, StartsWithAndToLower) {
  EXPECT_TRUE(StartsWith("hello world", "hello"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
}

}  // namespace
}  // namespace scoded
