#include "constraints/sc.h"

#include <gtest/gtest.h>

#include "table/table.h"

namespace scoded {
namespace {

TEST(ParseConstraintTest, SimpleIndependence) {
  StatisticalConstraint sc = ParseConstraint("Model _||_ Color").value();
  EXPECT_EQ(sc.kind, ScKind::kIndependence);
  EXPECT_EQ(sc.x, (std::vector<std::string>{"Model"}));
  EXPECT_EQ(sc.y, (std::vector<std::string>{"Color"}));
  EXPECT_TRUE(sc.z.empty());
}

TEST(ParseConstraintTest, Dependence) {
  StatisticalConstraint sc = ParseConstraint("Model !_||_ Price").value();
  EXPECT_EQ(sc.kind, ScKind::kDependence);
}

TEST(ParseConstraintTest, Conditional) {
  StatisticalConstraint sc = ParseConstraint("Color _||_ Price | Model").value();
  EXPECT_EQ(sc.z, (std::vector<std::string>{"Model"}));
}

TEST(ParseConstraintTest, SetsOfVariables) {
  StatisticalConstraint sc = ParseConstraint("A, B _||_ C, D | E, F").value();
  EXPECT_EQ(sc.x, (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(sc.y, (std::vector<std::string>{"C", "D"}));
  EXPECT_EQ(sc.z, (std::vector<std::string>{"E", "F"}));
}

TEST(ParseConstraintTest, RoundTripThroughToString) {
  for (const char* text :
       {"A _||_ B", "A !_||_ B", "A, B _||_ C | D", "Wind !_||_ Weather | Year"}) {
    StatisticalConstraint sc = ParseConstraint(text).value();
    StatisticalConstraint again = ParseConstraint(sc.ToString()).value();
    EXPECT_EQ(sc, again) << text;
  }
}

TEST(ParseConstraintTest, Errors) {
  EXPECT_FALSE(ParseConstraint("A B").ok());                // no operator
  EXPECT_FALSE(ParseConstraint("_||_ B").ok());             // empty X
  EXPECT_FALSE(ParseConstraint("A _||_ ").ok());            // empty Y
  EXPECT_FALSE(ParseConstraint("A _||_ B | ").ok());        // empty Z after '|'
  EXPECT_FALSE(ParseConstraint("A _||_ A").ok());           // overlap
  EXPECT_FALSE(ParseConstraint("A _||_ B | A").ok());       // overlap with Z
  EXPECT_FALSE(ParseConstraint("A,, B _||_ C").ok());       // empty var name
}

TEST(NegatedTest, FlipsKind) {
  StatisticalConstraint sc = ParseConstraint("A _||_ B").value();
  EXPECT_EQ(sc.Negated().kind, ScKind::kDependence);
  EXPECT_EQ(sc.Negated().Negated(), sc);
}

TEST(BindConstraintTest, ResolvesNames) {
  TableBuilder builder;
  builder.AddCategorical("Model", {"a"});
  builder.AddCategorical("Color", {"w"});
  builder.AddNumeric("Price", {1.0});
  Table t = std::move(builder).Build().value();
  BoundConstraint bound =
      BindConstraint(ParseConstraint("Color _||_ Price | Model").value(), t).value();
  EXPECT_EQ(bound.x, (std::vector<int>{1}));
  EXPECT_EQ(bound.y, (std::vector<int>{2}));
  EXPECT_EQ(bound.z, (std::vector<int>{0}));
}

TEST(BindConstraintTest, UnknownColumnFails) {
  TableBuilder builder;
  builder.AddNumeric("a", {1.0});
  builder.AddNumeric("b", {1.0});
  Table t = std::move(builder).Build().value();
  Result<BoundConstraint> r = BindConstraint(ParseConstraint("a _||_ missing").value(), t);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(DecomposeTest, SingletonIsUnchanged) {
  StatisticalConstraint sc = ParseConstraint("A _||_ B | C").value();
  std::vector<StatisticalConstraint> parts = DecomposeToSingletons(sc);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], sc);
}

TEST(DecomposeTest, SetYSplitsWithAugmentedConditioning) {
  // X ⊥ Y1 Y2 | Z  =>  (X ⊥ Y1 | Z Y2) & (X ⊥ Y2 | Z Y1).
  StatisticalConstraint sc = ParseConstraint("X _||_ Y1, Y2 | Z").value();
  std::vector<StatisticalConstraint> parts = DecomposeToSingletons(sc);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].y, (std::vector<std::string>{"Y1"}));
  EXPECT_EQ(parts[0].z, (std::vector<std::string>{"Z", "Y2"}));
  EXPECT_EQ(parts[1].y, (std::vector<std::string>{"Y2"}));
  EXPECT_EQ(parts[1].z, (std::vector<std::string>{"Z", "Y1"}));
}

TEST(DecomposeTest, SetXAndYProducesCrossProduct) {
  StatisticalConstraint sc = ParseConstraint("A, B _||_ C, D").value();
  std::vector<StatisticalConstraint> parts = DecomposeToSingletons(sc);
  EXPECT_EQ(parts.size(), 4u);
  for (const StatisticalConstraint& part : parts) {
    EXPECT_EQ(part.x.size(), 1u);
    EXPECT_EQ(part.y.size(), 1u);
    EXPECT_EQ(part.z.size(), 2u);  // the two left-out variables
    EXPECT_EQ(part.kind, sc.kind);
  }
}

TEST(DecomposeTest, PreservesDependenceKind) {
  StatisticalConstraint sc = ParseConstraint("A !_||_ B, C").value();
  for (const StatisticalConstraint& part : DecomposeToSingletons(sc)) {
    EXPECT_EQ(part.kind, ScKind::kDependence);
  }
}

}  // namespace
}  // namespace scoded
