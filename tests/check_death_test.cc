// Death tests: programming-error guards must abort loudly rather than
// corrupt state.

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/result.h"
#include "stats/segment_tree.h"
#include "table/table.h"

namespace scoded {
namespace {

TEST(CheckDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ SCODED_CHECK(1 == 2); }, "CHECK failed");
  EXPECT_DEATH({ SCODED_CHECK_MSG(false, "context message"); }, "context message");
}

TEST(CheckDeathTest, CheckSuccessIsSilent) {
  SCODED_CHECK(true);
  SCODED_CHECK_MSG(1 + 1 == 2, "never shown");
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(NotFoundError("nothing here"));
  EXPECT_DEATH({ (void)r.value(); }, "nothing here");
}

TEST(SegmentTreeDeathTest, OutOfRangeAddAborts) {
  SegmentTree tree(4);
  EXPECT_DEATH(tree.Add(4, 1), "CHECK failed");
}

TEST(TableDeathTest, BadColumnIndexAborts) {
  TableBuilder builder;
  builder.AddNumeric("a", {1.0});
  Table t = std::move(builder).Build().value();
  EXPECT_DEATH((void)t.column(3), "CHECK failed");
  EXPECT_DEATH((void)t.ColumnByName("missing"), "no column named");
}

TEST(ColumnDeathTest, TypeMismatchAborts) {
  Column numeric = Column::Numeric({1.0});
  EXPECT_DEATH((void)numeric.CodeAt(0), "CHECK failed");
  Column categorical = Column::Categorical({"a"});
  EXPECT_DEATH((void)categorical.NumericAt(0), "CHECK failed");
}

}  // namespace
}  // namespace scoded
