#include "table/ops.h"

#include <gtest/gtest.h>

namespace scoded {
namespace {

Table MakeTable() {
  TableBuilder builder;
  builder.AddCategorical("city", {"b", "a", "c", "a", "b"});
  builder.AddNumeric("value", {3.0, 1.0, 2.0, 1.0, 5.0});
  return std::move(builder).Build().value();
}

TEST(SortByTest, SingleNumericKey) {
  Table sorted = SortBy(MakeTable(), {{"value", true}}).value();
  EXPECT_DOUBLE_EQ(sorted.ColumnByName("value").NumericAt(0), 1.0);
  EXPECT_DOUBLE_EQ(sorted.ColumnByName("value").NumericAt(4), 5.0);
  // Stability: the two 1.0 rows keep their relative order (a before a).
  EXPECT_EQ(sorted.ColumnByName("city").CategoryAt(0), "a");
}

TEST(SortByTest, DescendingAndMultiKey) {
  Table sorted = SortBy(MakeTable(), {{"city", true}, {"value", false}}).value();
  EXPECT_EQ(sorted.ColumnByName("city").CategoryAt(0), "a");
  EXPECT_DOUBLE_EQ(sorted.ColumnByName("value").NumericAt(0), 1.0);
  EXPECT_EQ(sorted.ColumnByName("city").CategoryAt(2), "b");
  EXPECT_DOUBLE_EQ(sorted.ColumnByName("value").NumericAt(2), 5.0);
}

TEST(SortByTest, NullsSortFirst) {
  TableBuilder builder;
  builder.AddNumericWithNulls("v", {2.0, 0.0, 1.0}, {true, false, true});
  Table t = std::move(builder).Build().value();
  Table sorted = SortBy(t, {{"v", true}}).value();
  EXPECT_TRUE(sorted.column(0).IsNull(0));
  EXPECT_DOUBLE_EQ(sorted.column(0).NumericAt(1), 1.0);
}

TEST(SortByTest, Errors) {
  EXPECT_FALSE(SortBy(MakeTable(), {}).ok());
  EXPECT_FALSE(SortBy(MakeTable(), {{"missing", true}}).ok());
}

TEST(RowsWhereEqualTest, CategoricalAndNumeric) {
  Table t = MakeTable();
  EXPECT_EQ(RowsWhereEqual(t, "city", "a").value(), (std::vector<size_t>{1, 3}));
  EXPECT_EQ(RowsWhereEqual(t, "value", "1").value(), (std::vector<size_t>{1, 3}));
  EXPECT_TRUE(RowsWhereEqual(t, "city", "zzz").value().empty());
  EXPECT_FALSE(RowsWhereEqual(t, "value", "not-a-number").ok());
  EXPECT_FALSE(RowsWhereEqual(t, "missing", "a").ok());
}

TEST(RowsWhereBetweenTest, InclusiveRange) {
  Table t = MakeTable();
  EXPECT_EQ(RowsWhereBetween(t, "value", 1.0, 3.0).value(),
            (std::vector<size_t>{0, 1, 2, 3}));
  EXPECT_FALSE(RowsWhereBetween(t, "city", 0, 1).ok());
}

TEST(HeadTailTest, Basics) {
  Table t = MakeTable();
  EXPECT_EQ(Head(t, 2).NumRows(), 2u);
  EXPECT_EQ(Head(t, 99).NumRows(), 5u);
  Table tail = Tail(t, 2);
  EXPECT_EQ(tail.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(tail.ColumnByName("value").NumericAt(1), 5.0);
}

TEST(SampleTest, DistinctRowsInOrder) {
  Table t = MakeTable();
  Rng rng(1);
  Table s = Sample(t, 3, rng);
  EXPECT_EQ(s.NumRows(), 3u);
  EXPECT_EQ(Sample(t, 10, rng).NumRows(), 5u);
}

TEST(DistinctTest, CombinationsInFirstAppearanceOrder) {
  TableBuilder builder;
  builder.AddCategorical("a", {"x", "x", "y", "x"});
  builder.AddCategorical("b", {"1", "1", "2", "2"});
  builder.AddNumeric("noise", {9, 8, 7, 6});
  Table t = std::move(builder).Build().value();
  Table d = Distinct(t, {"a", "b"}).value();
  EXPECT_EQ(d.NumRows(), 3u);
  EXPECT_EQ(d.NumColumns(), 2u);
  EXPECT_EQ(d.ColumnByName("a").CategoryAt(0), "x");
  EXPECT_EQ(d.ColumnByName("b").CategoryAt(2), "2");
  EXPECT_FALSE(Distinct(t, {"missing"}).ok());
}

}  // namespace
}  // namespace scoded
