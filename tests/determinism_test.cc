// The parallel layer's contract: results are bit-identical at any thread
// count. Batch checking, drill-down, ranking and PC discovery are each run
// at threads = 1 (fully serial: the pre-parallel code path), 4, and the
// hardware concurrency, and every output — p-values, statistics, removal
// orders, skeleton adjacency, separating sets — must match exactly.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/scoded.h"
#include "discovery/pc.h"
#include "table/table.h"

namespace scoded {
namespace {

struct ThreadsGuard {
  explicit ThreadsGuard(int n) { parallel::SetThreads(n); }
  ~ThreadsGuard() { parallel::SetThreads(0); }
};

std::vector<int> ThreadCounts() { return {1, 4, parallel::HardwareThreads()}; }

// Mixed-type table with injected structure: `model` drives `price`,
// `price` drives `mileage`, `color` is independent noise.
Table MakeTable() {
  Rng rng(1234);
  std::vector<std::string> model;
  std::vector<std::string> color;
  std::vector<double> price;
  std::vector<double> mileage;
  const char* models[] = {"civic", "corolla", "focus", "golf"};
  const char* colors[] = {"red", "blue", "white"};
  for (int i = 0; i < 400; ++i) {
    int m = static_cast<int>(rng.UniformInt(0, 3));
    model.push_back(models[m]);
    color.push_back(colors[static_cast<int>(rng.UniformInt(0, 2))]);
    double p = 10.0 + 3.0 * m + rng.Normal(0.0, 1.0);
    price.push_back(p);
    mileage.push_back(100.0 - 4.0 * p + rng.Normal(0.0, 2.0));
  }
  TableBuilder builder;
  builder.AddCategorical("model", model);
  builder.AddCategorical("color", color);
  builder.AddNumeric("price", price);
  builder.AddNumeric("mileage", mileage);
  return std::move(builder).Build().value();
}

TEST(DeterminismTest, CheckAllIsThreadCountInvariant) {
  Table table = MakeTable();
  std::vector<ApproximateSc> constraints = {
      {Independence({"model"}, {"color"}), 0.05},
      {Dependence({"model"}, {"price"}), 0.05},
      {Dependence({"price"}, {"mileage"}), 0.05},
      {Independence({"model"}, {"mileage"}, {"price"}), 0.01},
  };

  Scoded::BatchCheckResult baseline;
  {
    ThreadsGuard guard(1);
    Scoded system(MakeTable());
    baseline = system.CheckAll(constraints).value();
  }
  for (int threads : ThreadCounts()) {
    ThreadsGuard guard(threads);
    Scoded system(MakeTable());
    Scoded::BatchCheckResult result = system.CheckAll(constraints).value();
    ASSERT_EQ(result.reports.size(), baseline.reports.size()) << "threads=" << threads;
    EXPECT_EQ(result.violations, baseline.violations) << "threads=" << threads;
    for (size_t i = 0; i < result.reports.size(); ++i) {
      const ViolationReport& got = result.reports[i];
      const ViolationReport& want = baseline.reports[i];
      EXPECT_EQ(got.violated, want.violated) << "threads=" << threads << " sc=" << i;
      EXPECT_EQ(got.p_value, want.p_value) << "threads=" << threads << " sc=" << i;
      EXPECT_EQ(got.test.statistic, want.test.statistic) << "threads=" << threads << " sc=" << i;
      EXPECT_EQ(got.test.n, want.test.n) << "threads=" << threads << " sc=" << i;
      EXPECT_EQ(got.test.strata_used, want.test.strata_used)
          << "threads=" << threads << " sc=" << i;
    }
    // Work totals (tests executed, rows scanned) are deterministic too.
    EXPECT_EQ(result.telemetry.tests_executed, baseline.telemetry.tests_executed)
        << "threads=" << threads;
    EXPECT_EQ(result.telemetry.rows_scanned, baseline.telemetry.rows_scanned)
        << "threads=" << threads;
  }
}

TEST(DeterminismTest, DrillDownIsThreadCountInvariant) {
  std::vector<ApproximateSc> targets = {
      {Dependence({"price"}, {"mileage"}), 0.05},  // tau engine
      {Dependence({"model"}, {"price"}), 0.05},    // G engine (mixed pair)
      {Independence({"model"}, {"color"}), 0.05},  // complement strategy
  };
  for (size_t t = 0; t < targets.size(); ++t) {
    DrillDownResult baseline;
    {
      ThreadsGuard guard(1);
      Scoded system(MakeTable());
      baseline = system.DrillDown(targets[t], 25).value();
    }
    for (int threads : ThreadCounts()) {
      ThreadsGuard guard(threads);
      Scoded system(MakeTable());
      DrillDownResult result = system.DrillDown(targets[t], 25).value();
      EXPECT_EQ(result.rows, baseline.rows) << "threads=" << threads << " target=" << t;
      EXPECT_EQ(result.initial_statistic, baseline.initial_statistic)
          << "threads=" << threads << " target=" << t;
      EXPECT_EQ(result.final_statistic, baseline.final_statistic)
          << "threads=" << threads << " target=" << t;
      EXPECT_EQ(result.final_p, baseline.final_p) << "threads=" << threads << " target=" << t;
    }
  }
}

TEST(DeterminismTest, RankingIsThreadCountInvariant) {
  ApproximateSc target{Dependence({"price"}, {"mileage"}), 0.05};
  std::vector<size_t> baseline;
  {
    ThreadsGuard guard(1);
    Scoded system(MakeTable());
    baseline = system.RankRecords(target, 50).value();
  }
  ASSERT_EQ(baseline.size(), 50u);
  for (int threads : ThreadCounts()) {
    ThreadsGuard guard(threads);
    Scoded system(MakeTable());
    EXPECT_EQ(system.RankRecords(target, 50).value(), baseline) << "threads=" << threads;
  }
}

TEST(DeterminismTest, PcSkeletonIsThreadCountInvariant) {
  Table table = MakeTable();
  PcResult baseline;
  {
    ThreadsGuard guard(1);
    baseline = LearnPcStructure(table).value();
  }
  std::vector<std::string> baseline_text;
  for (const StatisticalConstraint& sc : baseline.DiscoveredConstraints()) {
    baseline_text.push_back(sc.ToString());
  }
  for (int threads : ThreadCounts()) {
    ThreadsGuard guard(threads);
    PcResult result = LearnPcStructure(table).value();
    EXPECT_EQ(result.adjacent, baseline.adjacent) << "threads=" << threads;
    EXPECT_EQ(result.separating_sets, baseline.separating_sets) << "threads=" << threads;
    EXPECT_EQ(result.directed, baseline.directed) << "threads=" << threads;
    std::vector<std::string> text;
    for (const StatisticalConstraint& sc : result.DiscoveredConstraints()) {
      text.push_back(sc.ToString());
    }
    EXPECT_EQ(text, baseline_text) << "threads=" << threads;
    EXPECT_EQ(result.telemetry.tests_executed, baseline.telemetry.tests_executed)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace scoded
