// The parallel layer's contract: results are bit-identical at any thread
// count. Batch checking, drill-down, ranking and PC discovery are each run
// at threads = 1 (fully serial: the pre-parallel code path), 4, and the
// hardware concurrency, and every output — p-values, statistics, removal
// orders, skeleton adjacency, separating sets — must match exactly.
//
// The SIMD kernel dispatch extends the same contract along a second axis:
// every SCODED_SIMD value this host supports (off, sse2, avx2), crossed
// with thread counts 1 and 4, must reproduce the scalar/serial baseline
// bit for bit — for in-memory CheckAll, out-of-core ShardedCheckAll, and
// the streaming monitors in both unbounded and windowed modes.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/scoded.h"
#include "core/sharded_check.h"
#include "core/stream_monitor.h"
#include "discovery/pc.h"
#include "distributed/coordinator.h"
#include "distributed/substrate.h"
#include "stats/simd.h"
#include "table/table.h"

namespace scoded {
namespace {

struct ThreadsGuard {
  explicit ThreadsGuard(int n) { parallel::SetThreads(n); }
  ~ThreadsGuard() { parallel::SetThreads(0); }
};

std::vector<int> ThreadCounts() { return {1, 4, parallel::HardwareThreads()}; }

// Mixed-type table with injected structure: `model` drives `price`,
// `price` drives `mileage`, `color` is independent noise.
Table MakeTable() {
  Rng rng(1234);
  std::vector<std::string> model;
  std::vector<std::string> color;
  std::vector<double> price;
  std::vector<double> mileage;
  const char* models[] = {"civic", "corolla", "focus", "golf"};
  const char* colors[] = {"red", "blue", "white"};
  for (int i = 0; i < 400; ++i) {
    int m = static_cast<int>(rng.UniformInt(0, 3));
    model.push_back(models[m]);
    color.push_back(colors[static_cast<int>(rng.UniformInt(0, 2))]);
    double p = 10.0 + 3.0 * m + rng.Normal(0.0, 1.0);
    price.push_back(p);
    mileage.push_back(100.0 - 4.0 * p + rng.Normal(0.0, 2.0));
  }
  TableBuilder builder;
  builder.AddCategorical("model", model);
  builder.AddCategorical("color", color);
  builder.AddNumeric("price", price);
  builder.AddNumeric("mileage", mileage);
  return std::move(builder).Build().value();
}

TEST(DeterminismTest, CheckAllIsThreadCountInvariant) {
  Table table = MakeTable();
  std::vector<ApproximateSc> constraints = {
      {Independence({"model"}, {"color"}), 0.05},
      {Dependence({"model"}, {"price"}), 0.05},
      {Dependence({"price"}, {"mileage"}), 0.05},
      {Independence({"model"}, {"mileage"}, {"price"}), 0.01},
  };

  Scoded::BatchCheckResult baseline;
  {
    ThreadsGuard guard(1);
    Scoded system(MakeTable());
    baseline = system.CheckAll(constraints).value();
  }
  for (int threads : ThreadCounts()) {
    ThreadsGuard guard(threads);
    Scoded system(MakeTable());
    Scoded::BatchCheckResult result = system.CheckAll(constraints).value();
    ASSERT_EQ(result.reports.size(), baseline.reports.size()) << "threads=" << threads;
    EXPECT_EQ(result.violations, baseline.violations) << "threads=" << threads;
    for (size_t i = 0; i < result.reports.size(); ++i) {
      const ViolationReport& got = result.reports[i];
      const ViolationReport& want = baseline.reports[i];
      EXPECT_EQ(got.violated, want.violated) << "threads=" << threads << " sc=" << i;
      EXPECT_EQ(got.p_value, want.p_value) << "threads=" << threads << " sc=" << i;
      EXPECT_EQ(got.test.statistic, want.test.statistic) << "threads=" << threads << " sc=" << i;
      EXPECT_EQ(got.test.n, want.test.n) << "threads=" << threads << " sc=" << i;
      EXPECT_EQ(got.test.strata_used, want.test.strata_used)
          << "threads=" << threads << " sc=" << i;
    }
    // Work totals (tests executed, rows scanned) are deterministic too.
    EXPECT_EQ(result.telemetry.tests_executed, baseline.telemetry.tests_executed)
        << "threads=" << threads;
    EXPECT_EQ(result.telemetry.rows_scanned, baseline.telemetry.rows_scanned)
        << "threads=" << threads;
  }
}

TEST(DeterminismTest, DrillDownIsThreadCountInvariant) {
  std::vector<ApproximateSc> targets = {
      {Dependence({"price"}, {"mileage"}), 0.05},  // tau engine
      {Dependence({"model"}, {"price"}), 0.05},    // G engine (mixed pair)
      {Independence({"model"}, {"color"}), 0.05},  // complement strategy
  };
  for (size_t t = 0; t < targets.size(); ++t) {
    DrillDownResult baseline;
    {
      ThreadsGuard guard(1);
      Scoded system(MakeTable());
      baseline = system.DrillDown(targets[t], 25).value();
    }
    for (int threads : ThreadCounts()) {
      ThreadsGuard guard(threads);
      Scoded system(MakeTable());
      DrillDownResult result = system.DrillDown(targets[t], 25).value();
      EXPECT_EQ(result.rows, baseline.rows) << "threads=" << threads << " target=" << t;
      EXPECT_EQ(result.initial_statistic, baseline.initial_statistic)
          << "threads=" << threads << " target=" << t;
      EXPECT_EQ(result.final_statistic, baseline.final_statistic)
          << "threads=" << threads << " target=" << t;
      EXPECT_EQ(result.final_p, baseline.final_p) << "threads=" << threads << " target=" << t;
    }
  }
}

TEST(DeterminismTest, RankingIsThreadCountInvariant) {
  ApproximateSc target{Dependence({"price"}, {"mileage"}), 0.05};
  std::vector<size_t> baseline;
  {
    ThreadsGuard guard(1);
    Scoded system(MakeTable());
    baseline = system.RankRecords(target, 50).value();
  }
  ASSERT_EQ(baseline.size(), 50u);
  for (int threads : ThreadCounts()) {
    ThreadsGuard guard(threads);
    Scoded system(MakeTable());
    EXPECT_EQ(system.RankRecords(target, 50).value(), baseline) << "threads=" << threads;
  }
}

TEST(DeterminismTest, PcSkeletonIsThreadCountInvariant) {
  Table table = MakeTable();
  PcResult baseline;
  {
    ThreadsGuard guard(1);
    baseline = LearnPcStructure(table).value();
  }
  std::vector<std::string> baseline_text;
  for (const StatisticalConstraint& sc : baseline.DiscoveredConstraints()) {
    baseline_text.push_back(sc.ToString());
  }
  for (int threads : ThreadCounts()) {
    ThreadsGuard guard(threads);
    PcResult result = LearnPcStructure(table).value();
    EXPECT_EQ(result.adjacent, baseline.adjacent) << "threads=" << threads;
    EXPECT_EQ(result.separating_sets, baseline.separating_sets) << "threads=" << threads;
    EXPECT_EQ(result.directed, baseline.directed) << "threads=" << threads;
    std::vector<std::string> text;
    for (const StatisticalConstraint& sc : result.DiscoveredConstraints()) {
      text.push_back(sc.ToString());
    }
    EXPECT_EQ(text, baseline_text) << "threads=" << threads;
    EXPECT_EQ(result.telemetry.tests_executed, baseline.telemetry.tests_executed)
        << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// SIMD-path determinism. Paths are selected the way deployments select
// them — through the SCODED_SIMD environment variable — so these also
// cover the env-var parsing and re-resolution plumbing.
// ---------------------------------------------------------------------------

// SCODED_SIMD values this host can honour (unsupported tiers are clamped
// by the dispatcher, which would silently re-test the same path).
std::vector<const char*> SimdEnvValues() {
  std::vector<const char*> values = {"off"};
  if (simd::Path::kSse2 <= simd::BestSupportedPath()) {
    values.push_back("sse2");
  }
  if (simd::Path::kAvx2 <= simd::BestSupportedPath()) {
    values.push_back("avx2");
  }
  return values;
}

// Applies one SCODED_SIMD value for the current scope, restoring the
// ambient environment (and dispatch) on destruction.
struct SimdEnvGuard {
  explicit SimdEnvGuard(const char* value) {
    ::setenv("SCODED_SIMD", value, 1);
    simd::ResetPathFromEnvironment();
  }
  ~SimdEnvGuard() {
    ::unsetenv("SCODED_SIMD");
    simd::ResetPathFromEnvironment();
  }
};

TEST(SimdDeterminismTest, CheckAllIsPathAndThreadInvariant) {
  std::vector<ApproximateSc> constraints = {
      {Independence({"model"}, {"color"}), 0.05},
      {Dependence({"model"}, {"price"}), 0.05},
      {Dependence({"price"}, {"mileage"}), 0.05},
      {Independence({"model"}, {"mileage"}, {"price"}), 0.01},
  };
  Scoded::BatchCheckResult baseline;
  {
    SimdEnvGuard simd_guard("off");
    ThreadsGuard threads_guard(1);
    Scoded system(MakeTable());
    baseline = system.CheckAll(constraints).value();
  }
  for (const char* simd_value : SimdEnvValues()) {
    for (int threads : {1, 4}) {
      SimdEnvGuard simd_guard(simd_value);
      ThreadsGuard threads_guard(threads);
      Scoded system(MakeTable());
      Scoded::BatchCheckResult result = system.CheckAll(constraints).value();
      ASSERT_EQ(result.reports.size(), baseline.reports.size());
      EXPECT_EQ(result.violations, baseline.violations)
          << "simd=" << simd_value << " threads=" << threads;
      for (size_t i = 0; i < result.reports.size(); ++i) {
        EXPECT_EQ(result.reports[i].violated, baseline.reports[i].violated)
            << "simd=" << simd_value << " threads=" << threads << " sc=" << i;
        EXPECT_EQ(result.reports[i].p_value, baseline.reports[i].p_value)
            << "simd=" << simd_value << " threads=" << threads << " sc=" << i;
        EXPECT_EQ(result.reports[i].test.statistic, baseline.reports[i].test.statistic)
            << "simd=" << simd_value << " threads=" << threads << " sc=" << i;
      }
    }
  }
}

TEST(SimdDeterminismTest, ShardedCheckAllIsPathAndThreadInvariant) {
  std::string path = ::testing::TempDir() + "/simd_determinism_sharded.csv";
  {
    Rng rng(4321);
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << "Model,Color,Price,Mileage\n";
    const char* models[] = {"civic", "corolla", "focus", "golf"};
    const char* colors[] = {"red", "blue", "white"};
    for (int i = 0; i < 500; ++i) {
      int64_t m = rng.UniformInt(0, 3);
      double p = 10.0 + 3.0 * static_cast<double>(m) + rng.Normal(0.0, 1.0);
      if (rng.UniformInt(0, 39) == 0) {
        out << ',';  // null Model
      } else {
        out << models[m] << ',';
      }
      out << colors[rng.UniformInt(0, 2)] << ',' << p << ','
          << 100.0 - 4.0 * p + rng.Normal(0.0, 2.0) << '\n';
    }
  }
  std::vector<ApproximateSc> constraints = {
      {ParseConstraint("Model _||_ Color").value(), 0.05},
      {ParseConstraint("Model !_||_ Price").value(), 0.3},
      {ParseConstraint("Price _||_ Mileage | Model").value(), 0.05},
  };
  ShardedCheckOptions options;
  options.reader.shard_rows = 64;
  ShardedCheckResult baseline;
  {
    SimdEnvGuard simd_guard("off");
    ThreadsGuard threads_guard(1);
    baseline = ShardedCheckAll(path, constraints, options).value();
  }
  ASSERT_EQ(baseline.reports.size(), constraints.size());
  for (const char* simd_value : SimdEnvValues()) {
    for (int threads : {1, 4}) {
      SimdEnvGuard simd_guard(simd_value);
      ThreadsGuard threads_guard(threads);
      ShardedCheckResult result = ShardedCheckAll(path, constraints, options).value();
      EXPECT_EQ(result.violations, baseline.violations)
          << "simd=" << simd_value << " threads=" << threads;
      EXPECT_EQ(result.shards, baseline.shards);
      EXPECT_EQ(result.rows, baseline.rows);
      ASSERT_EQ(result.reports.size(), baseline.reports.size());
      for (size_t i = 0; i < result.reports.size(); ++i) {
        EXPECT_EQ(result.reports[i].violated, baseline.reports[i].violated)
            << "simd=" << simd_value << " threads=" << threads << " sc=" << i;
        EXPECT_EQ(result.reports[i].p_value, baseline.reports[i].p_value)
            << "simd=" << simd_value << " threads=" << threads << " sc=" << i;
        EXPECT_EQ(result.reports[i].test.statistic, baseline.reports[i].test.statistic)
            << "simd=" << simd_value << " threads=" << threads << " sc=" << i;
      }
    }
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Distributed determinism: the coordinator/worker path extends the same
// contract along a third axis — worker count crossed with transport must
// reproduce the single-process sharded baseline bit for bit.
// ---------------------------------------------------------------------------

TEST(DistributedDeterminismTest, WorkerCountAndTransportInvariant) {
  std::string path = ::testing::TempDir() + "/distributed_determinism.csv";
  {
    Rng rng(8642);
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << "Model,Color,Price,Mileage\n";
    const char* models[] = {"civic", "corolla", "focus", "golf"};
    const char* colors[] = {"red", "blue", "white"};
    for (int i = 0; i < 500; ++i) {
      int64_t m = rng.UniformInt(0, 3);
      double p = 10.0 + 3.0 * static_cast<double>(m) + rng.Normal(0.0, 1.0);
      if (rng.UniformInt(0, 39) == 0) {
        out << ',';  // null Model
      } else {
        out << models[m] << ',';
      }
      out << colors[rng.UniformInt(0, 2)] << ',' << p << ','
          << 100.0 - 4.0 * p + rng.Normal(0.0, 2.0) << '\n';
    }
  }
  std::vector<ApproximateSc> constraints = {
      {ParseConstraint("Model _||_ Color").value(), 0.05},
      {ParseConstraint("Model !_||_ Price").value(), 0.3},
      {ParseConstraint("Price _||_ Mileage | Model").value(), 0.05},
  };
  ShardedCheckOptions base;
  base.reader.shard_rows = 64;
  ShardedCheckResult baseline;
  {
    ThreadsGuard threads_guard(1);
    baseline = ShardedCheckAll(path, constraints, base).value();
  }
  ASSERT_EQ(baseline.reports.size(), constraints.size());

  struct Transport {
    const char* name;
    std::unique_ptr<dist::Substrate> substrate;
  };
  std::vector<Transport> transports;
  transports.push_back({"in-process", std::make_unique<dist::InProcessSubstrate>()});
#ifdef SCODED_CLI_BIN
  transports.push_back({"fork", std::make_unique<dist::ForkExecSubstrate>(
                                    SCODED_CLI_BIN, std::vector<std::string>{"worker"})});
  transports.push_back({"tcp", std::make_unique<dist::TcpSubstrate>(
                                   SCODED_CLI_BIN, std::vector<std::string>{"worker"})});
#endif
  for (Transport& transport : transports) {
    for (int workers : {1, 2, 4}) {
      dist::DistributedCheckOptions options;
      options.base = base;
      options.workers = workers;
      Result<ShardedCheckResult> result =
          dist::DistributedCheckAll(path, constraints, *transport.substrate, options);
      ASSERT_TRUE(result.ok()) << transport.name << " workers=" << workers << ": "
                               << result.status().message();
      EXPECT_EQ(result->violations, baseline.violations)
          << transport.name << " workers=" << workers;
      EXPECT_EQ(result->shards, baseline.shards);
      EXPECT_EQ(result->rows, baseline.rows);
      ASSERT_EQ(result->reports.size(), baseline.reports.size());
      for (size_t i = 0; i < result->reports.size(); ++i) {
        EXPECT_EQ(result->reports[i].violated, baseline.reports[i].violated)
            << transport.name << " workers=" << workers << " sc=" << i;
        EXPECT_EQ(result->reports[i].p_value, baseline.reports[i].p_value)
            << transport.name << " workers=" << workers << " sc=" << i;
        EXPECT_EQ(result->reports[i].test.statistic, baseline.reports[i].test.statistic)
            << transport.name << " workers=" << workers << " sc=" << i;
      }
    }
  }
  std::remove(path.c_str());
}

TEST(SimdDeterminismTest, StreamMonitorIsPathAndThreadInvariant) {
  // 6 batches of 70 rows against a numeric and a categorical constraint,
  // in unbounded (window 0) and windowed (window 64: evictions exercise
  // the pair-scan kernel on both sides) modes.
  auto make_batch = [](uint64_t seed) {
    Rng rng(seed);
    std::vector<double> price;
    std::vector<double> mileage;
    std::vector<std::string> model;
    std::vector<std::string> color;
    const char* models[] = {"civic", "corolla", "focus"};
    const char* colors[] = {"red", "blue"};
    for (int i = 0; i < 70; ++i) {
      double p = 10.0 + rng.Normal(0.0, 2.0);
      price.push_back(p);
      mileage.push_back(100.0 - 4.0 * p + rng.Normal(0.0, 2.0));
      model.push_back(models[rng.UniformInt(0, 2)]);
      color.push_back(colors[rng.UniformInt(0, 1)]);
    }
    TableBuilder builder;
    builder.AddNumeric("price", price);
    builder.AddNumeric("mileage", mileage);
    builder.AddCategorical("model", model);
    builder.AddCategorical("color", color);
    return std::move(builder).Build().value();
  };
  std::vector<ApproximateSc> constraints = {
      {ParseConstraint("price !_||_ mileage").value(), 0.3},
      {ParseConstraint("model _||_ color").value(), 0.05},
      {ParseConstraint("price !_||_ mileage | model").value(), 0.3},
  };
  for (size_t window : {size_t{0}, size_t{64}}) {
    StreamMonitorOptions options;
    options.monitor.window = window;
    struct MonitorState {
      double statistic;
      double p_value;
      bool violated;
      size_t occupancy;
    };
    std::vector<MonitorState> baseline;
    {
      SimdEnvGuard simd_guard("off");
      ThreadsGuard threads_guard(1);
      StreamMonitor stream = StreamMonitor::Create(make_batch(1), constraints, options).value();
      for (uint64_t seed = 1; seed <= 6; ++seed) {
        ASSERT_TRUE(stream.Append(make_batch(seed)).ok());
      }
      for (size_t i = 0; i < stream.NumMonitors(); ++i) {
        baseline.push_back({stream.monitor(i).CurrentStatistic(),
                            stream.monitor(i).CurrentPValue(), stream.monitor(i).Violated(),
                            stream.monitor(i).WindowOccupancy()});
      }
    }
    for (const char* simd_value : SimdEnvValues()) {
      for (int threads : {1, 4}) {
        SimdEnvGuard simd_guard(simd_value);
        ThreadsGuard threads_guard(threads);
        StreamMonitor stream =
            StreamMonitor::Create(make_batch(1), constraints, options).value();
        for (uint64_t seed = 1; seed <= 6; ++seed) {
          ASSERT_TRUE(stream.Append(make_batch(seed)).ok());
        }
        ASSERT_EQ(stream.NumMonitors(), baseline.size());
        for (size_t i = 0; i < baseline.size(); ++i) {
          EXPECT_EQ(stream.monitor(i).CurrentStatistic(), baseline[i].statistic)
              << "simd=" << simd_value << " threads=" << threads << " window=" << window
              << " monitor=" << i;
          EXPECT_EQ(stream.monitor(i).CurrentPValue(), baseline[i].p_value)
              << "simd=" << simd_value << " threads=" << threads << " window=" << window
              << " monitor=" << i;
          EXPECT_EQ(stream.monitor(i).Violated(), baseline[i].violated)
              << "simd=" << simd_value << " threads=" << threads << " window=" << window
              << " monitor=" << i;
          EXPECT_EQ(stream.monitor(i).WindowOccupancy(), baseline[i].occupancy)
              << "simd=" << simd_value << " threads=" << threads << " window=" << window
              << " monitor=" << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace scoded
