// The compressed-columnar kernel layer's contract (stats/colcodec.h,
// stats/simd.h): every optimised path produces bit-identical results to
// the scalar reference on any input — including the width boundaries
// (cardinality 255/256/65535/65536), all-null and single-category
// columns, NaNs, and signed zeros — and the dispatch override machinery
// (ForcePath / SCODED_SIMD) behaves as documented.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stats/colcodec.h"
#include "stats/contingency.h"
#include "stats/kendall.h"
#include "stats/ranks.h"
#include "stats/segment_tree.h"
#include "stats/simd.h"

namespace scoded {
namespace {

// Restores environment-driven dispatch when a ForcePath test ends.
struct DispatchGuard {
  ~DispatchGuard() { simd::ResetPathFromEnvironment(); }
};

std::vector<simd::Path> SupportedPaths() {
  std::vector<simd::Path> paths = {simd::Path::kScalar};
  for (simd::Path path : {simd::Path::kSse2, simd::Path::kAvx2}) {
    if (path <= simd::BestSupportedPath()) {
      paths.push_back(path);
    }
  }
  return paths;
}

// Random codes in [0, cardinality) with roughly `null_pct`% nulls.
std::vector<int32_t> RandomCodes(size_t n, size_t cardinality, int null_pct, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> codes(n);
  for (int32_t& c : codes) {
    c = (rng.UniformInt(0, 99) < null_pct)
            ? -1
            : static_cast<int32_t>(rng.UniformInt(0, static_cast<int64_t>(cardinality) - 1));
  }
  return codes;
}

// ---------------------------------------------------------------------------
// CompressedCodes
// ---------------------------------------------------------------------------

TEST(CompressedCodesTest, WidthSelectionBoundaries) {
  EXPECT_EQ(CompressedCodes::WidthFor(1), CodeWidth::kU8);
  EXPECT_EQ(CompressedCodes::WidthFor(255), CodeWidth::kU8);
  EXPECT_EQ(CompressedCodes::WidthFor(256), CodeWidth::kU8);
  EXPECT_EQ(CompressedCodes::WidthFor(257), CodeWidth::kU16);
  EXPECT_EQ(CompressedCodes::WidthFor(65535), CodeWidth::kU16);
  EXPECT_EQ(CompressedCodes::WidthFor(65536), CodeWidth::kU16);
  EXPECT_EQ(CompressedCodes::WidthFor(65537), CodeWidth::kU32);
}

TEST(CompressedCodesTest, RoundTripsAtEveryWidthBoundary) {
  for (size_t cardinality : {size_t{1}, size_t{2}, size_t{255}, size_t{256}, size_t{257},
                             size_t{65535}, size_t{65536}, size_t{65537}, size_t{100000}}) {
    for (int null_pct : {0, 15}) {
      std::vector<int32_t> codes = RandomCodes(777, cardinality, null_pct, cardinality);
      CompressedCodes packed = CompressedCodes::Encode(codes, cardinality);
      EXPECT_EQ(packed.size(), codes.size());
      EXPECT_EQ(packed.cardinality(), cardinality);
      EXPECT_EQ(packed.width(), CompressedCodes::WidthFor(cardinality));
      EXPECT_EQ(packed.Decode(), codes) << "cardinality=" << cardinality;
    }
  }
}

TEST(CompressedCodesTest, NoNullColumnStoresNoMask) {
  CompressedCodes packed = CompressedCodes::Encode({0, 1, 2, 1}, 3);
  EXPECT_FALSE(packed.has_nulls());
  EXPECT_EQ(packed.valid_words(), nullptr);
  EXPECT_EQ(packed.num_valid_words(), 0u);
  EXPECT_EQ(packed.CountValid(), 4u);
  for (size_t row = 0; row < 4; ++row) {
    EXPECT_TRUE(packed.IsValid(row));
  }
}

TEST(CompressedCodesTest, AllNullColumn) {
  std::vector<int32_t> codes(100, -1);
  CompressedCodes packed = CompressedCodes::Encode(codes, 7);
  EXPECT_TRUE(packed.has_nulls());
  EXPECT_EQ(packed.CountValid(), 0u);
  for (size_t row = 0; row < codes.size(); ++row) {
    EXPECT_FALSE(packed.IsValid(row));
    EXPECT_EQ(packed.CodeAt(row), 0u);  // nulls hold code 0 under the mask
  }
  EXPECT_EQ(packed.Decode(), codes);
}

TEST(CompressedCodesTest, SingleCategoryColumn) {
  std::vector<int32_t> codes(65, 0);
  CompressedCodes packed = CompressedCodes::Encode(codes, 1);
  EXPECT_EQ(packed.width(), CodeWidth::kU8);
  EXPECT_EQ(packed.CountValid(), 65u);
  EXPECT_EQ(packed.Decode(), codes);
}

TEST(CompressedCodesTest, MaskTailBitsAreZero) {
  // 65 rows -> two mask words; bits 65..127 of the second word must be 0
  // so whole-word kernels can trust them.
  std::vector<int32_t> codes(65, 3);
  codes[10] = -1;
  CompressedCodes packed = CompressedCodes::Encode(codes, 8);
  ASSERT_EQ(packed.num_valid_words(), 2u);
  EXPECT_EQ(packed.valid_words()[1] >> 1, 0ull);
  EXPECT_EQ(packed.valid_words()[1] & 1ull, 1ull);
}

TEST(CompressedCodesTest, MemoryBytesTracksWidth) {
  std::vector<int32_t> codes(1000, 0);
  EXPECT_EQ(CompressedCodes::Encode(codes, 200).MemoryBytes(), 1000u);
  EXPECT_EQ(CompressedCodes::Encode(codes, 1000).MemoryBytes(), 2000u);
  EXPECT_EQ(CompressedCodes::Encode(codes, 100000).MemoryBytes(), 4000u);
}

TEST(CompressedCodesTest, DefaultCodecRoundTrips) {
  const ColumnCodec& codec = NarrowestWidthCodec();
  std::vector<int32_t> codes = RandomCodes(300, 500, 10, 42);
  EXPECT_EQ(codec.Decode(codec.Encode(codes, 500)), codes);
  EXPECT_STRNE(codec.Name(), "");
}

// ---------------------------------------------------------------------------
// Dispatch machinery
// ---------------------------------------------------------------------------

TEST(SimdDispatchTest, ParsePathAcceptsDocumentedNames) {
  EXPECT_EQ(simd::ParsePath("off"), simd::Path::kScalar);
  EXPECT_EQ(simd::ParsePath("scalar"), simd::Path::kScalar);
  EXPECT_EQ(simd::ParsePath("sse2"), simd::Path::kSse2);
  EXPECT_EQ(simd::ParsePath("avx2"), simd::Path::kAvx2);
  EXPECT_EQ(simd::ParsePath("bogus"), std::nullopt);
  EXPECT_EQ(simd::ParsePath(""), std::nullopt);
}

TEST(SimdDispatchTest, PathNamesAreDistinct) {
  EXPECT_STRNE(simd::PathName(simd::Path::kScalar), simd::PathName(simd::Path::kSse2));
  EXPECT_STRNE(simd::PathName(simd::Path::kSse2), simd::PathName(simd::Path::kAvx2));
}

TEST(SimdDispatchTest, ForcePathPinsAndResetRestores) {
  DispatchGuard guard;
  ASSERT_TRUE(simd::ForcePath(simd::Path::kScalar));
  EXPECT_EQ(simd::ActivePath(), simd::Path::kScalar);
  for (simd::Path path : SupportedPaths()) {
    ASSERT_TRUE(simd::ForcePath(path));
    EXPECT_EQ(simd::ActivePath(), path);
  }
  simd::ResetPathFromEnvironment();
  // Without SCODED_SIMD in the test environment this resolves to the
  // widest supported path; with it, to the requested one. Either way the
  // forced pin must be gone.
  if (const char* env = std::getenv("SCODED_SIMD")) {
    auto parsed = simd::ParsePath(env);
    if (parsed.has_value() && *parsed <= simd::BestSupportedPath()) {
      EXPECT_EQ(simd::ActivePath(), *parsed);
    }
  } else {
    EXPECT_EQ(simd::ActivePath(), simd::BestSupportedPath());
  }
}

// ---------------------------------------------------------------------------
// Kernel equivalence: every supported path vs the scalar reference.
// KernelsFor() hands out per-path tables without touching the global
// dispatch, so these run on any machine regardless of SCODED_SIMD.
// ---------------------------------------------------------------------------

struct ContingencyCase {
  const char* label;
  size_t n;
  size_t cx;
  size_t cy;
  int null_pct;
};

TEST(SimdKernelEquivalenceTest, ContingencyMatchesScalarAcrossWidths) {
  const ContingencyCase cases[] = {
      {"u8 small", 500, 10, 10, 0},
      {"u8 small nulls", 500, 10, 10, 20},
      {"u8 boundary 255", 1000, 255, 4, 10},
      {"u8 boundary 256", 1000, 256, 3, 10},
      {"u16 boundary 257", 1000, 257, 5, 10},
      {"u16 x u16", 2000, 300, 300, 5},
      {"u16 boundary 65535", 4000, 65535, 2, 10},
      {"u16 boundary 65536", 4000, 65536, 2, 10},
      {"u32 boundary 65537", 4000, 65537, 2, 10},
      {"u32 x u8", 3000, 100000, 6, 15},
      {"all null x", 300, 10, 10, 100},
      {"single category", 300, 1, 1, 0},
      {"short tail", 63, 10, 10, 10},
      {"one word", 64, 10, 10, 10},
      {"word plus one", 65, 10, 10, 10},
      {"empty", 0, 10, 10, 0},
  };
  const simd::Kernels& scalar = simd::KernelsFor(simd::Path::kScalar);
  for (const ContingencyCase& c : cases) {
    CompressedCodes x = CompressedCodes::Encode(RandomCodes(c.n, c.cx, c.null_pct, 1), c.cx);
    CompressedCodes y = CompressedCodes::Encode(RandomCodes(c.n, c.cy, c.null_pct, 2), c.cy);
    std::vector<int64_t> want(c.cx * c.cy, 0);
    std::vector<uint32_t> want_first(c.cx * c.cy, UINT32_MAX);
    scalar.contingency_first(x, y, want.data(), want_first.data());
    std::vector<int64_t> want_counts(c.cx * c.cy, 0);
    scalar.contingency(x, y, want_counts.data());
    EXPECT_EQ(want, want_counts) << c.label << ": contingency vs contingency_first";
    for (simd::Path path : SupportedPaths()) {
      const simd::Kernels& kernels = simd::KernelsFor(path);
      std::vector<int64_t> got(c.cx * c.cy, 0);
      kernels.contingency(x, y, got.data());
      EXPECT_EQ(got, want) << c.label << " path=" << simd::PathName(path);
      std::vector<int64_t> got_counts(c.cx * c.cy, 0);
      std::vector<uint32_t> got_first(c.cx * c.cy, UINT32_MAX);
      kernels.contingency_first(x, y, got_counts.data(), got_first.data());
      EXPECT_EQ(got_counts, want) << c.label << " path=" << simd::PathName(path);
      EXPECT_EQ(got_first, want_first) << c.label << " path=" << simd::PathName(path);
    }
  }
}

TEST(SimdKernelEquivalenceTest, DenseRanksMatchesScalarOnHostileInputs) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> cases = {
      {},
      {1.0},
      {3.0, 1.0, 2.0, 1.0, 3.0},
      {0.0, -0.0, 1.0, -0.0},          // signed zeros share one rank
      {nan, 1.0, nan, -inf, inf, 2.0}, // NaNs sort last, share one rank
      std::vector<double>(50, 7.5),    // single tie group
  };
  Rng rng(99);
  std::vector<double> big(5000);
  for (double& v : big) {
    v = (rng.UniformInt(0, 2) == 0) ? static_cast<double>(rng.UniformInt(0, 99)) : rng.Normal();
  }
  cases.push_back(std::move(big));
  const simd::Kernels& scalar = simd::KernelsFor(simd::Path::kScalar);
  for (size_t i = 0; i < cases.size(); ++i) {
    const std::vector<double>& values = cases[i];
    std::vector<size_t> want(values.size());
    size_t want_distinct = scalar.dense_ranks(values.data(), values.size(), want.data());
    for (simd::Path path : SupportedPaths()) {
      std::vector<size_t> got(values.size());
      size_t got_distinct =
          simd::KernelsFor(path).dense_ranks(values.data(), values.size(), got.data());
      EXPECT_EQ(got, want) << "case=" << i << " path=" << simd::PathName(path);
      EXPECT_EQ(got_distinct, want_distinct) << "case=" << i << " path=" << simd::PathName(path);
    }
  }
}

TEST(SimdKernelEquivalenceTest, CountInversionsMatchesScalar) {
  Rng rng(7);
  std::vector<std::vector<uint32_t>> cases = {
      {},
      {5},
      {1, 2, 3, 4, 5},
      {5, 4, 3, 2, 1},
      {2, 2, 2, 2},
  };
  std::vector<uint32_t> random(3000);
  for (uint32_t& v : random) {
    v = static_cast<uint32_t>(rng.UniformInt(0, 500));
  }
  cases.push_back(std::move(random));
  const simd::Kernels& scalar = simd::KernelsFor(simd::Path::kScalar);
  for (size_t i = 0; i < cases.size(); ++i) {
    std::vector<uint32_t> want_sorted = cases[i];
    std::vector<uint32_t> scratch(cases[i].size());
    int64_t want =
        scalar.count_inversions(want_sorted.data(), scratch.data(), want_sorted.size());
    EXPECT_TRUE(std::is_sorted(want_sorted.begin(), want_sorted.end())) << "case=" << i;
    for (simd::Path path : SupportedPaths()) {
      std::vector<uint32_t> got_sorted = cases[i];
      int64_t got = simd::KernelsFor(path).count_inversions(got_sorted.data(), scratch.data(),
                                                            got_sorted.size());
      EXPECT_EQ(got, want) << "case=" << i << " path=" << simd::PathName(path);
      EXPECT_EQ(got_sorted, want_sorted) << "case=" << i << " path=" << simd::PathName(path);
    }
  }
}

TEST(SimdKernelEquivalenceTest, PopcountMatchesScalar) {
  Rng rng(11);
  std::vector<uint64_t> words = {0ull, 1ull, ~0ull, 0x8000000000000000ull, 0x5555555555555555ull};
  for (int i = 0; i < 200; ++i) {
    words.push_back(static_cast<uint64_t>(rng.UniformInt(0, INT64_MAX)) * 2 +
                    static_cast<uint64_t>(rng.UniformInt(0, 1)));
  }
  const simd::Kernels& scalar = simd::KernelsFor(simd::Path::kScalar);
  for (uint64_t word : words) {
    int want = scalar.popcount_word(word);
    for (simd::Path path : SupportedPaths()) {
      EXPECT_EQ(simd::KernelsFor(path).popcount_word(word), want)
          << "word=" << word << " path=" << simd::PathName(path);
    }
  }
}

TEST(SimdKernelEquivalenceTest, PairSignScanMatchesScalar) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Rng rng(13);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(rng.UniformInt(0, 1) ? static_cast<double>(rng.UniformInt(-3, 3)) : rng.Normal());
    ys.push_back(rng.UniformInt(0, 1) ? static_cast<double>(rng.UniformInt(-3, 3)) : rng.Normal());
  }
  xs[17] = nan;  // NaN pairs must contribute 0 on every path
  ys[23] = nan;
  const simd::Kernels& scalar = simd::KernelsFor(simd::Path::kScalar);
  // Probe points: data values (exact ties), fresh values, and NaN.
  const std::pair<double, double> probes[] = {
      {xs[0], ys[0]}, {0.5, -0.25}, {nan, 1.0}, {1.0, nan}, {-2.0, 2.0}};
  for (const auto& [px, py] : probes) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{5}, xs.size()}) {
      int64_t want_s = 0;
      int64_t want_nz = 0;
      scalar.pair_sign_scan(xs.data(), ys.data(), n, px, py, &want_s, &want_nz);
      for (simd::Path path : SupportedPaths()) {
        int64_t got_s = 0;
        int64_t got_nz = 0;
        simd::KernelsFor(path).pair_sign_scan(xs.data(), ys.data(), n, px, py, &got_s, &got_nz);
        EXPECT_EQ(got_s, want_s) << "n=" << n << " path=" << simd::PathName(path);
        EXPECT_EQ(got_nz, want_nz) << "n=" << n << " path=" << simd::PathName(path);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Integration: the stat layers consuming Active() give bit-identical
// results under every forced path.
// ---------------------------------------------------------------------------

TEST(SimdIntegrationTest, ContingencyTableIdenticalAcrossPaths) {
  DispatchGuard guard;
  std::vector<int32_t> x = RandomCodes(2000, 12, 10, 31);
  std::vector<int32_t> y = RandomCodes(2000, 300, 10, 32);
  ASSERT_TRUE(simd::ForcePath(simd::Path::kScalar));
  ContingencyTable baseline(x, y, 12, 300);
  for (simd::Path path : SupportedPaths()) {
    ASSERT_TRUE(simd::ForcePath(path));
    ContingencyTable int32_built(x, y, 12, 300);
    ContingencyTable packed_built(CompressedCodes::Encode(x, 12),
                                  CompressedCodes::Encode(y, 300));
    for (const ContingencyTable& table : {int32_built, packed_built}) {
      EXPECT_EQ(table.total(), baseline.total()) << simd::PathName(path);
      EXPECT_EQ(table.GStatistic(), baseline.GStatistic()) << simd::PathName(path);
      EXPECT_EQ(table.MutualInformationBits(), baseline.MutualInformationBits())
          << simd::PathName(path);
    }
  }
}

TEST(SimdIntegrationTest, DenseRanksAndKendallIdenticalAcrossPaths) {
  DispatchGuard guard;
  Rng rng(41);
  std::vector<double> x(1500);
  std::vector<double> y(1500);
  for (size_t i = 0; i < x.size(); ++i) {
    double v = rng.Normal();
    x[i] = (i % 5 == 0) ? 2.0 : v;  // real tie groups on both margins
    y[i] = (i % 7 == 0) ? -1.0 : v + rng.Normal(0.0, 0.5);
  }
  ASSERT_TRUE(simd::ForcePath(simd::Path::kScalar));
  size_t baseline_distinct = 0;
  std::vector<size_t> baseline_ranks = DenseRanks(x, &baseline_distinct);
  KendallResult baseline_tau = KendallTau(x, y);
  for (simd::Path path : SupportedPaths()) {
    ASSERT_TRUE(simd::ForcePath(path));
    size_t distinct = 0;
    EXPECT_EQ(DenseRanks(x, &distinct), baseline_ranks) << simd::PathName(path);
    EXPECT_EQ(distinct, baseline_distinct) << simd::PathName(path);
    KendallResult tau = KendallTau(x, y);
    EXPECT_EQ(tau.s, baseline_tau.s) << simd::PathName(path);
    EXPECT_EQ(tau.concordant, baseline_tau.concordant) << simd::PathName(path);
    EXPECT_EQ(tau.discordant, baseline_tau.discordant) << simd::PathName(path);
    EXPECT_EQ(tau.ties_x, baseline_tau.ties_x) << simd::PathName(path);
    EXPECT_EQ(tau.ties_y, baseline_tau.ties_y) << simd::PathName(path);
    EXPECT_EQ(tau.tau_b, baseline_tau.tau_b) << simd::PathName(path);
    EXPECT_EQ(tau.var_s, baseline_tau.var_s) << simd::PathName(path);
    EXPECT_EQ(tau.z, baseline_tau.z) << simd::PathName(path);
    EXPECT_EQ(tau.p_two_sided, baseline_tau.p_two_sided) << simd::PathName(path);
  }
}

TEST(SimdIntegrationTest, WaveletPrefixCountsIdenticalAcrossPaths) {
  DispatchGuard guard;
  Rng rng(43);
  const size_t m = 512;
  std::vector<uint32_t> codes(m);
  for (uint32_t& c : codes) {
    c = static_cast<uint32_t>(rng.UniformInt(0, static_cast<int64_t>(m) - 1));
  }
  ASSERT_TRUE(simd::ForcePath(simd::Path::kScalar));
  WaveletMatrix baseline(codes, m);
  for (simd::Path path : SupportedPaths()) {
    ASSERT_TRUE(simd::ForcePath(path));
    WaveletMatrix matrix(codes, m);  // captures this path's popcount
    for (int probe = 0; probe < 200; ++probe) {
      size_t prefix = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(m)));
      uint32_t value = static_cast<uint32_t>(rng.UniformInt(0, static_cast<int64_t>(m) - 1));
      int64_t want_lt, want_eq, got_lt, got_eq;
      baseline.PrefixCounts(prefix, value, &want_lt, &want_eq);
      matrix.PrefixCounts(prefix, value, &got_lt, &got_eq);
      EXPECT_EQ(got_lt, want_lt) << simd::PathName(path);
      EXPECT_EQ(got_eq, want_eq) << simd::PathName(path);
    }
  }
}

}  // namespace
}  // namespace scoded
