#include "stats/shard_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stats/hypothesis.h"
#include "table/table.h"

namespace scoded {
namespace {

// Bit-exact comparison of every TestResult field: the acceptance for the
// mergeable summaries is *identity* with the in-memory path, not
// closeness. EXPECT_EQ on doubles is deliberate.
void ExpectSameResult(const TestResult& expected, const TestResult& actual) {
  EXPECT_EQ(expected.method, actual.method);
  EXPECT_EQ(expected.statistic, actual.statistic);
  EXPECT_EQ(expected.p_value, actual.p_value);
  EXPECT_EQ(expected.dof, actual.dof);
  EXPECT_EQ(expected.n, actual.n);
  EXPECT_EQ(expected.effect, actual.effect);
  EXPECT_EQ(expected.used_exact, actual.used_exact);
  EXPECT_EQ(expected.strata_used, actual.strata_used);
  EXPECT_EQ(expected.strata_skipped, actual.strata_skipped);
  EXPECT_EQ(expected.approximation_suspect, actual.approximation_suspect);
  EXPECT_EQ(expected.min_expected, actual.min_expected);
}

// Rebuilds a shard with shard-local categorical dictionaries (first
// appearance within the shard), the way csv::ShardReader yields shards.
// Table::Gather keeps the parent dictionary, so without this the interning
// path through partial dictionaries would go untested.
Table LocalizeDictionaries(const Table& shard) {
  TableBuilder builder;
  for (size_t c = 0; c < shard.NumColumns(); ++c) {
    const Column& col = shard.column(c);
    const std::string& name = shard.schema().field(c).name;
    if (col.type() == ColumnType::kNumeric) {
      builder.AddColumn(name, col);
      continue;
    }
    std::vector<std::string> dict;
    std::vector<int32_t> codes(shard.NumRows(), -1);
    for (size_t row = 0; row < shard.NumRows(); ++row) {
      if (col.IsNull(row)) {
        continue;
      }
      const std::string& value = col.CategoryAt(row);
      int32_t code = -1;
      for (size_t d = 0; d < dict.size(); ++d) {
        if (dict[d] == value) {
          code = static_cast<int32_t>(d);
          break;
        }
      }
      if (code < 0) {
        code = static_cast<int32_t>(dict.size());
        dict.push_back(value);
      }
      codes[row] = code;
    }
    builder.AddColumn(name, Column::CategoricalFromCodes(std::move(codes), std::move(dict)));
  }
  Result<Table> rebuilt = std::move(builder).Build();
  EXPECT_TRUE(rebuilt.ok()) << rebuilt.status().message();
  return std::move(rebuilt).value();
}

// Splits [0, n) at `cuts` (ascending, interior) into contiguous slices.
std::vector<std::vector<size_t>> SlicesOf(size_t n, const std::vector<size_t>& cuts) {
  std::vector<std::vector<size_t>> slices;
  size_t start = 0;
  auto flush = [&](size_t end) {
    std::vector<size_t> rows;
    for (size_t i = start; i < end; ++i) {
      rows.push_back(i);
    }
    slices.push_back(std::move(rows));
    start = end;
  };
  for (size_t cut : cuts) {
    flush(cut);
  }
  flush(n);
  return slices;
}

// Runs the out-of-core path over the given contiguous shards: FromShard
// per slice, fold (sequentially or as a left-leaning tree), Finish, and —
// when the permutation fallback triggers — the second row pass.
Result<TestResult> ShardedResult(const Table& table, int x, int y, std::vector<int> z,
                                 const TestOptions& options,
                                 const std::vector<std::vector<size_t>>& slices, bool localize,
                                 bool tree_merge) {
  PairwiseShardSummary::Spec spec{x, y, std::move(z)};
  std::vector<Table> shards;
  std::vector<PairwiseShardSummary> partials;
  uint64_t offset = 0;
  for (const std::vector<size_t>& slice : slices) {
    Table shard = table.Gather(slice);
    if (localize) {
      shard = LocalizeDictionaries(shard);
    }
    partials.push_back(PairwiseShardSummary::FromShard(shard, spec, offset));
    offset += slice.size();
    shards.push_back(std::move(shard));
  }
  PairwiseShardSummary folded;
  if (tree_merge) {
    // Pairwise tree reduction in order: (s0·s1)·(s2·s3)·... — associativity
    // over row-contiguous summaries is part of the contract.
    while (partials.size() > 1) {
      std::vector<PairwiseShardSummary> next;
      for (size_t i = 0; i < partials.size(); i += 2) {
        if (i + 1 < partials.size()) {
          partials[i].Merge(partials[i + 1]);
        }
        next.push_back(std::move(partials[i]));
      }
      partials = std::move(next);
    }
    folded = std::move(partials[0]);
  } else {
    folded = PairwiseShardSummary(table, spec);
    for (const PairwiseShardSummary& partial : partials) {
      folded.Merge(partial);
    }
  }
  EXPECT_EQ(folded.rows(), static_cast<int64_t>(table.NumRows()));
  SCODED_ASSIGN_OR_RETURN(PairwiseShardSummary::FinishOutcome outcome, folded.Finish(options));
  if (outcome.needs_row_pass) {
    std::vector<PermutationStratum> strata(folded.NumPermutationStrata());
    for (const Table& shard : shards) {
      folded.CollectPermutationCodes(shard, &strata);
    }
    outcome.result.p_value = GPermutationFallbackPValue(
        strata, options.permutation_fallback_iterations, options.permutation_seed);
    outcome.result.used_exact = true;
  }
  return outcome.result;
}

// The property at the heart of the out-of-core feature: for any contiguous
// sharding of the rows, merged summaries reproduce the whole-table test
// bit for bit — sequentially folded, tree-folded, with global or
// shard-local dictionaries.
void CheckShardingInvariance(const Table& table, int x, int y, const std::vector<int>& z,
                             const TestOptions& options, uint64_t seed) {
  Result<TestResult> expected = IndependenceTest(table, x, y, z, options);
  ASSERT_TRUE(expected.ok()) << expected.status().message();
  Rng rng(seed);
  size_t n = table.NumRows();
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<size_t> cuts;
    if (trial > 0 && n > 1) {
      size_t num_cuts = static_cast<size_t>(rng.UniformInt(1, 5));
      for (size_t c = 0; c < num_cuts; ++c) {
        cuts.push_back(static_cast<size_t>(rng.UniformInt(1, static_cast<int64_t>(n) - 1)));
      }
      std::sort(cuts.begin(), cuts.end());
      cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    }
    std::vector<std::vector<size_t>> slices = SlicesOf(n, cuts);
    bool localize = trial % 2 == 1;
    bool tree = trial % 3 == 2;
    Result<TestResult> actual = ShardedResult(table, x, y, z, options, slices, localize, tree);
    ASSERT_TRUE(actual.ok()) << actual.status().message();
    ExpectSameResult(*expected, *actual);
  }
}

// Builds categorical codes with a first-appearance dictionary — the order
// csv::ReadFile (and the ShardReader dictionary merge) produces. The
// bit-identity contract is stated against that canonical order; a
// hand-permuted dictionary yields the same statistic but possibly
// different low-order float bits (different summation order).
Column InternFirstAppearance(const std::vector<const char*>& values) {
  std::vector<std::string> dict;
  std::vector<int32_t> codes;
  for (const char* value : values) {
    if (value == nullptr) {
      codes.push_back(-1);
      continue;
    }
    int32_t code = -1;
    for (size_t d = 0; d < dict.size(); ++d) {
      if (dict[d] == value) {
        code = static_cast<int32_t>(d);
        break;
      }
    }
    if (code < 0) {
      code = static_cast<int32_t>(dict.size());
      dict.push_back(value);
    }
    codes.push_back(code);
  }
  return Column::CategoricalFromCodes(std::move(codes), std::move(dict));
}

Table CarsLikeTable(size_t n, uint64_t seed, bool with_nulls) {
  Rng rng(seed);
  std::vector<std::string> models = {"civic", "corolla", "focus", "golf", "a4"};
  std::vector<std::string> colors = {"red", "blue", "white"};
  std::vector<const char*> model_values;
  std::vector<const char*> color_values;
  std::vector<double> price(n);
  std::vector<double> mileage(n);
  std::vector<bool> price_valid(n, true);
  for (size_t i = 0; i < n; ++i) {
    int64_t m = rng.UniformInt(0, static_cast<int64_t>(models.size()) - 1);
    model_values.push_back(models[m].c_str());
    // Color depends weakly on model so the G path sees real structure.
    int64_t c = rng.UniformInt(0, 9) < 3 ? m % 3
                                         : rng.UniformInt(0, static_cast<int64_t>(colors.size()) - 1);
    color_values.push_back(colors[c].c_str());
    price[i] = static_cast<double>(10 + m * 3 + rng.UniformInt(0, 6));
    mileage[i] = static_cast<double>(rng.UniformInt(0, 14));
    if (with_nulls) {
      if (rng.UniformInt(0, 19) == 0) {
        model_values.back() = nullptr;
      }
      if (rng.UniformInt(0, 19) == 1) {
        color_values.back() = nullptr;
      }
      if (rng.UniformInt(0, 19) == 2) {
        price_valid[i] = false;
      }
      if (rng.UniformInt(0, 29) == 3) {
        price[i] = 0.0;  // exercise the -0.0/+0.0 key normalisation
      } else if (rng.UniformInt(0, 29) == 4) {
        price[i] = -0.0;
      }
    }
  }
  Result<Table> table =
      std::move(TableBuilder()
                    .AddColumn("Model", InternFirstAppearance(model_values))
                    .AddColumn("Color", InternFirstAppearance(color_values))
                    .AddNumericWithNulls("Price", std::move(price), std::move(price_valid))
                    .AddNumeric("Mileage", std::move(mileage)))
          .Build();
  EXPECT_TRUE(table.ok());
  return std::move(table).value();
}

TEST(ShardStatsTest, UnconditionalGTestMatchesAtAnySharding) {
  Table table = CarsLikeTable(200, 11, /*with_nulls=*/true);
  CheckShardingInvariance(table, 0, 1, {}, TestOptions{}, 101);
}

TEST(ShardStatsTest, MixedPairQuantileGMatches) {
  Table table = CarsLikeTable(150, 12, /*with_nulls=*/true);
  CheckShardingInvariance(table, 0, 2, {}, TestOptions{}, 102);  // Model vs Price
}

TEST(ShardStatsTest, UnconditionalTauWithTiesMatches) {
  Table table = CarsLikeTable(120, 13, /*with_nulls=*/true);
  CheckShardingInvariance(table, 2, 3, {}, TestOptions{}, 103);  // Price vs Mileage
}

TEST(ShardStatsTest, SmallTieFreeTauUsesExactNullInBothPaths) {
  std::vector<double> x = {3.5, 1.25, 7.0, 2.5, 9.75, 4.125, 6.5, 0.5};
  std::vector<double> y = {2.0, 8.5, 1.75, 6.25, 0.125, 5.5, 3.25, 9.0};
  Result<Table> table = std::move(TableBuilder()
                                      .AddNumeric("X", std::move(x))
                                      .AddNumeric("Y", std::move(y)))
                            .Build();
  ASSERT_TRUE(table.ok());
  Result<TestResult> whole = IndependenceTest(*table, 0, 1, {}, TestOptions{});
  ASSERT_TRUE(whole.ok());
  EXPECT_TRUE(whole->used_exact);
  CheckShardingInvariance(*table, 0, 1, {}, TestOptions{}, 104);
}

TEST(ShardStatsTest, ConditionalGOnCategoricalZMatches) {
  Table table = CarsLikeTable(220, 14, /*with_nulls=*/true);
  CheckShardingInvariance(table, 1, 2, {0}, TestOptions{}, 105);  // Color vs Price | Model
}

TEST(ShardStatsTest, ConditionalTauMatchesIncludingSkippedStrata) {
  Table table = CarsLikeTable(180, 15, /*with_nulls=*/true);
  TestOptions options;
  options.min_stratum_size = 16;  // force some strata to be skipped
  CheckShardingInvariance(table, 2, 3, {0}, options, 106);  // Price vs Mileage | Model
}

TEST(ShardStatsTest, NumericZIsQuantileBinnedIdentically) {
  Rng rng(16);
  size_t n = 240;
  std::vector<double> zv(n);
  std::vector<double> xv(n);
  std::vector<std::string> yv;
  for (size_t i = 0; i < n; ++i) {
    zv[i] = rng.Uniform(0.0, 100.0);  // far more than condition_max_distinct values
    xv[i] = static_cast<double>(rng.UniformInt(0, 8)) + zv[i] / 200.0;
    yv.push_back(rng.UniformInt(0, 1) == 0 ? "lo" : "hi");
  }
  Result<Table> table = std::move(TableBuilder()
                                      .AddNumeric("X", std::move(xv))
                                      .AddCategorical("Y", yv)
                                      .AddNumeric("Z", std::move(zv)))
                            .Build();
  ASSERT_TRUE(table.ok());
  Result<TestResult> whole = IndependenceTest(*table, 0, 1, {2}, TestOptions{});
  ASSERT_TRUE(whole.ok());
  EXPECT_GT(whole->strata_used, size_t{1});
  CheckShardingInvariance(*table, 0, 1, {2}, TestOptions{}, 107);
}

TEST(ShardStatsTest, NonNullNaNValuesFollowTheInMemoryConventions) {
  double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> x = {1.0, 2.0, nan, 4.0, 5.0, nan, 7.0, 8.0, 2.0, 3.0, 1.5, 6.0};
  std::vector<double> y = {2.0, 1.0, 3.0, nan, 5.0, 6.0, 7.0, nan, 2.5, 3.5, 0.5, 4.0};
  std::vector<bool> all_valid(x.size(), true);  // NaN but NOT null
  std::vector<bool> all_valid2(x.size(), true);
  Result<Table> table =
      std::move(TableBuilder()
                    .AddNumericWithNulls("X", std::move(x), std::move(all_valid))
                    .AddNumericWithNulls("Y", std::move(y), std::move(all_valid2)))
          .Build();
  ASSERT_TRUE(table.ok());
  CheckShardingInvariance(*table, 0, 1, {}, TestOptions{}, 108);
}

TEST(ShardStatsTest, FisherRoutingMatches) {
  Rng rng(17);
  size_t n = 40;
  std::vector<std::string> a;
  std::vector<std::string> b;
  for (size_t i = 0; i < n; ++i) {
    bool flip = rng.UniformInt(0, 3) == 0;
    a.push_back(rng.UniformInt(0, 1) == 0 ? "yes" : "no");
    b.push_back(flip ? (a.back() == "yes" ? "up" : "down")
                     : (rng.UniformInt(0, 1) == 0 ? "up" : "down"));
  }
  Result<Table> table =
      std::move(TableBuilder().AddCategorical("A", a).AddCategorical("B", b)).Build();
  ASSERT_TRUE(table.ok());
  TestOptions options;
  options.use_fisher_for_2x2 = true;
  Result<TestResult> whole = IndependenceTest(*table, 0, 1, {}, options);
  ASSERT_TRUE(whole.ok());
  EXPECT_TRUE(whole->used_exact);  // Fisher fired
  CheckShardingInvariance(*table, 0, 1, {}, options, 109);
}

TEST(ShardStatsTest, PermutationFallbackMatchesViaSecondPass) {
  // Near-unique categories: dof >= n makes the χ² approximation grossly
  // inadequate, forcing the Monte-Carlo fallback in both paths.
  Rng rng(18);
  size_t n = 60;
  std::vector<std::string> a;
  std::vector<std::string> b;
  for (size_t i = 0; i < n; ++i) {
    a.push_back("a" + std::to_string(rng.UniformInt(0, 29)));
    b.push_back("b" + std::to_string(rng.UniformInt(0, 29)));
  }
  Result<Table> table =
      std::move(TableBuilder().AddCategorical("A", a).AddCategorical("B", b)).Build();
  ASSERT_TRUE(table.ok());
  TestOptions options;
  options.permutation_fallback_iterations = 50;
  Result<TestResult> whole = IndependenceTest(*table, 0, 1, {}, options);
  ASSERT_TRUE(whole.ok());
  EXPECT_TRUE(whole->used_exact);  // fallback fired
  CheckShardingInvariance(*table, 0, 1, {}, options, 110);
}

TEST(ShardStatsTest, StratifiedPermutationFallbackMatches) {
  Rng rng(19);
  size_t n = 90;
  std::vector<std::string> a;
  std::vector<std::string> b;
  std::vector<std::string> z;
  for (size_t i = 0; i < n; ++i) {
    a.push_back("a" + std::to_string(rng.UniformInt(0, 24)));
    b.push_back("b" + std::to_string(rng.UniformInt(0, 24)));
    z.push_back(rng.UniformInt(0, 1) == 0 ? "east" : "west");
  }
  Result<Table> table = std::move(TableBuilder()
                                      .AddCategorical("A", a)
                                      .AddCategorical("B", b)
                                      .AddCategorical("Z", z))
                            .Build();
  ASSERT_TRUE(table.ok());
  TestOptions options;
  options.permutation_fallback_iterations = 50;
  Result<TestResult> whole = IndependenceTest(*table, 0, 1, {2}, options);
  ASSERT_TRUE(whole.ok());
  EXPECT_TRUE(whole->used_exact);
  CheckShardingInvariance(*table, 0, 1, {2}, options, 111);
}

TEST(ShardStatsTest, SpearmanIsRefused) {
  Table table = CarsLikeTable(30, 20, /*with_nulls=*/false);
  PairwiseShardSummary summary(table, {2, 3, {}});
  summary.Accumulate(table, 0);
  TestOptions options;
  options.numeric_method = NumericMethod::kSpearman;
  Result<PairwiseShardSummary::FinishOutcome> outcome = summary.Finish(options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnimplemented);
}

TEST(ShardStatsTest, EmptyTableMatches) {
  Result<Table> table = std::move(TableBuilder()
                                      .AddNumeric("X", {})
                                      .AddNumeric("Y", {})
                                      .AddCategorical("Z", {}))
                            .Build();
  ASSERT_TRUE(table.ok());
  for (const std::vector<int>& z : std::vector<std::vector<int>>{{}, {2}}) {
    Result<TestResult> whole = IndependenceTest(*table, 0, 1, z, TestOptions{});
    ASSERT_TRUE(whole.ok());
    PairwiseShardSummary summary(*table, {0, 1, z});
    Result<PairwiseShardSummary::FinishOutcome> outcome = summary.Finish(TestOptions{});
    ASSERT_TRUE(outcome.ok()) << outcome.status().message();
    EXPECT_FALSE(outcome->needs_row_pass);
    ExpectSameResult(*whole, outcome->result);
  }
}

}  // namespace
}  // namespace scoded
