// Edge cases of the common/net socket helpers and the hardened obs
// metrics endpoint: short reads, partial sends, EINTR, peer hang-ups
// (EPIPE), oversized request heads, socket deadlines, and the
// stalled-client starvation fix.

#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/net.h"
#include "obs/export.h"

namespace scoded {
namespace {

using net::DialLoopback;
using net::TcpConn;
using net::TcpListener;

// A connected loopback socket pair: client dialed into server.
struct ConnPair {
  TcpConn client;
  TcpConn server;
};

void MakeConnectedPair(ConnPair* pair) {
  Result<TcpListener> listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  std::thread acceptor([&] {
    Result<TcpConn> accepted = listener->Accept();
    if (accepted.ok()) {
      pair->server = std::move(accepted).value();
    }
  });
  Result<TcpConn> client = DialLoopback(listener->port());
  acceptor.join();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  pair->client = std::move(client).value();
  ASSERT_TRUE(pair->server.valid());
}

std::string Pattern(size_t n) {
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>('a' + (i % 26)));
  }
  return out;
}

TEST(NetEdgeTest, ReadExactAssemblesShortReads) {
  ConnPair pair;
  ASSERT_NO_FATAL_FAILURE(MakeConnectedPair(&pair));

  const std::string message = Pattern(10000);
  // Dribble the payload in 97-byte writes with pauses, so the reader sees
  // many short reads and must assemble them.
  std::thread writer([&] {
    for (size_t off = 0; off < message.size(); off += 97) {
      ASSERT_TRUE(pair.server.WriteAll(message.substr(off, 97)).ok());
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  Result<std::string> got = pair.client.ReadExact(message.size());
  writer.join();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, message);
}

TEST(NetEdgeTest, ReadExactReportsCleanEofAsUnavailable) {
  ConnPair pair;
  ASSERT_NO_FATAL_FAILURE(MakeConnectedPair(&pair));
  pair.server.Close();

  Result<std::string> got = pair.client.ReadExact(16);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
}

TEST(NetEdgeTest, ReadExactReportsMidMessageEofAsDataLoss) {
  ConnPair pair;
  ASSERT_NO_FATAL_FAILURE(MakeConnectedPair(&pair));
  ASSERT_TRUE(pair.server.WriteAll("abc").ok());
  pair.server.Close();

  Result<std::string> got = pair.client.ReadExact(16);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
}

TEST(NetEdgeTest, WriteAllCompletesPartialSendsThroughTinyBuffers) {
  ConnPair pair;
  ASSERT_NO_FATAL_FAILURE(MakeConnectedPair(&pair));

  // Shrink the send buffer so a 256 KiB write cannot complete in one
  // send() and WriteAll must loop through many partial completions while
  // the reader drains concurrently.
  int tiny = 4096;
  ::setsockopt(pair.client.fd(), SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny));

  const std::string message = Pattern(256 << 10);
  std::thread writer([&] { ASSERT_TRUE(pair.client.WriteAll(message).ok()); });
  Result<std::string> got = pair.server.ReadExact(message.size());
  writer.join();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->size(), message.size());
  EXPECT_EQ(*got, message);
}

// EINTR injection: a no-op handler installed WITHOUT SA_RESTART makes
// every signal delivery abort the blocking recv with EINTR, which the
// helpers must transparently retry.
std::atomic<int> g_sigusr1_count{0};
void CountSigusr1(int) { g_sigusr1_count.fetch_add(1); }

TEST(NetEdgeTest, ReadExactRetriesEintr) {
  struct sigaction action {};
  action.sa_handler = CountSigusr1;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction saved {};
  ASSERT_EQ(sigaction(SIGUSR1, &action, &saved), 0);

  ConnPair pair;
  ASSERT_NO_FATAL_FAILURE(MakeConnectedPair(&pair));

  Result<std::string> got = InternalError("not run");
  std::thread reader([&] { got = pair.client.ReadExact(64); });
  // Pepper the blocked reader with signals, then send the payload.
  for (int i = 0; i < 20; ++i) {
    pthread_kill(reader.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(pair.server.WriteAll(Pattern(64)).ok());
  reader.join();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->size(), 64u);
  EXPECT_GT(g_sigusr1_count.load(), 0);
  sigaction(SIGUSR1, &saved, nullptr);
}

TEST(NetEdgeTest, WriteToHungUpPeerFailsWithUnavailableNotSigpipe) {
  ConnPair pair;
  ASSERT_NO_FATAL_FAILURE(MakeConnectedPair(&pair));
  pair.server.Close();  // peer hangs up

  // The first write may land in the kernel buffer; keep writing until the
  // RST surfaces. MSG_NOSIGNAL means the process survives (no SIGPIPE) and
  // the caller sees kUnavailable.
  Status status = OkStatus();
  const std::string chunk = Pattern(64 * 1024);
  for (int i = 0; i < 64 && status.ok(); ++i) {
    status = pair.client.WriteAll(chunk);
  }
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();
}

TEST(NetEdgeTest, RecvDeadlineFailsWithDeadlineExceeded) {
  ConnPair pair;
  ASSERT_NO_FATAL_FAILURE(MakeConnectedPair(&pair));

  ASSERT_TRUE(pair.client.SetRecvTimeout(50).ok());
  Result<std::string> got = pair.client.ReadExact(1);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded)
      << got.status().ToString();

  // ReadUntil honors the same deadline.
  Result<std::string> until = pair.client.ReadUntil("\r\n\r\n", 1024);
  ASSERT_FALSE(until.ok());
  EXPECT_EQ(until.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(NetEdgeTest, SetTimeoutRejectsBadArguments) {
  TcpConn closed;
  EXPECT_EQ(closed.SetRecvTimeout(100).code(), StatusCode::kFailedPrecondition);

  ConnPair pair;
  ASSERT_NO_FATAL_FAILURE(MakeConnectedPair(&pair));
  EXPECT_EQ(pair.client.SetRecvTimeout(-1).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(pair.client.SetSendTimeout(0).ok());  // 0 disarms
}

TEST(NetEdgeTest, ReadUntilStopsAtMaxBytesWithoutDelimiter) {
  ConnPair pair;
  ASSERT_NO_FATAL_FAILURE(MakeConnectedPair(&pair));

  ASSERT_TRUE(pair.server.WriteAll(Pattern(4096)).ok());
  Result<std::string> got = pair.client.ReadUntil("\r\n\r\n", 1024);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->size(), 1024u);
  EXPECT_EQ(got->find("\r\n\r\n"), std::string::npos);
}

#if !defined(SCODED_OBS_DISABLED)

Result<std::string> HttpGet(uint16_t port, const std::string& path) {
  SCODED_ASSIGN_OR_RETURN(TcpConn conn, DialLoopback(port));
  SCODED_RETURN_IF_ERROR(conn.SetRecvTimeout(10000));
  SCODED_RETURN_IF_ERROR(
      conn.WriteAll("GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n"));
  conn.ShutdownWrite();
  return conn.ReadAll(4u << 20);
}

// The starvation bug this PR fixes: a client that connects and never
// writes used to park the single-threaded accept loop forever, starving
// every later scrape. With per-connection deadlines the stalled client is
// cut loose (408) and /metrics stays responsive.
TEST(MetricsServerHardeningTest, StalledClientDoesNotStarveMetrics) {
  obs::MetricsServer& server = obs::MetricsServer::Global();
  ASSERT_FALSE(server.running());
  server.set_conn_deadline_millis(200);
  ASSERT_TRUE(server.Start(0).ok());
  uint16_t port = server.port();

  // A never-writing connection, held open for the whole test.
  Result<TcpConn> stalled = DialLoopback(port);
  ASSERT_TRUE(stalled.ok());
  // Give the accept loop a moment to pick it up and block on its head.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  auto start = std::chrono::steady_clock::now();
  Result<std::string> healthz = HttpGet(port, "/healthz");
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(healthz.ok()) << healthz.status().ToString();
  EXPECT_NE(healthz->find("200 OK"), std::string::npos);
  // Served once the stalled client timed out — well under the old forever.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            5000);

  // The stalled client itself got a 408 before the close.
  ASSERT_TRUE(stalled->SetRecvTimeout(10000).ok());
  Result<std::string> stalled_response = stalled->ReadAll(4096);
  ASSERT_TRUE(stalled_response.ok()) << stalled_response.status().ToString();
  EXPECT_NE(stalled_response->find("408 Request Timeout"), std::string::npos);

  server.Stop();
  server.set_conn_deadline_millis(obs::MetricsServer::kConnDeadlineMillis);
}

TEST(MetricsServerHardeningTest, OversizedRequestHeadGets431) {
  obs::MetricsServer& server = obs::MetricsServer::Global();
  ASSERT_FALSE(server.running());
  ASSERT_TRUE(server.Start(0).ok());
  uint16_t port = server.port();

  Result<TcpConn> conn = DialLoopback(port);
  ASSERT_TRUE(conn.ok());
  // A request head that never terminates, exactly at the 8 KiB cap (so the
  // server consumes every byte we sent — no unread input means its close
  // is a FIN, not an RST that would eat the 431 on the way back).
  std::string huge = "GET /metrics HTTP/1.0\r\nX-Filler: ";
  huge += Pattern(obs::MetricsServer::kMaxRequestHead);
  huge.resize(obs::MetricsServer::kMaxRequestHead);
  ASSERT_TRUE(conn->WriteAll(huge).ok());
  ASSERT_TRUE(conn->SetRecvTimeout(10000).ok());
  Result<std::string> response = conn->ReadAll(4096);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response->find("431 Request Header Fields Too Large"), std::string::npos);

  // And the endpoint still serves the next well-formed request.
  Result<std::string> healthz = HttpGet(port, "/healthz");
  ASSERT_TRUE(healthz.ok());
  EXPECT_NE(healthz->find("200 OK"), std::string::npos);

  server.Stop();
}

#endif  // !SCODED_OBS_DISABLED

}  // namespace
}  // namespace scoded
