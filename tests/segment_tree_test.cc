#include "stats/segment_tree.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scoded {
namespace {

TEST(SegmentTreeTest, EmptyTree) {
  SegmentTree tree(0);
  EXPECT_EQ(tree.Total(), 0);
  EXPECT_EQ(tree.Sum(0, 10), 0);
}

TEST(SegmentTreeTest, SingleElement) {
  SegmentTree tree(1);
  tree.Add(0, 5);
  EXPECT_EQ(tree.Sum(0, 0), 5);
  EXPECT_EQ(tree.Total(), 5);
}

TEST(SegmentTreeTest, BasicRangeSums) {
  SegmentTree tree(8);
  for (size_t i = 0; i < 8; ++i) {
    tree.Add(i, static_cast<int64_t>(i + 1));
  }
  EXPECT_EQ(tree.Sum(0, 7), 36);
  EXPECT_EQ(tree.Sum(2, 4), 3 + 4 + 5);
  EXPECT_EQ(tree.PrefixSum(3), 1 + 2 + 3 + 4);
  EXPECT_EQ(tree.SuffixSum(6), 7 + 8);
}

TEST(SegmentTreeTest, InvertedAndClampedRanges) {
  SegmentTree tree(4);
  tree.Add(0, 1);
  tree.Add(3, 1);
  EXPECT_EQ(tree.Sum(3, 1), 0);
  EXPECT_EQ(tree.Sum(2, 100), 1);
  EXPECT_EQ(tree.Sum(100, 200), 0);
  EXPECT_EQ(tree.SuffixSum(4), 0);
}

TEST(SegmentTreeTest, NonPowerOfTwoSize) {
  SegmentTree tree(5);
  for (size_t i = 0; i < 5; ++i) {
    tree.Add(i, 1);
  }
  EXPECT_EQ(tree.Total(), 5);
  EXPECT_EQ(tree.Sum(1, 3), 3);
}

TEST(SegmentTreeTest, NegativeDeltasAndClear) {
  SegmentTree tree(4);
  tree.Add(2, 7);
  tree.Add(2, -3);
  EXPECT_EQ(tree.Sum(2, 2), 4);
  tree.Clear();
  EXPECT_EQ(tree.Total(), 0);
}

TEST(FenwickTreeTest, MatchesBasicSums) {
  FenwickTree tree(8);
  for (size_t i = 0; i < 8; ++i) {
    tree.Add(i, static_cast<int64_t>(i + 1));
  }
  EXPECT_EQ(tree.Sum(0, 7), 36);
  EXPECT_EQ(tree.Sum(2, 4), 12);
  EXPECT_EQ(tree.PrefixSum(0), 1);
  EXPECT_EQ(tree.Total(), 36);
}

// Property test: segment tree, Fenwick tree, and a brute-force array agree
// under random updates and queries, across a sweep of universe sizes.
class TreeEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TreeEquivalenceTest, RandomOperationsAgreeWithBruteForce) {
  size_t n = GetParam();
  SegmentTree seg(n);
  FenwickTree fen(n);
  std::vector<int64_t> brute(n, 0);
  Rng rng(static_cast<uint64_t>(n) * 7919 + 1);
  for (int op = 0; op < 500; ++op) {
    size_t pos = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    int64_t delta = rng.UniformInt(-3, 5);
    seg.Add(pos, delta);
    fen.Add(pos, delta);
    brute[pos] += delta;

    size_t lo = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    size_t hi = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    if (lo > hi) {
      std::swap(lo, hi);
    }
    int64_t expected = 0;
    for (size_t i = lo; i <= hi; ++i) {
      expected += brute[i];
    }
    EXPECT_EQ(seg.Sum(lo, hi), expected) << "n=" << n << " [" << lo << "," << hi << "]";
    EXPECT_EQ(fen.Sum(lo, hi), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeEquivalenceTest,
                         ::testing::Values(1, 2, 3, 7, 8, 16, 33, 100, 255));

}  // namespace
}  // namespace scoded
