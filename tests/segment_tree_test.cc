#include "stats/segment_tree.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scoded {
namespace {

TEST(SegmentTreeTest, EmptyTree) {
  SegmentTree tree(0);
  EXPECT_EQ(tree.Total(), 0);
  EXPECT_EQ(tree.Sum(0, 10), 0);
}

TEST(SegmentTreeTest, SingleElement) {
  SegmentTree tree(1);
  tree.Add(0, 5);
  EXPECT_EQ(tree.Sum(0, 0), 5);
  EXPECT_EQ(tree.Total(), 5);
}

TEST(SegmentTreeTest, BasicRangeSums) {
  SegmentTree tree(8);
  for (size_t i = 0; i < 8; ++i) {
    tree.Add(i, static_cast<int64_t>(i + 1));
  }
  EXPECT_EQ(tree.Sum(0, 7), 36);
  EXPECT_EQ(tree.Sum(2, 4), 3 + 4 + 5);
  EXPECT_EQ(tree.PrefixSum(3), 1 + 2 + 3 + 4);
  EXPECT_EQ(tree.SuffixSum(6), 7 + 8);
}

TEST(SegmentTreeTest, InvertedAndClampedRanges) {
  SegmentTree tree(4);
  tree.Add(0, 1);
  tree.Add(3, 1);
  EXPECT_EQ(tree.Sum(3, 1), 0);
  EXPECT_EQ(tree.Sum(2, 100), 1);
  EXPECT_EQ(tree.Sum(100, 200), 0);
  EXPECT_EQ(tree.SuffixSum(4), 0);
}

TEST(SegmentTreeTest, NonPowerOfTwoSize) {
  SegmentTree tree(5);
  for (size_t i = 0; i < 5; ++i) {
    tree.Add(i, 1);
  }
  EXPECT_EQ(tree.Total(), 5);
  EXPECT_EQ(tree.Sum(1, 3), 3);
}

TEST(SegmentTreeTest, NegativeDeltasAndClear) {
  SegmentTree tree(4);
  tree.Add(2, 7);
  tree.Add(2, -3);
  EXPECT_EQ(tree.Sum(2, 2), 4);
  tree.Clear();
  EXPECT_EQ(tree.Total(), 0);
}

TEST(FenwickTreeTest, MatchesBasicSums) {
  FenwickTree tree(8);
  for (size_t i = 0; i < 8; ++i) {
    tree.Add(i, static_cast<int64_t>(i + 1));
  }
  EXPECT_EQ(tree.Sum(0, 7), 36);
  EXPECT_EQ(tree.Sum(2, 4), 12);
  EXPECT_EQ(tree.PrefixSum(0), 1);
  EXPECT_EQ(tree.Total(), 36);
}

// Property test: segment tree, Fenwick tree, and a brute-force array agree
// under random updates and queries, across a sweep of universe sizes.
class TreeEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TreeEquivalenceTest, RandomOperationsAgreeWithBruteForce) {
  size_t n = GetParam();
  SegmentTree seg(n);
  FenwickTree fen(n);
  std::vector<int64_t> brute(n, 0);
  Rng rng(static_cast<uint64_t>(n) * 7919 + 1);
  for (int op = 0; op < 500; ++op) {
    size_t pos = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    int64_t delta = rng.UniformInt(-3, 5);
    seg.Add(pos, delta);
    fen.Add(pos, delta);
    brute[pos] += delta;

    size_t lo = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    size_t hi = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    if (lo > hi) {
      std::swap(lo, hi);
    }
    int64_t expected = 0;
    for (size_t i = lo; i <= hi; ++i) {
      expected += brute[i];
    }
    EXPECT_EQ(seg.Sum(lo, hi), expected) << "n=" << n << " [" << lo << "," << hi << "]";
    EXPECT_EQ(fen.Sum(lo, hi), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeEquivalenceTest,
                         ::testing::Values(1, 2, 3, 7, 8, 16, 33, 100, 255));

TEST(VersionedPrefixCounterTest, EmptyDomain) {
  VersionedPrefixCounter counter(0);
  EXPECT_EQ(counter.CountLess(0, 0), 0);
  EXPECT_EQ(counter.Total(0), 0);
}

TEST(VersionedPrefixCounterTest, OldVersionsStayReadable) {
  VersionedPrefixCounter counter(4);
  int32_t v1 = counter.Add(0, 2);
  int32_t v2 = counter.Add(v1, 0);
  int32_t v3 = counter.Add(v2, 2);
  // Version 0 is still the empty multiset.
  EXPECT_EQ(counter.CountLess(0, 4), 0);
  EXPECT_EQ(counter.CountLess(v1, 3), 1);
  EXPECT_EQ(counter.CountLess(v2, 1), 1);
  EXPECT_EQ(counter.CountLess(v2, 3), 2);
  EXPECT_EQ(counter.CountLess(v3, 3), 3);
  EXPECT_EQ(counter.Total(v3), 3);
  // pos >= domain counts everything.
  EXPECT_EQ(counter.CountLess(v3, 100), 3);
}

TEST(VersionedPrefixCounterTest, RandomVersionsMatchBruteForce) {
  const size_t domain = 37;
  VersionedPrefixCounter counter(domain);
  std::vector<std::vector<int>> snapshots;  // snapshots[v] = counts at version v
  std::vector<int32_t> versions = {0};
  snapshots.push_back(std::vector<int>(domain, 0));
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    size_t pos = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(domain) - 1));
    int32_t v = counter.Add(versions.back(), pos);
    versions.push_back(v);
    std::vector<int> snap = snapshots.back();
    snap[pos] += 1;
    snapshots.push_back(std::move(snap));
  }
  for (size_t v = 0; v < versions.size(); ++v) {
    for (size_t p : {size_t{0}, size_t{1}, size_t{10}, domain / 2, domain - 1, domain}) {
      int64_t expected = 0;
      for (size_t i = 0; i < std::min(p, domain); ++i) {
        expected += snapshots[v][i];
      }
      EXPECT_EQ(counter.CountLess(versions[v], p), expected) << "v=" << v << " p=" << p;
    }
  }
}

TEST(WaveletMatrixTest, EmptySequence) {
  WaveletMatrix wm(std::vector<uint32_t>{}, 0);
  int64_t lt = -1;
  int64_t eq = -1;
  wm.PrefixCounts(5, 0, &lt, &eq);
  EXPECT_EQ(lt, 0);
  EXPECT_EQ(eq, 0);
}

TEST(WaveletMatrixTest, SingleValueDomain) {
  // domain = 1 needs zero bit levels: everything is code 0.
  WaveletMatrix wm(std::vector<uint32_t>(10, 0), 1);
  int64_t lt;
  int64_t eq;
  wm.PrefixCounts(4, 0, &lt, &eq);
  EXPECT_EQ(lt, 0);
  EXPECT_EQ(eq, 4);
  wm.PrefixCounts(10, 1, &lt, &eq);  // v >= domain counts everything as less
  EXPECT_EQ(lt, 10);
  EXPECT_EQ(eq, 0);
}

TEST(WaveletMatrixTest, RandomPrefixCountsMatchBruteForce) {
  Rng rng(314);
  const size_t domain = 45;  // non-power-of-two
  std::vector<uint32_t> codes(300);
  for (uint32_t& c : codes) {
    c = static_cast<uint32_t>(rng.UniformInt(0, static_cast<int64_t>(domain) - 1));
  }
  WaveletMatrix wm(codes, domain);
  EXPECT_EQ(wm.size(), codes.size());
  for (size_t k : {size_t{0}, size_t{1}, size_t{63}, size_t{64}, size_t{65}, size_t{150},
                   codes.size(), codes.size() + 9}) {
    for (uint32_t v = 0; v <= domain + 1; ++v) {
      int64_t expected_lt = 0;
      int64_t expected_eq = 0;
      for (size_t i = 0; i < std::min(k, codes.size()); ++i) {
        expected_lt += codes[i] < v;
        expected_eq += codes[i] == v;
      }
      if (v >= domain) {
        expected_eq = 0;  // contract: out-of-domain v counts everything as less
      }
      int64_t lt;
      int64_t eq;
      wm.PrefixCounts(k, v, &lt, &eq);
      ASSERT_EQ(lt, expected_lt) << "k=" << k << " v=" << v;
      ASSERT_EQ(eq, expected_eq) << "k=" << k << " v=" << v;
    }
  }
}

// Brute-force quadrant counts for one candidate point against a point set.
ConcordanceIndex::Quadrants BruteScore(const std::vector<double>& xs,
                                       const std::vector<double>& ys, double x, double y) {
  ConcordanceIndex::Quadrants q;
  for (size_t i = 0; i < xs.size(); ++i) {
    double dx = (x > xs[i]) - (x < xs[i]);
    double dy = (y > ys[i]) - (y < ys[i]);
    double w = dx * dy;
    if (w > 0) {
      ++q.concordant;
    } else if (w < 0) {
      ++q.discordant;
    }
  }
  return q;
}

// Property test: streaming scores from the logarithmic-block index equal the
// brute-force quadrant counts at every step, across enough points to force
// multiple buffer compactions and block merges (kBufferCap = 256, so 1200
// points exercise four cascades up to a 1024-point block).
TEST(ConcordanceIndexTest, StreamingScoresMatchBruteForce) {
  Rng rng(7);
  ConcordanceIndex index;
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 1200; ++i) {
    // Coarse grid so x-ties and y-ties are frequent.
    double x = static_cast<double>(rng.UniformInt(0, 25));
    double y = static_cast<double>(rng.UniformInt(0, 25));
    ConcordanceIndex::Quadrants expected = BruteScore(xs, ys, x, y);
    ConcordanceIndex::Quadrants got = index.Score(x, y);
    ASSERT_EQ(got.concordant, expected.concordant) << "i=" << i;
    ASSERT_EQ(got.discordant, expected.discordant) << "i=" << i;
    EXPECT_EQ(index.InsertAndScore(x, y), expected.concordant - expected.discordant);
    xs.push_back(x);
    ys.push_back(y);
    EXPECT_EQ(index.size(), xs.size());
  }
  EXPECT_GT(index.compactions(), 0);
  EXPECT_GT(index.IndexBytes(), 0u);
}

TEST(ConcordanceIndexTest, AllTiedPointsScoreZero) {
  ConcordanceIndex index;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(index.InsertAndScore(1.0, 2.0), 0);
  }
  EXPECT_EQ(index.size(), 100u);
}

TEST(ConcordanceIndexTest, MonotoneStreamIsFullyConcordant) {
  ConcordanceIndex index;
  int64_t s = 0;
  for (int i = 0; i < 200; ++i) {
    s += index.InsertAndScore(static_cast<double>(i), static_cast<double>(i));
  }
  // S = n(n-1)/2 for a strictly increasing stream.
  EXPECT_EQ(s, 200 * 199 / 2);
}

}  // namespace
}  // namespace scoded
