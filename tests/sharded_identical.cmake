# Byte-for-byte acceptance for out-of-core checking: `scoded check` must
# print exactly the same line (and exit with the same code) whether the CSV
# is materialised in memory or streamed in shards, at 1 and 4 threads.
# Driven as a ctest entry: cmake -DSCODED_BIN=... -DFIXTURE=... -P this_file.
foreach(var SCODED_BIN FIXTURE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

set(constraints "Model _||_ Color" "Model !_||_ Price" "Price _||_ Mileage | Model")
set(alphas "0.05" "0.3" "0.05")

foreach(i RANGE 2)
  list(GET constraints ${i} sc)
  list(GET alphas ${i} alpha)
  execute_process(
    COMMAND ${SCODED_BIN} check --csv ${FIXTURE} --sc ${sc} --alpha ${alpha} --shard-rows 0
    OUTPUT_VARIABLE expected_out RESULT_VARIABLE expected_rc)
  foreach(threads 1 4)
    execute_process(
      COMMAND ${SCODED_BIN} check --csv ${FIXTURE} --sc ${sc} --alpha ${alpha}
              --shard-rows 3 --threads ${threads}
      OUTPUT_VARIABLE actual_out RESULT_VARIABLE actual_rc)
    if(NOT "${actual_out}" STREQUAL "${expected_out}")
      message(FATAL_ERROR "sharded output differs for '${sc}' at ${threads} threads:\n"
                          "in-memory: ${expected_out}sharded:   ${actual_out}")
    endif()
    if(NOT "${actual_rc}" STREQUAL "${expected_rc}")
      message(FATAL_ERROR "sharded exit code ${actual_rc} != in-memory ${expected_rc} for '${sc}'")
    endif()
  endforeach()
  # The env-var path must behave exactly like the flag.
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env SCODED_SHARD_ROWS=3
            ${SCODED_BIN} check --csv ${FIXTURE} --sc ${sc} --alpha ${alpha}
    OUTPUT_VARIABLE env_out RESULT_VARIABLE env_rc)
  if(NOT "${env_out}" STREQUAL "${expected_out}" OR NOT "${env_rc}" STREQUAL "${expected_rc}")
    message(FATAL_ERROR "SCODED_SHARD_ROWS path differs for '${sc}':\n"
                        "in-memory: ${expected_out}env:       ${env_out}")
  endif()
endforeach()
