// Tests for the observability layer: metrics registry, tracer, run
// telemetry, the JSON parser they rely on, and an end-to-end check that
// the CLI's --stats/--trace-out surface real numbers.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <atomic>

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace scoded {
namespace {

// ---------------------------------------------------------------- metrics

TEST(MetricsTest, CounterBasics) {
  obs::Metrics metrics;
  obs::Counter* counter = metrics.FindOrCreateCounter("test.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->Value(), 0);
  counter->Add();
  counter->Add(41);
  EXPECT_EQ(counter->Value(), 42);
  // Same name returns the same counter.
  EXPECT_EQ(metrics.FindOrCreateCounter("test.counter"), counter);
  counter->Reset();
  EXPECT_EQ(counter->Value(), 0);
}

TEST(MetricsTest, GaugeStoresDoubles) {
  obs::Metrics metrics;
  obs::Gauge* gauge = metrics.FindOrCreateGauge("test.gauge");
  EXPECT_EQ(gauge->Value(), 0.0);
  gauge->Set(3.25);
  EXPECT_EQ(gauge->Value(), 3.25);
  gauge->Set(-1e300);
  EXPECT_EQ(gauge->Value(), -1e300);
}

TEST(MetricsTest, ConcurrentCountersAreExact) {
  obs::Metrics metrics;
  obs::Counter* counter = metrics.FindOrCreateCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kIncrements; ++i) {
        counter->Add();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter->Value(), int64_t{kThreads} * kIncrements);
}

TEST(MetricsTest, ConcurrentHistogramKeepsEveryObservation) {
  obs::Metrics metrics;
  obs::Histogram* histogram = metrics.FindOrCreateHistogram("test.histogram");
  constexpr int kThreads = 4;
  constexpr int kObservations = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram] {
      for (int i = 0; i < kObservations; ++i) {
        histogram->Observe(i % 1000);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(histogram->Count(), int64_t{kThreads} * kObservations);
  // Σ (i % 1000) over one thread's loop, times kThreads.
  int64_t one_thread = 0;
  for (int i = 0; i < kObservations; ++i) {
    one_thread += i % 1000;
  }
  EXPECT_EQ(histogram->Sum(), kThreads * one_thread);
}

TEST(MetricsTest, HistogramQuantilesAreBucketUpperBounds) {
  obs::Metrics metrics;
  obs::Histogram* histogram = metrics.FindOrCreateHistogram("test.quantiles");
  for (int i = 0; i < 100; ++i) {
    histogram->Observe(10);  // bucket [8, 16) -> upper bound 15
  }
  EXPECT_EQ(histogram->ApproxQuantile(0.5), 15);
  EXPECT_EQ(histogram->ApproxQuantile(0.99), 15);
}

TEST(MetricsTest, QuantilesAreWithinTheLog2BucketBound) {
  // Log2 bucketing guarantees an estimate in [q, 2q): the reported value is
  // the upper bound of the bucket holding the true quantile, and buckets
  // are power-of-two wide. Check across a uniform 1..1024 population.
  obs::Metrics metrics;
  obs::Histogram* histogram = metrics.FindOrCreateHistogram("test.accuracy");
  for (int64_t v = 1; v <= 1024; ++v) {
    histogram->Observe(v);
  }
  for (double q : {0.50, 0.95, 0.99}) {
    int64_t truth = static_cast<int64_t>(q * 1024);
    int64_t estimate = histogram->ApproxQuantile(q);
    EXPECT_GE(estimate, truth) << "q=" << q;
    EXPECT_LE(estimate, 2 * truth) << "q=" << q;
  }
  // Degenerate quantiles stay in range.
  EXPECT_GE(histogram->ApproxQuantile(0.0), 1);
  EXPECT_LE(histogram->ApproxQuantile(1.0), 2047);
}

TEST(MetricsTest, SnapshotDuringConcurrentObservesStaysConsistent) {
  // Readers snapshot while writers observe; every snapshot must be valid
  // JSON and counts must be monotone non-decreasing across snapshots.
  obs::Metrics metrics;
  obs::Histogram* histogram = metrics.FindOrCreateHistogram("test.race");
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  constexpr int kMinObservations = 10000;  // guaranteed even if snapshots win the race
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([histogram, &stop] {
      int64_t v = 1;
      int done = 0;
      while (done < kMinObservations || !stop.load(std::memory_order_relaxed)) {
        histogram->Observe(v);
        v = v % 4096 + 1;
        ++done;
      }
    });
  }
  double last_count = 0.0;
  for (int i = 0; i < 200; ++i) {
    Result<JsonValue> parsed = ParseJson(metrics.SnapshotJson());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    const JsonValue* hist = parsed->Find("histograms")->Find("test.race");
    ASSERT_NE(hist, nullptr);
    double count = hist->Find("count")->number;
    EXPECT_GE(count, last_count);
    last_count = count;
  }
  stop.store(true);
  for (std::thread& writer : writers) {
    writer.join();
  }
  EXPECT_GE(histogram->Count(), int64_t{kWriters} * kMinObservations);
}

TEST(MetricsTest, SnapshotJsonIsValidAndComplete) {
  obs::Metrics metrics;
  metrics.FindOrCreateCounter("a.count")->Add(7);
  metrics.FindOrCreateGauge("b.gauge")->Set(2.5);
  metrics.FindOrCreateHistogram("c.hist")->Observe(100);
  Result<JsonValue> parsed = ParseJson(metrics.SnapshotJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* a = counters->Find("a.count");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->number, 7.0);
  const JsonValue* gauges = parsed->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->Find("b.gauge")->number, 2.5);
  const JsonValue* hist = parsed->Find("histograms");
  ASSERT_NE(hist, nullptr);
  const JsonValue* c = hist->Find("c.hist");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->Find("count")->number, 1.0);
  EXPECT_EQ(c->Find("sum")->number, 100.0);
}

// ----------------------------------------------------------------- tracer

TEST(TracerTest, DisabledTracerRecordsNothing) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Disable();
  tracer.Clear();
  {
    obs::ScopedSpan span("should_not_appear");
    span.Arg("key", int64_t{1});
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(tracer.NumEvents(), 0u);
  EXPECT_EQ(tracer.ToJson(), "[]");
}

// With SCODED_OBS_DISABLED, ScopedSpan is the compile-to-nothing shell:
// no events are ever produced, so the recording tests don't apply.
#if !defined(SCODED_OBS_DISABLED)

TEST(TracerTest, NestedSpansProduceWellFormedTraceJson) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.Enable();
  {
    obs::ScopedSpan outer("outer");
    outer.Arg("n", int64_t{42}).Arg("label", "hello \"quoted\"").Arg("ratio", 0.5);
    {
      obs::ScopedSpan inner("inner");
    }
  }
  tracer.Disable();
  ASSERT_EQ(tracer.NumEvents(), 2u);

  Result<JsonValue> parsed = ParseJson(tracer.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_array());
  ASSERT_EQ(parsed->array.size(), 2u);

  const JsonValue* outer = nullptr;
  const JsonValue* inner = nullptr;
  for (const JsonValue& event : parsed->array) {
    ASSERT_TRUE(event.is_object());
    EXPECT_EQ(event.Find("ph")->string_value, "X");
    ASSERT_TRUE(event.Find("ts")->is_number());
    ASSERT_TRUE(event.Find("dur")->is_number());
    if (event.Find("name")->string_value == "outer") {
      outer = &event;
    } else if (event.Find("name")->string_value == "inner") {
      inner = &event;
    }
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Nesting: the inner span's interval is contained in the outer's.
  double outer_start = outer->Find("ts")->number;
  double outer_end = outer_start + outer->Find("dur")->number;
  double inner_start = inner->Find("ts")->number;
  double inner_end = inner_start + inner->Find("dur")->number;
  EXPECT_GE(inner_start, outer_start);
  EXPECT_LE(inner_end, outer_end);
  // Arguments survive the round trip.
  const JsonValue* args = outer->Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->Find("n")->number, 42.0);
  EXPECT_EQ(args->Find("label")->string_value, "hello \"quoted\"");
  EXPECT_EQ(args->Find("ratio")->number, 0.5);
  tracer.Clear();
}

TEST(TracerTest, SpanCapturesEnableStateAtConstruction) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.Disable();
  {
    obs::ScopedSpan span("constructed_disabled");
    tracer.Enable();  // too late for this span
  }
  tracer.Disable();
  EXPECT_EQ(tracer.NumEvents(), 0u);
}

#endif  // !SCODED_OBS_DISABLED

// -------------------------------------------------------------- telemetry

TEST(TelemetryTest, PhasesMergeByName) {
  obs::RunTelemetry telemetry;
  telemetry.AddPhase("load", 2.0);
  telemetry.AddPhase("test", 1.0);
  telemetry.AddPhase("load", 3.0);
  ASSERT_EQ(telemetry.phases.size(), 2u);
  EXPECT_EQ(telemetry.phases[0].name, "load");
  EXPECT_EQ(telemetry.phases[0].ms, 5.0);
  EXPECT_EQ(telemetry.phases[0].calls, 2);
  EXPECT_EQ(telemetry.TotalMs(), 6.0);
}

TEST(TelemetryTest, CountersMergeByName) {
  obs::RunTelemetry telemetry;
  telemetry.AddCount("batches", 2);
  telemetry.AddCount("batches", 3);
  EXPECT_EQ(telemetry.Count("batches"), 5);
  EXPECT_EQ(telemetry.Count("missing"), 0);
}

TEST(TelemetryTest, MergeAccumulatesFieldWise) {
  obs::RunTelemetry a;
  a.AddPhase("test", 1.0);
  a.tests_executed = 3;
  a.exact_tests = 1;
  a.AddCount("ci_tests", 3);
  obs::RunTelemetry b;
  b.AddPhase("test", 2.0);
  b.tests_executed = 4;
  b.asymptotic_tests = 4;
  b.AddCount("ci_tests", 2);
  a.Merge(b);
  EXPECT_EQ(a.phases.size(), 1u);
  EXPECT_EQ(a.phases[0].ms, 3.0);
  EXPECT_EQ(a.tests_executed, 7);
  EXPECT_EQ(a.exact_tests, 1);
  EXPECT_EQ(a.asymptotic_tests, 4);
  EXPECT_EQ(a.Count("ci_tests"), 5);
}

TEST(TelemetryTest, ToJsonRoundTrips) {
  obs::RunTelemetry telemetry;
  telemetry.AddPhase("detect", 1.5);
  telemetry.tests_executed = 9;
  telemetry.rows_scanned = 1000;
  telemetry.AddCount("components", 2);
  Result<JsonValue> parsed = ParseJson(telemetry.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("tests_executed")->number, 9.0);
  EXPECT_EQ(parsed->Find("rows_scanned")->number, 1000.0);
  const JsonValue* phases = parsed->Find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->array.size(), 1u);
  EXPECT_EQ(phases->array[0].Find("name")->string_value, "detect");
  EXPECT_EQ(parsed->Find("counters")->Find("components")->number, 2.0);
}

TEST(TelemetryTest, PhaseTimerRecordsOnceWithExplicitStop) {
  obs::RunTelemetry telemetry;
  {
    obs::PhaseTimer timer(&telemetry, "work");
    timer.Stop();
    // Destructor must not double-record after Stop().
  }
  ASSERT_EQ(telemetry.phases.size(), 1u);
  EXPECT_EQ(telemetry.phases[0].calls, 1);
}

TEST(TelemetryTest, PhaseTimerToleratesNullTelemetry) {
  obs::PhaseTimer timer(nullptr, "span_only");
  timer.Stop();  // must not crash
}

// ------------------------------------------------------------ JSON parser

TEST(JsonParserTest, ParsesAllValueKinds) {
  Result<JsonValue> parsed =
      ParseJson(R"({"a": 1.5, "b": [true, false, null], "c": "x\ny", "d": {"e": -2e3}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("a")->number, 1.5);
  const JsonValue* b = parsed->Find("b");
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_TRUE(b->array[0].bool_value);
  EXPECT_FALSE(b->array[1].bool_value);
  EXPECT_TRUE(b->array[2].is_null());
  EXPECT_EQ(parsed->Find("c")->string_value, "x\ny");
  EXPECT_EQ(parsed->Find("d")->Find("e")->number, -2000.0);
}

TEST(JsonParserTest, UnicodeEscapesDecodeToUtf8) {
  Result<JsonValue> parsed = ParseJson(R"("Aé€")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value, "A\xC3\xA9\xE2\x82\xAC");  // A é €
}

TEST(JsonParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1, 2,]").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("1.2.3").ok());
}

TEST(JsonParserTest, WriterOutputParsesBack) {
  JsonWriter json;
  json.BeginObject();
  json.Key("esc").String("tab\there \"and\" backslash\\");
  json.Key("nums").BeginArray().Int(-5).Double(0.125).Uint(1u << 30).EndArray();
  json.EndObject();
  Result<JsonValue> parsed = ParseJson(json.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("esc")->string_value, "tab\there \"and\" backslash\\");
  EXPECT_EQ(parsed->Find("nums")->array[2].number, static_cast<double>(1u << 30));
}

TEST(JsonParserTest, SurrogatePairsCombineIntoOneCodePoint) {
  // U+1F600 (the grinning-face emoji) travels as the surrogate pair
  // \ud83d\ude00 and must decode to one 4-byte UTF-8 sequence, never to
  // two 3-byte CESU-8 halves.
  Result<JsonValue> parsed = ParseJson(R"("\ud83d\ude00")");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->string_value, "\xF0\x9F\x98\x80");

  // Mixed BMP and astral content.
  parsed = ParseJson(R"("x\ud83d\ude00y\u00e9")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value, "x\xF0\x9F\x98\x80y\xC3\xA9");
}

TEST(JsonParserTest, LoneSurrogatesAreRejected) {
  // A high surrogate with no continuation, followed by non-escape text.
  EXPECT_FALSE(ParseJson(R"("\ud83dxyz")").ok());
  // A high surrogate at end of string.
  EXPECT_FALSE(ParseJson(R"("\ud83d")").ok());
  // A high surrogate followed by a non-surrogate escape.
  EXPECT_FALSE(ParseJson(R"("\ud83d\u0041")").ok());
  // Two high surrogates in a row.
  EXPECT_FALSE(ParseJson(R"("\ud83d\ud83d")").ok());
  // A bare low surrogate.
  EXPECT_FALSE(ParseJson(R"("\ude00")").ok());
}

TEST(JsonParserTest, AsciiWriterEscapesNonBmpAsSurrogatePairs) {
  JsonWriter json;
  json.SetAsciiOutput(true);
  json.String("A\xC3\xA9\xF0\x9F\x98\x80");  // "Aé😀"
  EXPECT_EQ(json.str(), R"("A\u00e9\ud83d\ude00")");

  // The escaped form parses back to the original UTF-8 bytes: a full
  // writer→parser round trip through the astral plane.
  Result<JsonValue> parsed = ParseJson(json.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->string_value, "A\xC3\xA9\xF0\x9F\x98\x80");
}

TEST(JsonParserTest, AsciiWriterReplacesMalformedUtf8) {
  JsonWriter json;
  json.SetAsciiOutput(true);
  // A lone continuation byte, an overlong encoding of '/', and a
  // truncated 4-byte lead: every malformed byte becomes U+FFFD instead of
  // leaking corrupt output (the overlong C0 AF is two bad bytes, as is the
  // truncated F0 9F).
  json.String("a\x80" "b\xC0\xAF" "c\xF0\x9F");
  Result<JsonValue> parsed = ParseJson(json.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << " in " << json.str();
  EXPECT_EQ(parsed->string_value,
            "a\xEF\xBF\xBD"
            "b\xEF\xBF\xBD\xEF\xBF\xBD"
            "c\xEF\xBF\xBD\xEF\xBF\xBD");
}

TEST(JsonParserTest, NonAsciiPassesThroughRawByDefault) {
  JsonWriter json;
  json.String("Aé😀");
  EXPECT_EQ(json.str(), "\"Aé😀\"");
  Result<JsonValue> parsed = ParseJson(json.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value, "Aé😀");
}

TEST(JsonParserTest, DoubleFullRoundTripsExactValues) {
  const double values[] = {0.1, 1.0 / 3.0, 5e-324, 1e308, -0.0, 12345.6789};
  for (double value : values) {
    JsonWriter json;
    json.DoubleFull(value);
    Result<JsonValue> parsed = ParseJson(json.str());
    ASSERT_TRUE(parsed.ok()) << json.str();
    EXPECT_EQ(parsed->number, value) << json.str();
    EXPECT_EQ(std::signbit(parsed->number), std::signbit(value)) << json.str();
  }
}

// ------------------------------------------------------ structured logging

TEST(LogTest, FormatLogRecordIsParseableJsonWithFlattenedFields) {
  std::string record = obs::FormatLogRecord(
      obs::LogLevel::kWarn, "load \"failed\"",
      {{"path", "a/b.csv"}, {"rows", 128}, {"ratio", 0.5}, {"retry", true}},
      /*span_id=*/7, /*ts_us=*/123456, /*tid=*/3);
  Result<JsonValue> parsed = ParseJson(record);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\nrecord: " << record;
  EXPECT_EQ(parsed->Find("ts_us")->number, 123456.0);
  EXPECT_EQ(parsed->Find("level")->string_value, "warn");
  EXPECT_EQ(parsed->Find("tid")->number, 3.0);
  EXPECT_EQ(parsed->Find("span")->number, 7.0);
  EXPECT_EQ(parsed->Find("msg")->string_value, "load \"failed\"");
  EXPECT_EQ(parsed->Find("path")->string_value, "a/b.csv");
  EXPECT_EQ(parsed->Find("rows")->number, 128.0);
  EXPECT_EQ(parsed->Find("ratio")->number, 0.5);
  EXPECT_TRUE(parsed->Find("retry")->bool_value);
  // Exactly one line, no trailing newline (the sink appends it).
  EXPECT_EQ(record.find('\n'), std::string::npos);
}

TEST(LogTest, SpanIdZeroIsOmitted) {
  std::string record = obs::FormatLogRecord(obs::LogLevel::kInfo, "no span", {},
                                            /*span_id=*/0, 1, /*tid=*/0);
  Result<JsonValue> parsed = ParseJson(record);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("span"), nullptr);
  EXPECT_NE(parsed->Find("tid"), nullptr);
}

TEST(LogTest, ParseLogLevelAcceptsTheDocumentedNamesOnly) {
  struct Case {
    const char* text;
    obs::LogLevel level;
  };
  for (const Case& c : {Case{"debug", obs::LogLevel::kDebug},
                        Case{"info", obs::LogLevel::kInfo},
                        Case{"warn", obs::LogLevel::kWarn},
                        Case{"error", obs::LogLevel::kError},
                        Case{"off", obs::LogLevel::kOff}}) {
    Result<obs::LogLevel> parsed = obs::ParseLogLevel(c.text);
    ASSERT_TRUE(parsed.ok()) << c.text;
    EXPECT_EQ(*parsed, c.level) << c.text;
    EXPECT_EQ(obs::LogLevelName(c.level), c.text);
  }
  EXPECT_FALSE(obs::ParseLogLevel("").ok());
  EXPECT_FALSE(obs::ParseLogLevel("verbose").ok());
  EXPECT_FALSE(obs::ParseLogLevel("WARN").ok());
}

TEST(LogTest, MinLevelFiltersLowerLevels) {
  obs::LogLevel saved = obs::MinLogLevel();
  obs::SetMinLogLevel(obs::LogLevel::kWarn);
  EXPECT_FALSE(obs::LogEnabled(obs::LogLevel::kDebug));
  EXPECT_FALSE(obs::LogEnabled(obs::LogLevel::kInfo));
  EXPECT_TRUE(obs::LogEnabled(obs::LogLevel::kWarn));
  EXPECT_TRUE(obs::LogEnabled(obs::LogLevel::kError));
  obs::SetMinLogLevel(obs::LogLevel::kOff);
  EXPECT_FALSE(obs::LogEnabled(obs::LogLevel::kError));
  obs::SetMinLogLevel(saved);
}

// -------------------------------------------------- CLI integration check

#if defined(SCODED_CLI_BIN) && defined(SCODED_FIXTURE_CSV)

std::string ReadAll(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return "";
  }
  std::string out;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out.append(buffer, n);
  }
  std::fclose(f);
  return out;
}

TEST(CliObservabilityTest, CheckWithStatsReportsExecutedTests) {
  std::string stats_path = ::testing::TempDir() + "/scoded_stats.json";
  std::string trace_path = ::testing::TempDir() + "/scoded_trace.json";
  std::string command = std::string(SCODED_CLI_BIN) + " check --csv " + SCODED_FIXTURE_CSV +
                        " --sc \"Model _||_ Color\" --alpha 0.05 --trace-out " + trace_path +
                        " --stats " + stats_path + " > /dev/null 2>&1";
  int rc = std::system(command.c_str());
  ASSERT_EQ(rc, 0) << "command failed: " << command;

  // --stats: telemetry with nonzero tests_executed and per-phase timings,
  // plus the process-wide metrics snapshot.
  Result<JsonValue> stats = ParseJson(ReadAll(stats_path));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const JsonValue* telemetry = stats->Find("telemetry");
  ASSERT_NE(telemetry, nullptr);
  EXPECT_GT(telemetry->Find("tests_executed")->number, 0.0);
  const JsonValue* phases = telemetry->Find("phases");
  ASSERT_NE(phases, nullptr);
  EXPECT_FALSE(phases->array.empty());
  const JsonValue* metrics = stats->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* executed = counters->Find("stats.tests_executed");
  ASSERT_NE(executed, nullptr);
  EXPECT_GT(executed->number, 0.0);

  // --trace-out: a Chrome trace-event array of complete events. (Empty
  // but still valid JSON when spans are compiled out.)
  Result<JsonValue> trace = ParseJson(ReadAll(trace_path));
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_TRUE(trace->is_array());
#if !defined(SCODED_OBS_DISABLED)
  EXPECT_FALSE(trace->array.empty());
#endif
  for (const JsonValue& event : trace->array) {
    EXPECT_EQ(event.Find("ph")->string_value, "X");
    EXPECT_TRUE(event.Find("ts")->is_number());
    EXPECT_TRUE(event.Find("dur")->is_number());
    EXPECT_FALSE(event.Find("name")->string_value.empty());
  }
  std::remove(stats_path.c_str());
  std::remove(trace_path.c_str());
}

#endif  // SCODED_CLI_BIN && SCODED_FIXTURE_CSV

}  // namespace
}  // namespace scoded
