#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "discovery/association.h"
#include "discovery/chow_liu.h"
#include "table/table.h"

namespace scoded {
namespace {

// x -> y chain plus an independent column z.
Table ChainTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> z;
  for (size_t i = 0; i < n; ++i) {
    double v = rng.Normal();
    x.push_back(v);
    y.push_back(v + rng.Normal(0.0, 0.4));
    z.push_back(rng.Normal());
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  builder.AddNumeric("z", z);
  return std::move(builder).Build().value();
}

TEST(AssociationMatrixTest, StrengthsReflectStructure) {
  AssociationMatrix matrix = AssociationMatrix::Compute(ChainTable(400, 1)).value();
  EXPECT_EQ(matrix.NumColumns(), 3u);
  EXPECT_GT(matrix.entry(0, 1).strength, 0.5);
  EXPECT_LT(matrix.entry(0, 2).strength, 0.2);
  EXPECT_LT(matrix.entry(0, 1).p_value, 1e-10);
  EXPECT_GT(matrix.entry(0, 2).p_value, 0.001);
}

TEST(AssociationMatrixTest, Symmetry) {
  AssociationMatrix matrix = AssociationMatrix::Compute(ChainTable(200, 2)).value();
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(matrix.entry(i, j).strength, matrix.entry(j, i).strength);
      EXPECT_DOUBLE_EQ(matrix.entry(i, j).p_value, matrix.entry(j, i).p_value);
    }
  }
  EXPECT_DOUBLE_EQ(matrix.entry(1, 1).strength, 0.0);
}

TEST(AssociationMatrixTest, MixedTypesUseGTest) {
  Rng rng(3);
  std::vector<double> v;
  std::vector<std::string> c;
  for (int i = 0; i < 300; ++i) {
    double x = rng.Normal();
    v.push_back(x);
    c.push_back(x > 0 ? "pos" : "neg");
  }
  TableBuilder builder;
  builder.AddNumeric("v", v);
  builder.AddCategorical("c", c);
  Table t = std::move(builder).Build().value();
  AssociationMatrix matrix = AssociationMatrix::Compute(t).value();
  EXPECT_EQ(matrix.entry(0, 1).method, TestMethod::kGTest);
  EXPECT_LT(matrix.entry(0, 1).p_value, 1e-10);
}

TEST(AssociationMatrixTest, SuggestionsSplitByPValue) {
  AssociationMatrix matrix = AssociationMatrix::Compute(ChainTable(400, 4)).value();
  std::vector<StatisticalConstraint> suggestions = matrix.SuggestConstraints(0.01, 0.2);
  bool suggested_dependence = false;
  bool suggested_independence = false;
  for (const StatisticalConstraint& sc : suggestions) {
    if (sc.x == std::vector<std::string>{"x"} && sc.y == std::vector<std::string>{"y"}) {
      EXPECT_EQ(sc.kind, ScKind::kDependence);
      suggested_dependence = true;
    }
    if (sc.y == std::vector<std::string>{"z"} || sc.x == std::vector<std::string>{"z"}) {
      if (sc.kind == ScKind::kIndependence) {
        suggested_independence = true;
      }
    }
  }
  EXPECT_TRUE(suggested_dependence);
  EXPECT_TRUE(suggested_independence);
}

TEST(AssociationMatrixTest, ToTextContainsColumnNames) {
  AssociationMatrix matrix = AssociationMatrix::Compute(ChainTable(100, 5)).value();
  std::string text = matrix.ToText();
  EXPECT_NE(text.find("x"), std::string::npos);
  EXPECT_NE(text.find("z"), std::string::npos);
}

TEST(PairwiseMiTest, HigherForDependentPair) {
  Table t = ChainTable(500, 6);
  double mi_xy = PairwiseMutualInformationBits(t, 0, 1).value();
  double mi_xz = PairwiseMutualInformationBits(t, 0, 2).value();
  EXPECT_GT(mi_xy, mi_xz + 0.1);
  EXPECT_FALSE(PairwiseMutualInformationBits(t, 0, 9).ok());
}

TEST(ChowLiuTest, RecoversChainSkeleton) {
  // w -> x -> y -> z generated as a Markov chain: the MI-maximal tree must
  // connect consecutive variables.
  Rng rng(7);
  std::vector<double> w;
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> z;
  for (int i = 0; i < 800; ++i) {
    double a = rng.Normal();
    double b = a + rng.Normal(0.0, 0.5);
    double c = b + rng.Normal(0.0, 0.5);
    double d = c + rng.Normal(0.0, 0.5);
    w.push_back(a);
    x.push_back(b);
    y.push_back(c);
    z.push_back(d);
  }
  TableBuilder builder;
  builder.AddNumeric("w", w);
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  builder.AddNumeric("z", z);
  Table t = std::move(builder).Build().value();
  Dag tree = LearnChowLiuTree(t, 0).value();
  auto connected = [&](const std::string& a, const std::string& b) {
    int ia = tree.NodeIndex(a).value();
    int ib = tree.NodeIndex(b).value();
    return tree.HasEdge(ia, ib) || tree.HasEdge(ib, ia);
  };
  EXPECT_TRUE(connected("w", "x"));
  EXPECT_TRUE(connected("x", "y"));
  EXPECT_TRUE(connected("y", "z"));
  EXPECT_FALSE(connected("w", "z"));
}

TEST(ChowLiuTest, TreeHasNMinusOneEdges) {
  Table t = ChainTable(300, 8);
  Dag tree = LearnChowLiuTree(t, 0).value();
  size_t edges = 0;
  for (size_t v = 0; v < tree.NumNodes(); ++v) {
    edges += tree.Children(static_cast<int>(v)).size();
  }
  EXPECT_EQ(edges, tree.NumNodes() - 1);
}

TEST(ChowLiuTest, InvalidArguments) {
  Table t = ChainTable(50, 9);
  EXPECT_FALSE(LearnChowLiuTree(t, 99).ok());
}

}  // namespace
}  // namespace scoded
