#include "constraints/ic.h"

#include <gtest/gtest.h>

#include "table/table.h"

namespace scoded {
namespace {

// Table 2 of the paper: satisfies the EMVD Z ->> X | Y but not X ⊥ Y | Z.
Table PaperTable2() {
  TableBuilder builder;
  builder.AddCategorical("Z", {"z1", "z1", "z1", "z1", "z1", "z1"});
  builder.AddCategorical("X", {"x1", "x2", "x1", "x1", "x1", "x2"});
  builder.AddCategorical("Y", {"y1", "y2", "y2", "y2", "y2", "y1"});
  builder.AddCategorical("M", {"m1", "m1", "m1", "m2", "m3", "m1"});
  return std::move(builder).Build().value();
}

TEST(FdTest, SatisfiedAndViolated) {
  TableBuilder builder;
  builder.AddCategorical("zip", {"1", "1", "2", "2"});
  builder.AddCategorical("city", {"a", "a", "b", "b"});
  builder.AddCategorical("name", {"p", "q", "r", "s"});
  Table t = std::move(builder).Build().value();
  EXPECT_TRUE(SatisfiesFd(t, {{"zip"}, {"city"}}).value());
  EXPECT_FALSE(SatisfiesFd(t, {{"city"}, {"name"}}).value());
  EXPECT_TRUE(SatisfiesFd(t, {{"name"}, {"zip", "city"}}).value());
}

TEST(FdTest, Table2ViolatesZToX) {
  Table t = PaperTable2();
  // The paper notes r1/r2 violate Z -> X.
  EXPECT_FALSE(SatisfiesFd(t, {{"Z"}, {"X"}}).value());
}

TEST(FdTest, UnknownColumnPropagatesError) {
  Table t = PaperTable2();
  EXPECT_FALSE(SatisfiesFd(t, {{"nope"}, {"X"}}).ok());
}

TEST(FdViolatingPairsTest, CountsExactly) {
  TableBuilder builder;
  builder.AddCategorical("zip", {"1", "1", "1", "2"});
  builder.AddCategorical("city", {"a", "a", "b", "c"});
  Table t = std::move(builder).Build().value();
  // Group zip=1 has cities {a,a,b}: violating pairs = C(3,2) - C(2,2) = 2.
  EXPECT_EQ(CountFdViolatingPairs(t, {{"zip"}, {"city"}}).value(), 2);
}

TEST(FdApproximationRatioTest, MajorityKeptPerGroup) {
  TableBuilder builder;
  builder.AddCategorical("zip", {"1", "1", "1", "1", "2", "2"});
  builder.AddCategorical("city", {"a", "a", "a", "b", "c", "c"});
  Table t = std::move(builder).Build().value();
  // Remove 1 of 6 rows (the "b") to satisfy the FD.
  EXPECT_NEAR(FdApproximationRatio(t, {{"zip"}, {"city"}}).value(), 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(FdApproximationRatio(t, {{"city"}, {"zip"}}).value(), 0.0, 1e-12);
}

TEST(EmvdTest, Table2SatisfiesEmvd) {
  Table t = PaperTable2();
  EXPECT_TRUE(SatisfiesEmvd(t, {{"Z"}, {"X"}, {"Y"}}).value());
}

TEST(EmvdTest, ViolatedWhenCombinationMissing) {
  TableBuilder builder;
  builder.AddCategorical("Z", {"z", "z", "z"});
  builder.AddCategorical("X", {"x1", "x2", "x1"});
  builder.AddCategorical("Y", {"y1", "y2", "y2"});
  Table t = std::move(builder).Build().value();
  // Missing (x2, y1): the cross product is incomplete.
  EXPECT_FALSE(SatisfiesEmvd(t, {{"Z"}, {"X"}, {"Y"}}).value());
}

TEST(MvdTest, SaturatedCase) {
  TableBuilder builder;
  builder.AddCategorical("A", {"a", "a", "a", "a"});
  builder.AddCategorical("B", {"b1", "b1", "b2", "b2"});
  builder.AddCategorical("C", {"c1", "c2", "c1", "c2"});
  Table t = std::move(builder).Build().value();
  EXPECT_TRUE(SatisfiesMvd(t, {"A"}, {"B"}).value());
}

TEST(MvdTest, TrivialWhenColumnsCoverRelation) {
  TableBuilder builder;
  builder.AddCategorical("A", {"a", "b"});
  builder.AddCategorical("B", {"x", "y"});
  Table t = std::move(builder).Build().value();
  EXPECT_TRUE(SatisfiesMvd(t, {"A"}, {"B"}).value());
}

TEST(ScExactTest, Table2ViolatesIsc) {
  // The core counter-example of Proposition 1: the EMVD holds (above) but
  // the ISC X ⊥ Y | Z does not.
  Table t = PaperTable2();
  StatisticalConstraint isc = Independence({"X"}, {"Y"}, {"Z"});
  EXPECT_FALSE(SatisfiesScExactly(t, isc).value());
  EXPECT_TRUE(SatisfiesScExactly(t, isc.Negated()).value());
}

TEST(ScExactTest, ProductDistributionSatisfiesIsc) {
  // Uniform cross product: exactly independent.
  TableBuilder builder;
  builder.AddCategorical("X", {"x1", "x1", "x2", "x2"});
  builder.AddCategorical("Y", {"y1", "y2", "y1", "y2"});
  Table t = std::move(builder).Build().value();
  EXPECT_TRUE(SatisfiesScExactly(t, Independence({"X"}, {"Y"})).value());
}

TEST(ScExactTest, ConditionalIndependenceByStratum) {
  // Within each z the (x, y) distribution is a product; marginally it is not.
  TableBuilder builder;
  builder.AddCategorical("Z", {"a", "a", "a", "a", "b", "b", "b", "b"});
  builder.AddCategorical("X", {"x1", "x1", "x2", "x2", "x3", "x3", "x4", "x4"});
  builder.AddCategorical("Y", {"y1", "y2", "y1", "y2", "y3", "y4", "y3", "y4"});
  Table t = std::move(builder).Build().value();
  EXPECT_TRUE(SatisfiesScExactly(t, Independence({"X"}, {"Y"}, {"Z"})).value());
  EXPECT_FALSE(SatisfiesScExactly(t, Independence({"X"}, {"Y"})).value());
}

TEST(Proposition1Test, IscEntailsEmvdOnRandomizedTables) {
  // Build a conditionally independent table; its ISC must imply the EMVD.
  TableBuilder builder;
  builder.AddCategorical("Z", {"a", "a", "a", "a", "b", "b"});
  builder.AddCategorical("X", {"x1", "x1", "x2", "x2", "x1", "x2"});
  builder.AddCategorical("Y", {"y1", "y2", "y1", "y2", "y1", "y1"});
  Table t = std::move(builder).Build().value();
  StatisticalConstraint isc = Independence({"X"}, {"Y"}, {"Z"});
  if (SatisfiesScExactly(t, isc).value()) {
    EXPECT_TRUE(SatisfiesEmvd(t, IscToEmvd(isc)).value());
  }
}

TEST(FdToDscTest, TranslationShape) {
  StatisticalConstraint dsc = FdToDsc({{"zip"}, {"city"}});
  EXPECT_EQ(dsc.kind, ScKind::kDependence);
  EXPECT_EQ(dsc.x, (std::vector<std::string>{"zip"}));
  EXPECT_EQ(dsc.y, (std::vector<std::string>{"city"}));
}

TEST(IscToEmvdTest, NamingConvention) {
  // Y ⊥ Z' | X  ->  X ->> Y | Z'.
  StatisticalConstraint isc = Independence({"Y"}, {"W"}, {"X"});
  Emvd emvd = IscToEmvd(isc);
  EXPECT_EQ(emvd.x, (std::vector<std::string>{"X"}));
  EXPECT_EQ(emvd.y, (std::vector<std::string>{"Y"}));
  EXPECT_EQ(emvd.z, (std::vector<std::string>{"W"}));
}

TEST(Proposition2Test, FdImpliesMiMaximalDsc) {
  // city = f(zip): I(zip; city) must dominate I(X'; city) for all X'.
  TableBuilder builder;
  builder.AddCategorical("zip", {"1", "1", "2", "2", "3", "3"});
  builder.AddCategorical("city", {"a", "a", "b", "b", "a", "a"});
  builder.AddCategorical("noise", {"p", "q", "p", "q", "p", "q"});
  Table t = std::move(builder).Build().value();
  ASSERT_TRUE(SatisfiesFd(t, {{"zip"}, {"city"}}).value());
  EXPECT_TRUE(IsMiMaximalDependence(t, {"zip"}, {"city"}).value());
}

TEST(Proposition2Test, NonFdNeedNotBeMaximal) {
  // noise is independent of city while zip determines it: I(noise;city)
  // cannot be maximal.
  TableBuilder builder;
  builder.AddCategorical("zip", {"1", "1", "2", "2"});
  builder.AddCategorical("city", {"a", "a", "b", "b"});
  builder.AddCategorical("noise", {"p", "q", "p", "q"});
  Table t = std::move(builder).Build().value();
  EXPECT_FALSE(IsMiMaximalDependence(t, {"noise"}, {"city"}).value());
}

TEST(ToStringTest, Renderings) {
  FunctionalDependency fd{{"zip"}, {"city", "state"}};
  EXPECT_EQ(fd.ToString(), "zip -> city, state");
  Emvd emvd{{"Z"}, {"X"}, {"Y"}};
  EXPECT_EQ(emvd.ToString(), "Z ->> X | Y");
}

}  // namespace
}  // namespace scoded
