#include "stats/ranks.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace scoded {
namespace {

TEST(DenseRanksTest, DistinctValues) {
  size_t distinct = 0;
  std::vector<size_t> ranks = DenseRanks({3.0, 1.0, 2.0}, &distinct);
  EXPECT_EQ(ranks, (std::vector<size_t>{2, 0, 1}));
  EXPECT_EQ(distinct, 3u);
}

TEST(DenseRanksTest, TiesShareRanks) {
  size_t distinct = 0;
  std::vector<size_t> ranks = DenseRanks({5.0, 5.0, 1.0, 5.0}, &distinct);
  EXPECT_EQ(ranks, (std::vector<size_t>{1, 1, 0, 1}));
  EXPECT_EQ(distinct, 2u);
}

TEST(DenseRanksTest, Empty) {
  size_t distinct = 99;
  EXPECT_TRUE(DenseRanks({}, &distinct).empty());
  EXPECT_EQ(distinct, 0u);
}

TEST(AverageRanksTest, NoTiesGives1ToN) {
  std::vector<double> ranks = AverageRanks({30.0, 10.0, 20.0});
  EXPECT_EQ(ranks, (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(AverageRanksTest, TiesGetMidrank) {
  // Values 10, 20, 20, 30 -> ranks 1, 2.5, 2.5, 4.
  std::vector<double> ranks = AverageRanks({10.0, 20.0, 20.0, 30.0});
  EXPECT_EQ(ranks, (std::vector<double>{1.0, 2.5, 2.5, 4.0}));
}

TEST(AverageRanksTest, AllEqual) {
  std::vector<double> ranks = AverageRanks({7.0, 7.0, 7.0});
  EXPECT_EQ(ranks, (std::vector<double>{2.0, 2.0, 2.0}));
}

TEST(QuantileBinsTest, SingleBin) {
  std::vector<int32_t> bins = QuantileBins({5.0, 1.0, 3.0}, 1);
  EXPECT_EQ(bins, (std::vector<int32_t>{0, 0, 0}));
}

TEST(QuantileBinsTest, BalancedQuartiles) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(static_cast<double>(i));
  }
  std::vector<int32_t> bins = QuantileBins(values, 4);
  int counts[4] = {0, 0, 0, 0};
  for (int32_t b : bins) {
    ASSERT_GE(b, 0);
    ASSERT_LT(b, 4);
    ++counts[b];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 25, 1);
  }
}

TEST(QuantileBinsTest, ConstantColumnCollapsesToOneBin) {
  std::vector<int32_t> bins = QuantileBins({2.0, 2.0, 2.0, 2.0}, 4);
  for (int32_t b : bins) {
    EXPECT_EQ(b, 0);
  }
}

TEST(QuantileBinsTest, MonotoneInValue) {
  std::vector<double> values = {1, 9, 2, 8, 3, 7, 4, 6, 5, 0};
  std::vector<int32_t> bins = QuantileBins(values, 3);
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = 0; j < values.size(); ++j) {
      if (values[i] < values[j]) {
        EXPECT_LE(bins[i], bins[j]);
      }
    }
  }
}

TEST(QuantileBinsTest, EmptyInput) {
  EXPECT_TRUE(QuantileBins({}, 4).empty());
}

}  // namespace
}  // namespace scoded
