#include "stats/ranks.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace scoded {
namespace {

TEST(DenseRanksTest, DistinctValues) {
  size_t distinct = 0;
  std::vector<size_t> ranks = DenseRanks({3.0, 1.0, 2.0}, &distinct);
  EXPECT_EQ(ranks, (std::vector<size_t>{2, 0, 1}));
  EXPECT_EQ(distinct, 3u);
}

TEST(DenseRanksTest, TiesShareRanks) {
  size_t distinct = 0;
  std::vector<size_t> ranks = DenseRanks({5.0, 5.0, 1.0, 5.0}, &distinct);
  EXPECT_EQ(ranks, (std::vector<size_t>{1, 1, 0, 1}));
  EXPECT_EQ(distinct, 2u);
}

TEST(DenseRanksTest, Empty) {
  size_t distinct = 99;
  EXPECT_TRUE(DenseRanks({}, &distinct).empty());
  EXPECT_EQ(distinct, 0u);
}

TEST(AverageRanksTest, NoTiesGives1ToN) {
  std::vector<double> ranks = AverageRanks({30.0, 10.0, 20.0});
  EXPECT_EQ(ranks, (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(AverageRanksTest, TiesGetMidrank) {
  // Values 10, 20, 20, 30 -> ranks 1, 2.5, 2.5, 4.
  std::vector<double> ranks = AverageRanks({10.0, 20.0, 20.0, 30.0});
  EXPECT_EQ(ranks, (std::vector<double>{1.0, 2.5, 2.5, 4.0}));
}

TEST(AverageRanksTest, AllEqual) {
  std::vector<double> ranks = AverageRanks({7.0, 7.0, 7.0});
  EXPECT_EQ(ranks, (std::vector<double>{2.0, 2.0, 2.0}));
}

TEST(QuantileBinsTest, SingleBin) {
  std::vector<int32_t> bins = QuantileBins({5.0, 1.0, 3.0}, 1);
  EXPECT_EQ(bins, (std::vector<int32_t>{0, 0, 0}));
}

TEST(QuantileBinsTest, BalancedQuartiles) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(static_cast<double>(i));
  }
  std::vector<int32_t> bins = QuantileBins(values, 4);
  int counts[4] = {0, 0, 0, 0};
  for (int32_t b : bins) {
    ASSERT_GE(b, 0);
    ASSERT_LT(b, 4);
    ++counts[b];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 25, 1);
  }
}

TEST(QuantileBinsTest, ConstantColumnCollapsesToOneBin) {
  std::vector<int32_t> bins = QuantileBins({2.0, 2.0, 2.0, 2.0}, 4);
  for (int32_t b : bins) {
    EXPECT_EQ(b, 0);
  }
}

TEST(QuantileBinsTest, MonotoneInValue) {
  std::vector<double> values = {1, 9, 2, 8, 3, 7, 4, 6, 5, 0};
  std::vector<int32_t> bins = QuantileBins(values, 3);
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = 0; j < values.size(); ++j) {
      if (values[i] < values[j]) {
        EXPECT_LE(bins[i], bins[j]);
      }
    }
  }
}

TEST(QuantileBinsTest, EmptyInput) {
  EXPECT_TRUE(QuantileBins({}, 4).empty());
}

// Regression: NaN inputs used to feed raw `<` into std::sort (undefined
// behaviour). The conventions are now explicit: one NaN group after all
// numbers for ranks, the null code -1 for bins.
TEST(NanHandlingTest, DenseRanksGroupNansAfterAllNumbers) {
  double nan = std::nan("");
  size_t distinct = 0;
  std::vector<size_t> ranks = DenseRanks({3.0, nan, 1.0, nan, 2.0}, &distinct);
  EXPECT_EQ(ranks, (std::vector<size_t>{2, 3, 0, 3, 1}));
  EXPECT_EQ(distinct, 4u);  // {1, 2, 3} plus one NaN group
}

TEST(NanHandlingTest, AverageRanksPutNansInOneTrailingTieRun) {
  double nan = std::nan("");
  std::vector<double> ranks = AverageRanks({nan, 1.0, 2.0, nan});
  EXPECT_EQ(ranks, (std::vector<double>{3.5, 1.0, 2.0, 3.5}));
}

TEST(NanHandlingTest, QuantileBinsMapNanToNullCode) {
  double nan = std::nan("");
  std::vector<int32_t> bins = QuantileBins({1.0, nan, 2.0, 3.0, 4.0}, 2);
  EXPECT_EQ(bins[1], -1);
  for (size_t i : {size_t{0}, size_t{2}, size_t{3}, size_t{4}}) {
    EXPECT_GE(bins[i], 0);
  }
  // Cuts come from the non-NaN values only: same codes as without the NaN.
  std::vector<int32_t> clean = QuantileBins({1.0, 2.0, 3.0, 4.0}, 2);
  EXPECT_EQ(bins[0], clean[0]);
  EXPECT_EQ(bins[2], clean[1]);
  EXPECT_EQ(bins[3], clean[2]);
  EXPECT_EQ(bins[4], clean[3]);
}

TEST(CheckedVariantsTest, RejectNanInputs) {
  double nan = std::nan("");
  EXPECT_FALSE(DenseRanksChecked({1.0, nan}).ok());
  EXPECT_FALSE(AverageRanksChecked({nan}).ok());
  EXPECT_FALSE(QuantileBinsChecked({1.0, nan, 2.0}, 2).ok());
}

TEST(CheckedVariantsTest, MatchUncheckedOnCleanInputs) {
  std::vector<double> values = {4.0, 1.0, 4.0, 2.0, 3.0, 2.0};
  size_t distinct_a = 0;
  size_t distinct_b = 0;
  Result<std::vector<size_t>> dense = DenseRanksChecked(values, &distinct_a);
  ASSERT_TRUE(dense.ok());
  EXPECT_EQ(*dense, DenseRanks(values, &distinct_b));
  EXPECT_EQ(distinct_a, distinct_b);
  Result<std::vector<double>> average = AverageRanksChecked(values);
  ASSERT_TRUE(average.ok());
  EXPECT_EQ(*average, AverageRanks(values));
  Result<std::vector<int32_t>> bins = QuantileBinsChecked(values, 3);
  ASSERT_TRUE(bins.ok());
  EXPECT_EQ(*bins, QuantileBins(values, 3));
}

// The out-of-core contract: cuts from (value, count) pairs are bit-identical
// to cuts from the expanded sorted sequence, and QuantileCodeOf reproduces
// the codes QuantileBins assigns.
TEST(QuantileCutsTest, CountsMatchSortedExpansion) {
  std::vector<std::vector<std::pair<double, int64_t>>> cases = {
      {},
      {{2.5, 7}},
      {{-1.0, 1}, {0.0, 3}, {0.5, 1}},
      {{1.0, 4}, {2.0, 1}, {3.0, 9}, {7.0, 2}, {11.0, 5}},
      {{-3.0, 100}, {4.0, 1}},
  };
  for (const auto& counts : cases) {
    std::vector<double> sorted;
    for (const auto& [value, count] : counts) {
      sorted.insert(sorted.end(), static_cast<size_t>(count), value);
    }
    for (int bins = 1; bins <= 7; ++bins) {
      EXPECT_EQ(QuantileCutsFromCounts(counts, bins), QuantileCutsFromSorted(sorted, bins));
    }
  }
}

TEST(QuantileCutsTest, CodeOfMatchesQuantileBins) {
  std::vector<double> values = {5.0, 1.0, 3.0, 3.0, 9.0, 2.0, 8.0, 2.0, 7.0, 4.0};
  for (int bins = 1; bins <= 5; ++bins) {
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    std::vector<double> cuts = QuantileCutsFromSorted(sorted, bins);
    std::vector<int32_t> expected = QuantileBins(values, bins);
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(QuantileCodeOf(cuts, values[i]), expected[i]);
    }
  }
  EXPECT_EQ(QuantileCodeOf({2.0, 3.0}, std::nan("")), -1);
}

}  // namespace
}  // namespace scoded
