#include "stats/contingency.h"

#include <cmath>

#include <gtest/gtest.h>

#include "table/table.h"

namespace scoded {
namespace {

ContingencyTable Make2x2(int64_t a, int64_t b, int64_t c, int64_t d) {
  std::vector<int32_t> x;
  std::vector<int32_t> y;
  auto push = [&](int32_t xv, int32_t yv, int64_t count) {
    for (int64_t i = 0; i < count; ++i) {
      x.push_back(xv);
      y.push_back(yv);
    }
  };
  push(0, 0, a);
  push(0, 1, b);
  push(1, 0, c);
  push(1, 1, d);
  return ContingencyTable(x, y, 2, 2);
}

TEST(ContingencyTest, CountsAndMarginals) {
  ContingencyTable ct = Make2x2(10, 20, 30, 40);
  EXPECT_EQ(ct.total(), 100);
  EXPECT_EQ(ct.Count(0, 1), 20);
  EXPECT_EQ(ct.RowMarginal(0), 30);
  EXPECT_EQ(ct.ColMarginal(1), 60);
  EXPECT_DOUBLE_EQ(ct.ExpectedCount(0, 0), 30.0 * 40.0 / 100.0);
}

TEST(ContingencyTest, NullCodesSkipped) {
  ContingencyTable ct({0, -1, 1}, {0, 0, -1}, 2, 2);
  EXPECT_EQ(ct.total(), 1);
}

TEST(ContingencyTest, IndependentTableHasZeroMi) {
  // Perfectly independent: joint = product of marginals.
  ContingencyTable ct = Make2x2(20, 20, 30, 30);
  EXPECT_NEAR(ct.MutualInformationBits(), 0.0, 1e-12);
  EXPECT_NEAR(ct.GStatistic(), 0.0, 1e-9);
  EXPECT_NEAR(ct.CramersV(), 0.0, 1e-9);
}

TEST(ContingencyTest, PerfectDependenceMi) {
  // Diagonal table: X determines Y. I(X;Y) = H(X) = 1 bit for a 50/50 split.
  ContingencyTable ct = Make2x2(50, 0, 0, 50);
  EXPECT_NEAR(ct.MutualInformationBits(), 1.0, 1e-12);
  EXPECT_NEAR(ct.GStatistic(), 2.0 * 100.0 * std::log(2.0), 1e-9);
  EXPECT_NEAR(ct.CramersV(), 1.0, 1e-12);
}

TEST(ContingencyTest, GMatchesHandComputation) {
  // 2x2 table [[10, 20], [20, 10]]: G = 2 Σ O ln(O/E) with E = 15 each.
  ContingencyTable ct = Make2x2(10, 20, 20, 10);
  double expected = 2.0 * (10.0 * std::log(10.0 / 15.0) + 20.0 * std::log(20.0 / 15.0) +
                           20.0 * std::log(20.0 / 15.0) + 10.0 * std::log(10.0 / 15.0));
  EXPECT_NEAR(ct.GStatistic(), expected, 1e-9);
  EXPECT_DOUBLE_EQ(ct.Dof(), 1.0);
}

TEST(ContingencyTest, ChiSquaredMatchesHandComputation) {
  ContingencyTable ct = Make2x2(10, 20, 20, 10);
  // Each cell deviates by 5 from its expectation of 15.
  EXPECT_NEAR(ct.ChiSquaredStatistic(), 4.0 * 25.0 / 15.0, 1e-12);
}

TEST(ContingencyTest, GAndChiSquaredCloseForMildDependence) {
  ContingencyTable ct = Make2x2(26, 24, 22, 28);
  EXPECT_NEAR(ct.GStatistic(), ct.ChiSquaredStatistic(), 0.05);
}

TEST(ContingencyTest, DofIgnoresEmptyCategories) {
  // Third x category never appears.
  ContingencyTable ct({0, 0, 1, 1}, {0, 1, 0, 1}, 3, 2);
  EXPECT_DOUBLE_EQ(ct.Dof(), 1.0);
}

TEST(ContingencyTest, AdjustKeepsStateConsistent) {
  ContingencyTable ct = Make2x2(10, 20, 30, 40);
  double g_before = ct.GStatistic();
  ct.Adjust(0, 0, -1);
  EXPECT_EQ(ct.total(), 99);
  EXPECT_EQ(ct.RowMarginal(0), 29);
  EXPECT_EQ(ct.ColMarginal(0), 39);
  ct.Adjust(0, 0, 1);
  EXPECT_NEAR(ct.GStatistic(), g_before, 1e-12);
}

TEST(ContingencyTest, MinExpectedCount) {
  ContingencyTable ct = Make2x2(1, 9, 9, 81);
  EXPECT_NEAR(ct.MinExpectedCount(), 10.0 * 10.0 / 100.0, 1e-12);
}

TEST(ContingencyTest, FromColumnsRespectsRowSubset) {
  TableBuilder builder;
  builder.AddCategorical("x", {"a", "a", "b", "b"});
  builder.AddCategorical("y", {"p", "q", "p", "q"});
  Table t = std::move(builder).Build().value();
  ContingencyTable ct = ContingencyTable::FromColumns(t.column(0), t.column(1), {0, 1});
  EXPECT_EQ(ct.total(), 2);
  EXPECT_EQ(ct.Count(0, 0), 1);
  EXPECT_EQ(ct.Count(1, 0), 0);
}

TEST(GenericMiTest, MatchesContingencyForPairs) {
  TableBuilder builder;
  builder.AddCategorical("x", {"a", "a", "b", "b", "a", "b"});
  builder.AddCategorical("y", {"p", "q", "p", "q", "p", "q"});
  Table t = std::move(builder).Build().value();
  std::vector<size_t> all = {0, 1, 2, 3, 4, 5};
  ContingencyTable ct = ContingencyTable::FromColumns(t.column(0), t.column(1), all);
  EXPECT_NEAR(MutualInformationBits(t, {0}, {1}), ct.MutualInformationBits(), 1e-12);
}

TEST(GenericMiTest, FunctionalDependenceGivesEntropy) {
  // y = f(x): I(X;Y) = H(Y).
  TableBuilder builder;
  builder.AddCategorical("x", {"a", "b", "c", "a", "b", "c"});
  builder.AddCategorical("y", {"p", "q", "q", "p", "q", "q"});
  Table t = std::move(builder).Build().value();
  EXPECT_NEAR(MutualInformationBits(t, {0}, {1}), EntropyBits(t, {1}), 1e-12);
}

TEST(EntropyTest, UniformAndConstant) {
  TableBuilder builder;
  builder.AddCategorical("u", {"a", "b", "c", "d"});
  builder.AddCategorical("k", {"z", "z", "z", "z"});
  Table t = std::move(builder).Build().value();
  EXPECT_NEAR(EntropyBits(t, {0}), 2.0, 1e-12);
  EXPECT_NEAR(EntropyBits(t, {1}), 0.0, 1e-12);
}

}  // namespace
}  // namespace scoded
