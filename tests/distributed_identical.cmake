# Byte-for-byte acceptance for distributed checking: `scoded check
# --workers N` must print exactly the same line (and exit with the same
# code) as the single-process sharded check, for N in {1,2,4} crossed with
# both transports and 1/4 coordinator threads.
# Driven as a ctest entry: cmake -DSCODED_BIN=... -DFIXTURE=... -P this_file.
foreach(var SCODED_BIN FIXTURE)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

set(constraints "Model _||_ Color" "Model !_||_ Price" "Price _||_ Mileage | Model")
set(alphas "0.05" "0.3" "0.05")

# Full worker x transport x thread matrix on the first constraint; the
# remaining constraints ride one representative configuration each.
execute_process(
  COMMAND ${SCODED_BIN} check --csv ${FIXTURE} --sc "Model _||_ Color" --alpha 0.05 --shard-rows 3
  OUTPUT_VARIABLE expected_out RESULT_VARIABLE expected_rc)
foreach(workers 1 2 4)
  foreach(transport fork tcp)
    foreach(threads 1 4)
      execute_process(
        COMMAND ${SCODED_BIN} check --csv ${FIXTURE} --sc "Model _||_ Color" --alpha 0.05
                --shard-rows 3 --workers ${workers} --worker-transport ${transport}
                --threads ${threads}
        OUTPUT_VARIABLE actual_out RESULT_VARIABLE actual_rc)
      if(NOT "${actual_out}" STREQUAL "${expected_out}")
        message(FATAL_ERROR "distributed output differs at workers=${workers} "
                            "transport=${transport} threads=${threads}:\n"
                            "single:      ${expected_out}distributed: ${actual_out}")
      endif()
      if(NOT "${actual_rc}" STREQUAL "${expected_rc}")
        message(FATAL_ERROR "distributed exit code ${actual_rc} != single-process "
                            "${expected_rc} at workers=${workers} transport=${transport}")
      endif()
    endforeach()
  endforeach()
endforeach()

foreach(i 1 2)
  list(GET constraints ${i} sc)
  list(GET alphas ${i} alpha)
  execute_process(
    COMMAND ${SCODED_BIN} check --csv ${FIXTURE} --sc ${sc} --alpha ${alpha} --shard-rows 3
    OUTPUT_VARIABLE expected_out RESULT_VARIABLE expected_rc)
  execute_process(
    COMMAND ${SCODED_BIN} check --csv ${FIXTURE} --sc ${sc} --alpha ${alpha}
            --shard-rows 3 --workers 2
    OUTPUT_VARIABLE actual_out RESULT_VARIABLE actual_rc)
  if(NOT "${actual_out}" STREQUAL "${expected_out}" OR NOT "${actual_rc}" STREQUAL "${expected_rc}")
    message(FATAL_ERROR "distributed output differs for '${sc}':\n"
                        "single:      ${expected_out}distributed: ${actual_out}")
  endif()
endforeach()
