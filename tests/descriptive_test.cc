#include "stats/descriptive.h"

#include <cmath>

#include <gtest/gtest.h>

#include "table/table.h"

namespace scoded {
namespace {

Table SampleTable() {
  TableBuilder builder;
  builder.AddNumericWithNulls("v", {1.0, 2.0, 3.0, 4.0, 0.0}, {true, true, true, true, false});
  builder.AddCategorical("c", {"a", "b", "a", "a", "c"});
  return std::move(builder).Build().value();
}

TEST(DescribeColumnTest, NumericMoments) {
  ColumnSummary s = DescribeColumn(SampleTable(), 0);
  EXPECT_EQ(s.name, "v");
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.nulls, 1u);
  EXPECT_EQ(s.distinct, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.q25, 1.75);
  EXPECT_DOUBLE_EQ(s.q75, 3.25);
}

TEST(DescribeColumnTest, CategoricalMode) {
  ColumnSummary s = DescribeColumn(SampleTable(), 1);
  EXPECT_EQ(s.type, ColumnType::kCategorical);
  EXPECT_EQ(s.distinct, 3u);
  EXPECT_EQ(s.mode, "a");
  EXPECT_EQ(s.mode_count, 3u);
}

TEST(DescribeColumnTest, ConstantColumn) {
  TableBuilder builder;
  builder.AddNumeric("k", {7.0, 7.0, 7.0});
  Table t = std::move(builder).Build().value();
  ColumnSummary s = DescribeColumn(t, 0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.distinct, 1u);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
}

TEST(DescribeColumnTest, AllNullNumeric) {
  TableBuilder builder;
  builder.AddNumericWithNulls("n", {0.0, 0.0}, {false, false});
  Table t = std::move(builder).Build().value();
  ColumnSummary s = DescribeColumn(t, 0);
  EXPECT_EQ(s.nulls, 2u);
  EXPECT_EQ(s.distinct, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(DescribeTableTest, CoversAllColumns) {
  std::vector<ColumnSummary> all = DescribeTable(SampleTable());
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].name, "v");
  EXPECT_EQ(all[1].name, "c");
}

TEST(DescribeTableTest, TextRenderingContainsNamesAndMode) {
  std::string text = DescribeTableText(SampleTable());
  EXPECT_NE(text.find("v"), std::string::npos);
  EXPECT_NE(text.find("a (3)"), std::string::npos);
}

}  // namespace
}  // namespace scoded
