#include "stats/fisher.h"

#include <gtest/gtest.h>

#include "stats/hypothesis.h"
#include "table/table.h"

namespace scoded {
namespace {

TEST(HypergeometricTest, PmfKnownValues) {
  // Table [[1,9],[11,3]]: classic R example. dhyper(1, 10, 14, 12) etc.
  // P(A=1 | margins 10/14, col 12) = choose(10,1)*choose(14,11)/choose(24,12).
  double p = Hypergeometric2x2Pmf(1, 9, 11, 3);
  EXPECT_NEAR(p, 10.0 * 364.0 / 2704156.0, 1e-12);
}

TEST(HypergeometricTest, SumsToOneOverSupport) {
  // Margins: row0=6, row1=4, col0=5, col1=5.
  double total = 0.0;
  for (int a = 1; a <= 5; ++a) {  // support of A given these margins
    total += Hypergeometric2x2Pmf(a, 6 - a, 5 - a, a - 1);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(FisherTest, KnownTwoSidedValue) {
  // Exact enumeration over the margins (row 10/14, col 12/12): the
  // two-sided p sums P(A=0) + P(A=1) + the opposite tail = 0.00275946.
  EXPECT_NEAR(FisherExact2x2TwoSided(1, 9, 11, 3), 0.0027594562, 1e-9);
}

TEST(FisherTest, TeaTastingExample) {
  // Fisher's lady-tasting-tea: [[3,1],[1,3]] -> two-sided p = 0.4857...
  EXPECT_NEAR(FisherExact2x2TwoSided(3, 1, 1, 3), 0.4857142857, 1e-9);
  // One-sided (greater): P(A >= 3) = (16 + 1)/70.
  EXPECT_NEAR(FisherExact2x2GreaterTail(3, 1, 1, 3), 17.0 / 70.0, 1e-12);
}

TEST(FisherTest, IndependentTableGivesLargeP) {
  EXPECT_NEAR(FisherExact2x2TwoSided(10, 10, 10, 10), 1.0, 1e-9);
}

TEST(FisherTest, ExtremeTableGivesTinyP) {
  double p = FisherExact2x2TwoSided(20, 0, 0, 20);
  EXPECT_LT(p, 1e-9);
}

TEST(FisherTest, EmptyAndDegenerateTables) {
  EXPECT_DOUBLE_EQ(FisherExact2x2TwoSided(0, 0, 0, 0), 1.0);
  // A zero margin leaves a single possible table: p = 1.
  EXPECT_DOUBLE_EQ(FisherExact2x2TwoSided(5, 0, 3, 0), 1.0);
}

TEST(FisherIntegrationTest, RoutesSmall2x2GTests) {
  TableBuilder builder;
  builder.AddCategorical("x", {"a", "a", "a", "a", "b", "b", "b", "b"});
  builder.AddCategorical("y", {"p", "p", "p", "q", "q", "q", "q", "p"});
  Table t = std::move(builder).Build().value();
  TestOptions options;
  options.use_fisher_for_2x2 = true;
  TestResult r = IndependenceTest(t, 0, 1, {}, options).value();
  EXPECT_TRUE(r.used_exact);
  // [[3,1],[1,3]]: the tea-tasting p-value.
  EXPECT_NEAR(r.p_value, 0.4857142857, 1e-9);
}

TEST(FisherIntegrationTest, OffByDefault) {
  TableBuilder builder;
  builder.AddCategorical("x", {"a", "a", "b", "b"});
  builder.AddCategorical("y", {"p", "q", "p", "q"});
  Table t = std::move(builder).Build().value();
  TestOptions options;
  options.allow_exact = false;  // also disables the permutation fallback
  TestResult r = IndependenceTest(t, 0, 1, {}, options).value();
  EXPECT_FALSE(r.used_exact);
}

TEST(FisherIntegrationTest, NotUsedAboveSizeCap) {
  std::vector<std::string> x;
  std::vector<std::string> y;
  for (int i = 0; i < 600; ++i) {
    x.push_back(i % 2 == 0 ? "a" : "b");
    y.push_back(i % 3 == 0 ? "p" : "q");
  }
  TableBuilder builder;
  builder.AddCategorical("x", x);
  builder.AddCategorical("y", y);
  Table t = std::move(builder).Build().value();
  TestOptions options;
  options.use_fisher_for_2x2 = true;  // n exceeds fisher_max_n
  TestResult r = IndependenceTest(t, 0, 1, {}, options).value();
  EXPECT_FALSE(r.used_exact);
}

}  // namespace
}  // namespace scoded
