#include "discovery/fd_discovery.h"

#include <gtest/gtest.h>

#include "datasets/hosp.h"
#include "stats/bootstrap.h"
#include "table/table.h"

namespace scoded {
namespace {

bool Contains(const std::vector<DiscoveredFd>& fds, const std::string& lhs,
              const std::string& rhs, const DiscoveredFd** found = nullptr) {
  for (const DiscoveredFd& fd : fds) {
    if (fd.fd.lhs == std::vector<std::string>{lhs} &&
        fd.fd.rhs == std::vector<std::string>{rhs}) {
      if (found != nullptr) {
        *found = &fd;
      }
      return true;
    }
  }
  return false;
}

TEST(FdDiscoveryTest, FindsExactAndApproximateFds) {
  TableBuilder builder;
  builder.AddCategorical("zip", {"1", "1", "1", "2", "2", "2", "3", "3", "3"});
  builder.AddCategorical("city", {"a", "a", "a", "b", "b", "b", "a", "a", "WRONG"});
  builder.AddCategorical("noise", {"p", "q", "r", "p", "q", "r", "p", "q", "r"});
  Table t = std::move(builder).Build().value();
  std::vector<DiscoveredFd> fds = DiscoverApproximateFds(t).value();
  const DiscoveredFd* found = nullptr;
  ASSERT_TRUE(Contains(fds, "zip", "city", &found));
  EXPECT_NEAR(found->g3_ratio, 1.0 / 9.0, 1e-12);
  // noise determines nothing: zip -> noise has g3 = 6/9, above the cap.
  EXPECT_FALSE(Contains(fds, "zip", "noise"));
}

TEST(FdDiscoveryTest, NearKeyLhsPruned) {
  // An id column (all distinct) trivially determines everything — pruned.
  TableBuilder builder;
  builder.AddCategorical("id", {"r1", "r2", "r3", "r4"});
  builder.AddCategorical("v", {"a", "a", "b", "b"});
  Table t = std::move(builder).Build().value();
  std::vector<DiscoveredFd> fds = DiscoverApproximateFds(t).value();
  EXPECT_FALSE(Contains(fds, "id", "v"));
}

TEST(FdDiscoveryTest, SortedByQuality) {
  HospOptions options;
  options.rows = 2000;
  options.error_rate = 0.1;
  HospData data = GenerateHospData(options).value();
  FdDiscoveryOptions discovery;
  discovery.max_g3_ratio = 0.5;
  std::vector<DiscoveredFd> fds = DiscoverApproximateFds(data.table, discovery).value();
  ASSERT_FALSE(fds.empty());
  for (size_t i = 1; i < fds.size(); ++i) {
    EXPECT_LE(fds[i - 1].g3_ratio, fds[i].g3_ratio);
  }
  // City -> State is exact by construction (cities nest in states).
  const DiscoveredFd* found = nullptr;
  ASSERT_TRUE(Contains(fds, "City", "State", &found));
  EXPECT_LT(found->g3_ratio, 0.06);  // only typo'd cities break it
}

TEST(FdDiscoveryTest, HighCardinalityNumericSkipped) {
  TableBuilder builder;
  std::vector<double> v;
  std::vector<std::string> c;
  for (int i = 0; i < 200; ++i) {
    v.push_back(i * 0.37);
    c.push_back(i % 2 == 0 ? "even" : "odd");
  }
  builder.AddNumeric("v", v);
  builder.AddCategorical("c", c);
  Table t = std::move(builder).Build().value();
  std::vector<DiscoveredFd> fds = DiscoverApproximateFds(t).value();
  EXPECT_TRUE(fds.empty());  // v is skipped (200 distinct numerics)
}

TEST(FdDiscoveryTest, DegenerateInputs) {
  TableBuilder builder;
  builder.AddCategorical("only", {"a", "b"});
  Table one_col = std::move(builder).Build().value();
  EXPECT_TRUE(DiscoverApproximateFds(one_col).value().empty());
}

TEST(BootstrapTauTest, CiCoversStrongDependence) {
  Rng rng(1);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 120; ++i) {
    double v = rng.Normal();
    x.push_back(v);
    y.push_back(v + rng.Normal(0.0, 0.4));
  }
  BootstrapCi ci = BootstrapTauCi(x, y, 300, rng).value();
  EXPECT_GT(ci.estimate, 0.5);
  EXPECT_LT(ci.lower, ci.estimate);
  EXPECT_GT(ci.upper, ci.estimate);
  EXPECT_GT(ci.lower, 0.3);  // clearly positive dependence
  EXPECT_LT(ci.upper, 1.0);
}

TEST(BootstrapTauTest, CiStraddlesZeroForIndependence) {
  Rng rng(2);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 120; ++i) {
    x.push_back(rng.Normal());
    y.push_back(rng.Normal());
  }
  BootstrapCi ci = BootstrapTauCi(x, y, 300, rng).value();
  EXPECT_LT(ci.lower, 0.0);
  EXPECT_GT(ci.upper, 0.0);
}

TEST(BootstrapCramersVTest, CiForAssociatedCodes) {
  Rng rng(3);
  std::vector<int32_t> x;
  std::vector<int32_t> y;
  for (int i = 0; i < 300; ++i) {
    int32_t xv = static_cast<int32_t>(rng.UniformInt(0, 2));
    x.push_back(xv);
    y.push_back(rng.Bernoulli(0.8) ? xv : static_cast<int32_t>(rng.UniformInt(0, 2)));
  }
  BootstrapCi ci = BootstrapCramersVCi(x, y, 3, 3, 300, rng).value();
  EXPECT_GT(ci.lower, 0.4);
  EXPECT_LE(ci.upper, 1.0);
}

TEST(BootstrapTest, ValidatesArguments) {
  Rng rng(4);
  EXPECT_FALSE(BootstrapTauCi({1, 2}, {1, 2}, 100, rng).ok());
  EXPECT_FALSE(BootstrapTauCi({1, 2, 3}, {1, 2}, 100, rng).ok());
  EXPECT_FALSE(BootstrapTauCi({1, 2, 3}, {1, 2, 3}, 0, rng).ok());
  EXPECT_FALSE(BootstrapTauCi({1, 2, 3}, {1, 2, 3}, 100, rng, 1.5).ok());
}

}  // namespace
}  // namespace scoded
