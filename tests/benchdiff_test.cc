// End-to-end tests for the bench perf-regression gate. Each case spawns
// the real benchdiff binary against committed fixtures under
// tests/data/benchdiff/ and asserts the exit-code contract:
//   0 = ok (includes improvements, within-noise drift, missing baselines)
//   2 = at least one regression
//   1 = operational error (e.g. malformed BENCH json)

#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "common/fileio.h"
#include "common/json.h"

namespace scoded {
namespace {

#if defined(SCODED_BENCHDIFF_BIN) && defined(SCODED_BENCHDIFF_DATA)

std::string DataDir() { return SCODED_BENCHDIFF_DATA; }

int RunBenchdiff(const std::string& extra_args) {
  std::string command = std::string(SCODED_BENCHDIFF_BIN) + " " + extra_args +
                        " > /dev/null 2>&1";
  int rc = std::system(command.c_str());
  return WEXITSTATUS(rc);
}

int RunAgainstBaseline(const std::string& current_dir, const std::string& extra_args = "") {
  return RunBenchdiff("--baseline " + DataDir() + "/baseline --current " + DataDir() + "/" +
                      current_dir + (extra_args.empty() ? "" : " " + extra_args));
}

TEST(BenchdiffTest, UnmodifiedRerunPasses) {
  EXPECT_EQ(RunAgainstBaseline("current_same"), 0);
}

TEST(BenchdiffTest, WithinNoiseDriftPasses) {
  // +12% on 100ms is over neither the 15% relative nor the 20ms absolute
  // threshold, so it must not gate.
  EXPECT_EQ(RunAgainstBaseline("current_noise"), 0);
}

TEST(BenchdiffTest, ImprovementPasses) {
  EXPECT_EQ(RunAgainstBaseline("current_improved"), 0);
}

TEST(BenchdiffTest, TwoTimesSlowdownFailsTheGate) {
  EXPECT_EQ(RunAgainstBaseline("current_regress"), 2);
}

TEST(BenchdiffTest, WarnOnlyDowngradesRegressionToExitZero) {
  EXPECT_EQ(RunAgainstBaseline("current_regress", "--warn-only"), 0);
}

TEST(BenchdiffTest, MissingBaselineIsReportedNotFatal) {
  EXPECT_EQ(RunAgainstBaseline("current_missing"), 0);
}

TEST(BenchdiffTest, MalformedBenchJsonIsAnError) {
  EXPECT_EQ(RunAgainstBaseline("current_malformed"), 1);
}

TEST(BenchdiffTest, ThresholdFlagsChangeTheVerdict) {
  // With a loose enough gate even a 2x slowdown passes...
  EXPECT_EQ(RunAgainstBaseline("current_regress", "--rel 2.0 --abs-ms 500"), 0);
  // ...and with a tight one, within-noise drift regresses.
  EXPECT_EQ(RunAgainstBaseline("current_noise", "--rel 0.01 --abs-ms 1"), 2);
}

TEST(BenchdiffTest, WritesMarkdownAndJsonReports) {
  std::string dir = ::testing::TempDir();
  std::string md_path = dir + "/benchdiff_report.md";
  std::string json_path = dir + "/benchdiff_report.json";
  EXPECT_EQ(RunAgainstBaseline("current_regress",
                               "--md " + md_path + " --json " + json_path),
            2);

  Result<std::string> md = ReadTextFile(md_path);
  ASSERT_TRUE(md.ok()) << md.status().ToString();
  EXPECT_NE(md->find("| bench |"), std::string::npos);
  EXPECT_NE(md->find("regression"), std::string::npos);

  Result<std::string> json_text = ReadTextFile(json_path);
  ASSERT_TRUE(json_text.ok()) << json_text.status().ToString();
  Result<JsonValue> report = ParseJson(*json_text);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->Find("regressions")->number, 3.0);
  EXPECT_EQ(report->Find("improvements")->number, 0.0);
  const JsonValue* benches = report->Find("benches");
  ASSERT_NE(benches, nullptr);
  ASSERT_EQ(benches->array.size(), 1u);
  EXPECT_EQ(benches->array[0].Find("status")->string_value, "compared");

  std::remove(md_path.c_str());
  std::remove(json_path.c_str());
}

TEST(BenchdiffTest, JsonReportRecordsMissingBaselines) {
  std::string json_path = ::testing::TempDir() + "/benchdiff_missing.json";
  EXPECT_EQ(RunAgainstBaseline("current_missing", "--json " + json_path), 0);
  Result<std::string> json_text = ReadTextFile(json_path);
  ASSERT_TRUE(json_text.ok()) << json_text.status().ToString();
  Result<JsonValue> report = ParseJson(*json_text);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->Find("missing_baselines")->number, 1.0);
  const JsonValue* benches = report->Find("benches");
  ASSERT_NE(benches, nullptr);
  ASSERT_EQ(benches->array.size(), 1u);
  EXPECT_EQ(benches->array[0].Find("status")->string_value, "missing-baseline");
  std::remove(json_path.c_str());
}

TEST(BenchdiffTest, UnreadableCurrentDirectoryIsAnError) {
  EXPECT_EQ(RunBenchdiff("--baseline " + DataDir() + "/baseline --current " +
                         DataDir() + "/does-not-exist"),
            1);
}

TEST(BenchdiffTest, AbsentBaselineDirectoryOnlyWarns) {
  // A baseline directory that doesn't exist yet degrades every bench to
  // missing-baseline — the bootstrap state before baselines are recorded.
  EXPECT_EQ(RunBenchdiff("--baseline " + DataDir() + "/does-not-exist --current " +
                         DataDir() + "/current_same"),
            0);
}

TEST(BenchdiffTest, BadFlagsAreAnError) {
  EXPECT_EQ(RunBenchdiff("--current-only-no-baseline"), 1);
}

#endif  // SCODED_BENCHDIFF_BIN && SCODED_BENCHDIFF_DATA

}  // namespace
}  // namespace scoded
