#include "core/sharded_check.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/scoded.h"
#include "table/csv.h"

namespace scoded {
namespace {

// Renders the decision-relevant surface of a report the way `scoded check`
// prints it, so "identical reports" means the string a user would see.
std::string FormatReport(const ApproximateSc& asc, const ViolationReport& report) {
  char line[256];
  std::snprintf(line, sizeof(line), "%s: %s (p = %.6g, statistic = %.4g, method = %s, n = %lld)",
                asc.sc.ToString().c_str(), report.violated ? "VIOLATED" : "holds", report.p_value,
                report.test.statistic, std::string(TestMethodToString(report.test.method)).c_str(),
                static_cast<long long>(report.test.n));
  std::string out = line;
  for (const ComponentResult& part : report.components) {
    std::snprintf(line, sizeof(line), " | %s p=%.9g stat=%.9g dof=%lld n=%lld exact=%d su=%zu ss=%zu",
                  part.component.ToString().c_str(), part.test.p_value, part.test.statistic,
                  static_cast<long long>(part.test.dof), static_cast<long long>(part.test.n),
                  part.test.used_exact ? 1 : 0, part.test.strata_used, part.test.strata_skipped);
    out += line;
  }
  return out;
}

class ShardedCheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/sharded_check_test.csv";
    Rng rng(41);
    std::ofstream out(path_);
    ASSERT_TRUE(out.good());
    out << "Model,Color,Price,Mileage\n";
    const char* models[] = {"civic", "corolla", "focus", "golf", "a4", "i3"};
    const char* colors[] = {"red", "blue", "white", "black"};
    for (int i = 0; i < 1300; ++i) {
      int64_t m = rng.UniformInt(0, 5);
      int64_t c = rng.UniformInt(0, 9) < 4 ? m % 4 : rng.UniformInt(0, 3);
      // ~2% nulls in each column; quoted value with a comma now and then to
      // keep the RFC-4180 path honest.
      if (rng.UniformInt(0, 49) == 0) {
        out << "";
      } else if (m == 5 && rng.UniformInt(0, 3) == 0) {
        out << "\"i3, sport\"";
      } else {
        out << models[m];
      }
      out << ',';
      if (rng.UniformInt(0, 49) == 1) {
        out << "";
      } else {
        out << colors[c];
      }
      out << ',';
      if (rng.UniformInt(0, 49) == 2) {
        out << "";
      } else {
        out << (1000 + m * 250 + rng.UniformInt(0, 400));
      }
      out << ',';
      out << rng.UniformInt(0, 120000) << '\n';
    }
    out.close();

    constraints_.push_back({MustParse("Model _||_ Color"), 0.05});
    constraints_.push_back({MustParse("Model !_||_ Price"), 0.3});
    constraints_.push_back({MustParse("Price _||_ Mileage | Model"), 0.05});
    constraints_.push_back({MustParse("Color, Model !_||_ Price"), 0.3});
  }

  static StatisticalConstraint MustParse(const std::string& text) {
    Result<StatisticalConstraint> sc = ParseConstraint(text);
    EXPECT_TRUE(sc.ok()) << sc.status().message();
    return std::move(sc).value();
  }

  std::vector<std::string> InMemoryLines() {
    Result<Table> table = csv::ReadFile(path_);
    EXPECT_TRUE(table.ok()) << table.status().message();
    Scoded scoded(std::move(table).value());
    std::vector<std::string> lines;
    for (const ApproximateSc& asc : constraints_) {
      Result<ViolationReport> report = scoded.CheckViolation(asc);
      EXPECT_TRUE(report.ok()) << report.status().message();
      lines.push_back(FormatReport(asc, *report));
    }
    return lines;
  }

  std::vector<std::string> ShardedLines(size_t shard_rows, int threads) {
    ShardedCheckOptions options;
    options.reader.shard_rows = shard_rows;
    options.threads = threads;
    Result<ShardedCheckResult> result = ShardedCheckAll(path_, constraints_, options);
    EXPECT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ(result->rows, uint64_t{1300});
    EXPECT_EQ(result->shards, (1300 + shard_rows - 1) / shard_rows);
    EXPECT_EQ(result->reports.size(), constraints_.size());
    std::vector<std::string> lines;
    for (size_t i = 0; i < result->reports.size(); ++i) {
      lines.push_back(FormatReport(constraints_[i], result->reports[i]));
    }
    return lines;
  }

  std::string path_;
  std::vector<ApproximateSc> constraints_;
};

TEST_F(ShardedCheckTest, MatchesInMemorySingleThread) {
  std::vector<std::string> expected = InMemoryLines();
  std::vector<std::string> actual = ShardedLines(/*shard_rows=*/64, /*threads=*/1);
  EXPECT_EQ(expected, actual);
}

TEST_F(ShardedCheckTest, MatchesInMemoryFourThreads) {
  std::vector<std::string> expected = InMemoryLines();
  std::vector<std::string> actual = ShardedLines(/*shard_rows=*/64, /*threads=*/4);
  EXPECT_EQ(expected, actual);
}

TEST_F(ShardedCheckTest, ShardSizeDoesNotChangeResults) {
  std::vector<std::string> expected = ShardedLines(/*shard_rows=*/1300, /*threads=*/1);
  for (size_t shard_rows : {37, 256, 5000}) {
    EXPECT_EQ(expected, ShardedLines(shard_rows, /*threads=*/2)) << "shard_rows=" << shard_rows;
  }
}

TEST_F(ShardedCheckTest, InconsistentSetIsRejectedBeforeStreaming) {
  std::vector<ApproximateSc> bad;
  bad.push_back({MustParse("Model _||_ Color, Price"), 0.05});
  bad.push_back({MustParse("Model !_||_ Color"), 0.05});
  Result<ShardedCheckResult> result = ShardedCheckAll(path_, bad, ShardedCheckOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("inconsistent"), std::string::npos);
}

TEST_F(ShardedCheckTest, BadAlphaIsRejected) {
  std::vector<ApproximateSc> bad;
  bad.push_back({MustParse("Model _||_ Color"), 1.5});
  Result<ShardedCheckResult> result = ShardedCheckAll(path_, bad, ShardedCheckOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("alpha"), std::string::npos);
}

TEST_F(ShardedCheckTest, MissingFileSurfacesReaderError) {
  Result<ShardedCheckResult> result =
      ShardedCheckAll(path_ + ".nope", constraints_, ShardedCheckOptions{});
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace scoded
