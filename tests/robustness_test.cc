// Adversarial-input robustness: extreme values, degenerate shapes, and
// pathological-but-legal inputs must produce defined results, not crashes
// or NaNs.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/drilldown.h"
#include "core/violation.h"
#include "datasets/errors.h"
#include "stats/hypothesis.h"
#include "stats/kendall.h"
#include "table/csv.h"
#include "table/table.h"

namespace scoded {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(RobustnessTest, KendallWithInfinities) {
  // ±inf are legal doubles with a total order; counts must stay exact.
  std::vector<double> x = {-kInf, 1.0, 2.0, kInf};
  std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
  KendallResult r = KendallTau(x, y);
  EXPECT_EQ(r.concordant, 6);
  EXPECT_EQ(r.discordant, 0);
  EXPECT_EQ(KendallTauNaive(x, y).s, r.s);
}

TEST(RobustnessTest, KendallWithDenormalsAndHugeMagnitudes) {
  std::vector<double> x = {1e-310, 2e-310, 1e300, 2e300};
  std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
  KendallResult r = KendallTau(x, y);
  EXPECT_DOUBLE_EQ(r.tau_a, 1.0);
  EXPECT_FALSE(std::isnan(r.p_two_sided));
}

TEST(RobustnessTest, SingleCategoryColumns) {
  TableBuilder builder;
  builder.AddCategorical("x", {"only", "only", "only", "only"});
  builder.AddCategorical("y", {"a", "b", "a", "b"});
  Table t = std::move(builder).Build().value();
  TestResult r = IndependenceTest(t, 0, 1, {}).value();
  EXPECT_FALSE(std::isnan(r.p_value));
  EXPECT_NEAR(r.statistic, 0.0, 1e-9);  // constant X carries no information
}

TEST(RobustnessTest, ConstantNumericColumns) {
  TableBuilder builder;
  builder.AddNumeric("x", std::vector<double>(50, 3.14));
  std::vector<double> y;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    y.push_back(rng.Normal());
  }
  builder.AddNumeric("y", y);
  Table t = std::move(builder).Build().value();
  TestResult r = IndependenceTest(t, 0, 1, {}).value();
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);  // all pairs tied on x: Var(S) = 0
}

TEST(RobustnessTest, AllRowsNullInOneColumn) {
  TableBuilder builder;
  builder.AddNumericWithNulls("x", std::vector<double>(10, 0.0), std::vector<bool>(10, false));
  std::vector<double> y;
  for (int i = 0; i < 10; ++i) {
    y.push_back(i);
  }
  builder.AddNumeric("y", y);
  Table t = std::move(builder).Build().value();
  TestResult r = IndependenceTest(t, 0, 1, {}).value();
  EXPECT_EQ(r.n, 0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(RobustnessTest, DrillDownOnDegenerateData) {
  // Everything identical: the engines must still return k rows without
  // crashing or looping.
  TableBuilder builder;
  builder.AddCategorical("x", std::vector<std::string>(20, "same"));
  builder.AddCategorical("y", std::vector<std::string>(20, "same"));
  Table t = std::move(builder).Build().value();
  ApproximateSc asc{ParseConstraint("x _||_ y").value(), 0.05};
  DrillDownResult result = DrillDown(t, asc, 5).value();
  EXPECT_EQ(result.rows.size(), 5u);
}

TEST(RobustnessTest, DrillDownOnTinyTables) {
  TableBuilder builder;
  builder.AddNumeric("x", {1.0, 2.0});
  builder.AddNumeric("y", {2.0, 1.0});
  Table t = std::move(builder).Build().value();
  ApproximateSc asc{ParseConstraint("x _||_ y").value(), 0.05};
  EXPECT_EQ(DrillDown(t, asc, 10).value().rows.size(), 2u);
  TableBuilder one;
  one.AddNumeric("x", {1.0});
  one.AddNumeric("y", {1.0});
  Table t1 = std::move(one).Build().value();
  EXPECT_EQ(DrillDown(t1, asc, 3).value().rows.size(), 1u);
}

TEST(RobustnessTest, EmptyTableDetection) {
  TableBuilder builder;
  builder.AddNumeric("x", {});
  builder.AddNumeric("y", {});
  Table t = std::move(builder).Build().value();
  ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.3};
  ViolationReport report = DetectViolation(t, asc).value();
  EXPECT_DOUBLE_EQ(report.p_value, 1.0);
  EXPECT_TRUE(report.violated);  // no evidence of the required dependence
  EXPECT_TRUE(DrillDown(t, asc, 5).value().rows.empty());
}

TEST(RobustnessTest, ExtremeCardinalityCategorical) {
  // Every cell unique: n categories on both sides.
  std::vector<std::string> x;
  std::vector<std::string> y;
  for (int i = 0; i < 300; ++i) {
    x.push_back("x" + std::to_string(i));
    y.push_back("y" + std::to_string(i));
  }
  TableBuilder builder;
  builder.AddCategorical("x", x);
  builder.AddCategorical("y", y);
  Table t = std::move(builder).Build().value();
  TestResult r = IndependenceTest(t, 0, 1, {}).value();
  // dof >> n: the permutation fallback must engage and return a sane p.
  EXPECT_TRUE(r.used_exact);
  EXPECT_GT(r.p_value, 0.0);
  EXPECT_LE(r.p_value, 1.0);
}

TEST(RobustnessTest, InjectionOnTinyTables) {
  TableBuilder builder;
  builder.AddNumeric("a", {1.0});
  Table t = std::move(builder).Build().value();
  InjectionOptions options;
  options.rate = 1.0;
  InjectionResult r = InjectSortingError(t, "a", options).value();
  EXPECT_EQ(r.dirty_rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.table.column(0).NumericAt(0), 1.0);
}

TEST(RobustnessTest, CsvWithOnlyHeader) {
  Table t = csv::ReadString("a,b\n").value();
  EXPECT_EQ(t.NumRows(), 0u);
  EXPECT_EQ(t.NumColumns(), 2u);
}

TEST(RobustnessTest, CsvWithExtremeNumericLiterals) {
  Table t = csv::ReadString("v\n1e308\n-1e308\n1e-300\n").value();
  EXPECT_EQ(t.schema().field(0).type, ColumnType::kNumeric);
  EXPECT_DOUBLE_EQ(t.column(0).NumericAt(0), 1e308);
}

TEST(RobustnessTest, ManyStrataWithSparseCells) {
  // 100 strata of 3 rows each: most strata skipped, combination stays sane.
  Rng rng(2);
  std::vector<double> x;
  std::vector<double> y;
  std::vector<std::string> z;
  for (int s = 0; s < 100; ++s) {
    for (int i = 0; i < 3; ++i) {
      x.push_back(rng.Normal());
      y.push_back(rng.Normal());
      z.push_back("s" + std::to_string(s));
    }
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  builder.AddCategorical("z", z);
  Table t = std::move(builder).Build().value();
  TestOptions options;
  options.min_stratum_size = 4;  // everything skipped
  TestResult r = IndependenceTest(t, 0, 1, {2}, options).value();
  EXPECT_EQ(r.strata_used, 0u);
  EXPECT_EQ(r.strata_skipped, 100u);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

}  // namespace
}  // namespace scoded
