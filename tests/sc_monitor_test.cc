#include "core/sc_monitor.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/violation.h"
#include "stats/hypothesis.h"
#include "stats/kendall.h"
#include "table/table.h"

namespace scoded {
namespace {

Table NumericPrototype() {
  TableBuilder builder;
  builder.AddNumeric("x", {});
  builder.AddNumeric("y", {});
  return std::move(builder).Build().value();
}

Table CategoricalPrototype() {
  TableBuilder builder;
  builder.AddCategorical("x", {});
  builder.AddCategorical("y", {});
  return std::move(builder).Build().value();
}

TEST(ScMonitorTest, CreateValidatesConstraint) {
  Table proto = NumericPrototype();
  ApproximateSc good{ParseConstraint("x !_||_ y").value(), 0.3};
  EXPECT_TRUE(ScMonitor::Create(proto, good).ok());
  ApproximateSc conditional{ParseConstraint("x _||_ y | x2").value(), 0.3};
  EXPECT_FALSE(ScMonitor::Create(proto, conditional).ok());
  ApproximateSc bad_alpha{good.sc, 2.0};
  EXPECT_FALSE(ScMonitor::Create(proto, bad_alpha).ok());
  TableBuilder mixed;
  mixed.AddNumeric("x", {});
  mixed.AddCategorical("y", {});
  Table mixed_proto = std::move(mixed).Build().value();
  EXPECT_FALSE(ScMonitor::Create(mixed_proto, good).ok());
}

TEST(ScMonitorTest, NumericMatchesBatchStatistic) {
  // Incremental S must equal the batch Kendall S after any prefix.
  Rng rng(1);
  std::vector<double> x;
  std::vector<double> y;
  ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.3};
  ScMonitor monitor = ScMonitor::Create(NumericPrototype(), asc).value();
  for (int i = 0; i < 120; ++i) {
    double xv = static_cast<double>(rng.UniformInt(0, 20));  // with ties
    double yv = static_cast<double>(rng.UniformInt(0, 20));
    x.push_back(xv);
    y.push_back(yv);
    ASSERT_TRUE(monitor.AppendNumeric(xv, yv).ok());
    if (i % 17 == 0 && i > 2) {
      KendallResult batch = KendallTauNaive(x, y);
      EXPECT_DOUBLE_EQ(monitor.CurrentStatistic(),
                       std::abs(static_cast<double>(batch.s)));
      EXPECT_NEAR(monitor.CurrentPValue(), batch.p_two_sided, 1e-9);
    }
  }
}

TEST(ScMonitorTest, CategoricalMatchesBatchG) {
  Rng rng(2);
  std::vector<std::string> x;
  std::vector<std::string> y;
  ApproximateSc asc{ParseConstraint("x _||_ y").value(), 0.05};
  ScMonitor monitor = ScMonitor::Create(CategoricalPrototype(), asc).value();
  for (int i = 0; i < 300; ++i) {
    std::string xv = "a" + std::to_string(rng.UniformInt(0, 3));
    std::string yv = rng.Bernoulli(0.3) ? xv + "_twin" : "b" + std::to_string(rng.UniformInt(0, 3));
    x.push_back(xv);
    y.push_back(yv);
    ASSERT_TRUE(monitor.AppendCategorical(xv, yv).ok());
  }
  TableBuilder builder;
  builder.AddCategorical("x", x);
  builder.AddCategorical("y", y);
  Table table = std::move(builder).Build().value();
  TestOptions options;
  options.allow_exact = false;  // compare against the pure asymptotic G path
  TestResult batch = IndependenceTest(table, 0, 1, {}, options).value();
  EXPECT_NEAR(monitor.CurrentStatistic(), batch.statistic, 1e-8);
  EXPECT_NEAR(monitor.CurrentPValue(), batch.p_value, 1e-8);
}

TEST(ScMonitorTest, DetectsDriftingBatch) {
  // Deployment scenario: a DSC holds while correlated batches arrive and
  // is violated after an imputed (constant-y) batch erases the dependence.
  ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.3};
  ScMonitor monitor = ScMonitor::Create(NumericPrototype(), asc).value();
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    double v = rng.Normal();
    ASSERT_TRUE(monitor.AppendNumeric(v, v + rng.Normal(0.0, 0.3)).ok());
  }
  EXPECT_FALSE(monitor.Violated());
  double p_before = monitor.CurrentPValue();
  // The bad batch: y is a constant fill-in, x arbitrary.
  ScMonitor fresh = ScMonitor::Create(NumericPrototype(), asc).value();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(fresh.AppendNumeric(rng.Normal(), 1.2345).ok());
  }
  EXPECT_TRUE(fresh.Violated());
  EXPECT_GT(fresh.CurrentPValue(), p_before);
}

TEST(ScMonitorTest, AppendTableBatch) {
  ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.3};
  ScMonitor monitor = ScMonitor::Create(NumericPrototype(), asc).value();
  Rng rng(4);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 80; ++i) {
    double v = rng.Normal();
    x.push_back(v);
    y.push_back(v);
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  Table batch = std::move(builder).Build().value();
  ASSERT_TRUE(monitor.Append(batch).ok());
  EXPECT_EQ(monitor.NumRecords(), 80u);
  EXPECT_FALSE(monitor.Violated());
}

TEST(ScMonitorTest, NullsExcludedButCounted) {
  ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.3};
  ScMonitor monitor = ScMonitor::Create(NumericPrototype(), asc).value();
  TableBuilder builder;
  builder.AddNumericWithNulls("x", {1.0, 0.0, 2.0}, {true, false, true});
  builder.AddNumeric("y", {1.0, 5.0, 2.0});
  Table batch = std::move(builder).Build().value();
  ASSERT_TRUE(monitor.Append(batch).ok());
  EXPECT_EQ(monitor.NumRecords(), 3u);
  EXPECT_DOUBLE_EQ(monitor.CurrentStatistic(), 1.0);  // one concordant pair
}

TEST(ScMonitorTest, TypeMismatchAppendRejected) {
  ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.3};
  ScMonitor numeric = ScMonitor::Create(NumericPrototype(), asc).value();
  EXPECT_FALSE(numeric.AppendCategorical("a", "b").ok());
  ScMonitor categorical = ScMonitor::Create(CategoricalPrototype(), asc).value();
  EXPECT_FALSE(categorical.AppendNumeric(1.0, 2.0).ok());
}

TEST(ScMonitorTest, ConditionalMonitorStratifies) {
  // Dependence holds within each z stratum; a confounded unconditional
  // view would see it too, but the point is the conditional state: the
  // stratified monitor matches the batch conditional test.
  TableBuilder proto;
  proto.AddNumeric("x", {});
  proto.AddNumeric("y", {});
  proto.AddCategorical("z", {});
  Table prototype = std::move(proto).Build().value();
  ApproximateSc asc{ParseConstraint("x !_||_ y | z").value(), 0.3};
  ScMonitor monitor = ScMonitor::Create(prototype, asc).value();

  Rng rng(21);
  std::vector<double> x;
  std::vector<double> y;
  std::vector<std::string> z;
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 50; ++i) {
      double v = rng.Normal();
      x.push_back(v);
      y.push_back(100.0 * s + v + rng.Normal(0.0, 0.4));
      z.push_back("s" + std::to_string(s));
    }
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  builder.AddCategorical("z", z);
  Table batch = std::move(builder).Build().value();
  ASSERT_TRUE(monitor.Append(batch).ok());
  EXPECT_EQ(monitor.NumStrata(), 3u);
  EXPECT_FALSE(monitor.Violated());

  // Match the batch conditional test (exact Z stratification, no binning).
  TestOptions options;
  TestResult reference = IndependenceTest(batch, 0, 1, {2}, options).value();
  EXPECT_NEAR(monitor.CurrentPValue(), reference.p_value, 1e-9);
}

TEST(ScMonitorTest, ConditionalRequiresCategoricalZ) {
  TableBuilder proto;
  proto.AddNumeric("x", {});
  proto.AddNumeric("y", {});
  proto.AddNumeric("year", {});
  Table prototype = std::move(proto).Build().value();
  ApproximateSc asc{ParseConstraint("x !_||_ y | year").value(), 0.3};
  EXPECT_FALSE(ScMonitor::Create(prototype, asc).ok());
}

TEST(ScMonitorTest, ConditionalRejectsScalarAppends) {
  TableBuilder proto;
  proto.AddNumeric("x", {});
  proto.AddNumeric("y", {});
  proto.AddCategorical("z", {});
  Table prototype = std::move(proto).Build().value();
  ApproximateSc asc{ParseConstraint("x !_||_ y | z").value(), 0.3};
  ScMonitor monitor = ScMonitor::Create(prototype, asc).value();
  EXPECT_FALSE(monitor.AppendNumeric(1.0, 2.0).ok());
}

TEST(ScMonitorTest, EmptyMonitorIsNotViolatedForIsc) {
  ApproximateSc isc{ParseConstraint("x _||_ y").value(), 0.05};
  ScMonitor monitor = ScMonitor::Create(NumericPrototype(), isc).value();
  EXPECT_FALSE(monitor.Violated());
  EXPECT_DOUBLE_EQ(monitor.CurrentPValue(), 1.0);
}

}  // namespace
}  // namespace scoded
