#include "core/sc_monitor.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/violation.h"
#include "stats/hypothesis.h"
#include "stats/kendall.h"
#include "table/table.h"

namespace scoded {
namespace {

Table NumericPrototype() {
  TableBuilder builder;
  builder.AddNumeric("x", {});
  builder.AddNumeric("y", {});
  return std::move(builder).Build().value();
}

Table CategoricalPrototype() {
  TableBuilder builder;
  builder.AddCategorical("x", {});
  builder.AddCategorical("y", {});
  return std::move(builder).Build().value();
}

TEST(ScMonitorTest, CreateValidatesConstraint) {
  Table proto = NumericPrototype();
  ApproximateSc good{ParseConstraint("x !_||_ y").value(), 0.3};
  EXPECT_TRUE(ScMonitor::Create(proto, good).ok());
  ApproximateSc conditional{ParseConstraint("x _||_ y | x2").value(), 0.3};
  EXPECT_FALSE(ScMonitor::Create(proto, conditional).ok());
  ApproximateSc bad_alpha{good.sc, 2.0};
  EXPECT_FALSE(ScMonitor::Create(proto, bad_alpha).ok());
  TableBuilder mixed;
  mixed.AddNumeric("x", {});
  mixed.AddCategorical("y", {});
  Table mixed_proto = std::move(mixed).Build().value();
  EXPECT_FALSE(ScMonitor::Create(mixed_proto, good).ok());
}

TEST(ScMonitorTest, NumericMatchesBatchStatistic) {
  // Incremental S must equal the batch Kendall S after any prefix.
  Rng rng(1);
  std::vector<double> x;
  std::vector<double> y;
  ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.3};
  ScMonitor monitor = ScMonitor::Create(NumericPrototype(), asc).value();
  for (int i = 0; i < 120; ++i) {
    double xv = static_cast<double>(rng.UniformInt(0, 20));  // with ties
    double yv = static_cast<double>(rng.UniformInt(0, 20));
    x.push_back(xv);
    y.push_back(yv);
    ASSERT_TRUE(monitor.AppendNumeric(xv, yv).ok());
    if (i % 17 == 0 && i > 2) {
      KendallResult batch = KendallTauNaive(x, y);
      EXPECT_DOUBLE_EQ(monitor.CurrentStatistic(),
                       std::abs(static_cast<double>(batch.s)));
      EXPECT_NEAR(monitor.CurrentPValue(), batch.p_two_sided, 1e-9);
    }
  }
}

TEST(ScMonitorTest, CategoricalMatchesBatchG) {
  Rng rng(2);
  std::vector<std::string> x;
  std::vector<std::string> y;
  ApproximateSc asc{ParseConstraint("x _||_ y").value(), 0.05};
  ScMonitor monitor = ScMonitor::Create(CategoricalPrototype(), asc).value();
  for (int i = 0; i < 300; ++i) {
    std::string xv = "a" + std::to_string(rng.UniformInt(0, 3));
    std::string yv = rng.Bernoulli(0.3) ? xv + "_twin" : "b" + std::to_string(rng.UniformInt(0, 3));
    x.push_back(xv);
    y.push_back(yv);
    ASSERT_TRUE(monitor.AppendCategorical(xv, yv).ok());
  }
  TableBuilder builder;
  builder.AddCategorical("x", x);
  builder.AddCategorical("y", y);
  Table table = std::move(builder).Build().value();
  TestOptions options;
  options.allow_exact = false;  // compare against the pure asymptotic G path
  TestResult batch = IndependenceTest(table, 0, 1, {}, options).value();
  EXPECT_NEAR(monitor.CurrentStatistic(), batch.statistic, 1e-8);
  EXPECT_NEAR(monitor.CurrentPValue(), batch.p_value, 1e-8);
}

TEST(ScMonitorTest, DetectsDriftingBatch) {
  // Deployment scenario: a DSC holds while correlated batches arrive and
  // is violated after an imputed (constant-y) batch erases the dependence.
  ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.3};
  ScMonitor monitor = ScMonitor::Create(NumericPrototype(), asc).value();
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    double v = rng.Normal();
    ASSERT_TRUE(monitor.AppendNumeric(v, v + rng.Normal(0.0, 0.3)).ok());
  }
  EXPECT_FALSE(monitor.Violated());
  double p_before = monitor.CurrentPValue();
  // The bad batch: y is a constant fill-in, x arbitrary.
  ScMonitor fresh = ScMonitor::Create(NumericPrototype(), asc).value();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(fresh.AppendNumeric(rng.Normal(), 1.2345).ok());
  }
  EXPECT_TRUE(fresh.Violated());
  EXPECT_GT(fresh.CurrentPValue(), p_before);
}

TEST(ScMonitorTest, AppendTableBatch) {
  ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.3};
  ScMonitor monitor = ScMonitor::Create(NumericPrototype(), asc).value();
  Rng rng(4);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 80; ++i) {
    double v = rng.Normal();
    x.push_back(v);
    y.push_back(v);
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  Table batch = std::move(builder).Build().value();
  ASSERT_TRUE(monitor.Append(batch).ok());
  EXPECT_EQ(monitor.NumRecords(), 80u);
  EXPECT_FALSE(monitor.Violated());
}

TEST(ScMonitorTest, NullsExcludedButCounted) {
  ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.3};
  ScMonitor monitor = ScMonitor::Create(NumericPrototype(), asc).value();
  TableBuilder builder;
  builder.AddNumericWithNulls("x", {1.0, 0.0, 2.0}, {true, false, true});
  builder.AddNumeric("y", {1.0, 5.0, 2.0});
  Table batch = std::move(builder).Build().value();
  ASSERT_TRUE(monitor.Append(batch).ok());
  EXPECT_EQ(monitor.NumRecords(), 3u);
  EXPECT_DOUBLE_EQ(monitor.CurrentStatistic(), 1.0);  // one concordant pair
}

TEST(ScMonitorTest, TypeMismatchAppendRejected) {
  ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.3};
  ScMonitor numeric = ScMonitor::Create(NumericPrototype(), asc).value();
  EXPECT_FALSE(numeric.AppendCategorical("a", "b").ok());
  ScMonitor categorical = ScMonitor::Create(CategoricalPrototype(), asc).value();
  EXPECT_FALSE(categorical.AppendNumeric(1.0, 2.0).ok());
}

TEST(ScMonitorTest, ConditionalMonitorStratifies) {
  // Dependence holds within each z stratum; a confounded unconditional
  // view would see it too, but the point is the conditional state: the
  // stratified monitor matches the batch conditional test.
  TableBuilder proto;
  proto.AddNumeric("x", {});
  proto.AddNumeric("y", {});
  proto.AddCategorical("z", {});
  Table prototype = std::move(proto).Build().value();
  ApproximateSc asc{ParseConstraint("x !_||_ y | z").value(), 0.3};
  ScMonitor monitor = ScMonitor::Create(prototype, asc).value();

  Rng rng(21);
  std::vector<double> x;
  std::vector<double> y;
  std::vector<std::string> z;
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 50; ++i) {
      double v = rng.Normal();
      x.push_back(v);
      y.push_back(100.0 * s + v + rng.Normal(0.0, 0.4));
      z.push_back("s" + std::to_string(s));
    }
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  builder.AddCategorical("z", z);
  Table batch = std::move(builder).Build().value();
  ASSERT_TRUE(monitor.Append(batch).ok());
  EXPECT_EQ(monitor.NumStrata(), 3u);
  EXPECT_FALSE(monitor.Violated());

  // Match the batch conditional test (exact Z stratification, no binning).
  TestOptions options;
  TestResult reference = IndependenceTest(batch, 0, 1, {2}, options).value();
  EXPECT_NEAR(monitor.CurrentPValue(), reference.p_value, 1e-9);
}

TEST(ScMonitorTest, ConditionalRequiresCategoricalZ) {
  TableBuilder proto;
  proto.AddNumeric("x", {});
  proto.AddNumeric("y", {});
  proto.AddNumeric("year", {});
  Table prototype = std::move(proto).Build().value();
  ApproximateSc asc{ParseConstraint("x !_||_ y | year").value(), 0.3};
  EXPECT_FALSE(ScMonitor::Create(prototype, asc).ok());
}

TEST(ScMonitorTest, ConditionalRejectsScalarAppends) {
  TableBuilder proto;
  proto.AddNumeric("x", {});
  proto.AddNumeric("y", {});
  proto.AddCategorical("z", {});
  Table prototype = std::move(proto).Build().value();
  ApproximateSc asc{ParseConstraint("x !_||_ y | z").value(), 0.3};
  ScMonitor monitor = ScMonitor::Create(prototype, asc).value();
  EXPECT_FALSE(monitor.AppendNumeric(1.0, 2.0).ok());
}

TEST(ScMonitorTest, EmptyMonitorIsNotViolatedForIsc) {
  ApproximateSc isc{ParseConstraint("x _||_ y").value(), 0.05};
  ScMonitor monitor = ScMonitor::Create(NumericPrototype(), isc).value();
  EXPECT_FALSE(monitor.Violated());
  EXPECT_DOUBLE_EQ(monitor.CurrentPValue(), 1.0);
}

TEST(ScMonitorTest, LongTiedStreamMatchesBatchAcrossRebuilds) {
  // 2000 appends push the concordance index through many buffer
  // compactions and multi-level block merges; the monitor's p-value must
  // still equal the batch tau test to 1e-9 at every checkpoint.
  Rng rng(5);
  std::vector<double> x;
  std::vector<double> y;
  ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.3};
  ScMonitor monitor = ScMonitor::Create(NumericPrototype(), asc).value();
  for (int i = 0; i < 2000; ++i) {
    double xv = static_cast<double>(rng.UniformInt(0, 40));  // heavy ties
    double yv = xv + static_cast<double>(rng.UniformInt(0, 40));
    x.push_back(xv);
    y.push_back(yv);
    ASSERT_TRUE(monitor.AppendNumeric(xv, yv).ok());
    if (i % 257 == 0 && i > 2) {
      KendallResult batch = KendallTauNaive(x, y);
      ASSERT_DOUBLE_EQ(monitor.CurrentStatistic(),
                       std::abs(static_cast<double>(batch.s)));
      ASSERT_NEAR(monitor.CurrentPValue(), batch.p_two_sided, 1e-9) << "i=" << i;
    }
  }
  KendallResult batch = KendallTauNaive(x, y);
  EXPECT_NEAR(monitor.CurrentPValue(), batch.p_two_sided, 1e-9);
}

TEST(ScMonitorTest, FailedBatchAppendIsNoOp) {
  ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.3};
  ScMonitor monitor = ScMonitor::Create(NumericPrototype(), asc).value();
  TableBuilder good;
  good.AddNumeric("x", {1.0, 2.0, 3.0});
  good.AddNumeric("y", {1.0, 2.0, 3.0});
  ASSERT_TRUE(monitor.Append(std::move(good).Build().value()).ok());
  double statistic = monitor.CurrentStatistic();
  double p = monitor.CurrentPValue();

  // A batch whose y column has the wrong type: rows 0..n would have been
  // ingestible one by one, so a partial apply would corrupt state. The
  // whole batch must be rejected before any row is ingested.
  TableBuilder bad;
  bad.AddNumeric("x", {4.0, 5.0});
  bad.AddCategorical("y", {"a", "b"});
  EXPECT_FALSE(monitor.Append(std::move(bad).Build().value()).ok());

  EXPECT_EQ(monitor.NumRecords(), 3u);
  EXPECT_DOUBLE_EQ(monitor.CurrentStatistic(), statistic);
  EXPECT_DOUBLE_EQ(monitor.CurrentPValue(), p);
  // And the monitor still works after the rejected batch.
  ASSERT_TRUE(monitor.AppendNumeric(4.0, 4.0).ok());
  EXPECT_EQ(monitor.NumRecords(), 4u);
}

TEST(ScMonitorTest, FailedConditionalBatchAppendIsNoOp) {
  TableBuilder proto;
  proto.AddNumeric("x", {});
  proto.AddNumeric("y", {});
  proto.AddCategorical("z", {});
  Table prototype = std::move(proto).Build().value();
  ApproximateSc asc{ParseConstraint("x !_||_ y | z").value(), 0.3};
  ScMonitor monitor = ScMonitor::Create(prototype, asc).value();

  // Missing the conditioning column entirely.
  TableBuilder bad;
  bad.AddNumeric("x", {1.0});
  bad.AddNumeric("y", {1.0});
  EXPECT_FALSE(monitor.Append(std::move(bad).Build().value()).ok());
  EXPECT_EQ(monitor.NumRecords(), 0u);
  EXPECT_EQ(monitor.NumStrata(), 0u);
}

TEST(ScMonitorTest, WindowedNumericMatchesBatchOverWindow) {
  // Sliding-window mode: after eviction the monitor state must equal a
  // batch tau test over exactly the last `window` rows.
  const size_t window = 64;
  Rng rng(6);
  std::vector<double> x;
  std::vector<double> y;
  ApproximateSc asc{ParseConstraint("x !_||_ y").value(), 0.3};
  MonitorOptions mopts;
  mopts.window = window;
  ScMonitor monitor = ScMonitor::Create(NumericPrototype(), asc, {}, mopts).value();
  for (int i = 0; i < 300; ++i) {
    double xv = static_cast<double>(rng.UniformInt(0, 12));  // with ties
    double yv = static_cast<double>(rng.UniformInt(0, 12));
    x.push_back(xv);
    y.push_back(yv);
    ASSERT_TRUE(monitor.AppendNumeric(xv, yv).ok());
    ASSERT_LE(monitor.WindowOccupancy(), window);
    if (i % 37 == 0 && i > 2) {
      size_t lo = x.size() > window ? x.size() - window : 0;
      std::vector<double> wx(x.begin() + static_cast<ptrdiff_t>(lo), x.end());
      std::vector<double> wy(y.begin() + static_cast<ptrdiff_t>(lo), y.end());
      KendallResult batch = KendallTauNaive(wx, wy);
      ASSERT_DOUBLE_EQ(monitor.CurrentStatistic(),
                       std::abs(static_cast<double>(batch.s)))
          << "i=" << i;
      ASSERT_NEAR(monitor.CurrentPValue(), batch.p_two_sided, 1e-9) << "i=" << i;
    }
  }
  // NumRecords counts lifetime appends; occupancy is capped by the window.
  EXPECT_EQ(monitor.NumRecords(), 300u);
  EXPECT_EQ(monitor.WindowOccupancy(), window);
}

TEST(ScMonitorTest, WindowedCategoricalMatchesBatchOverWindow) {
  const size_t window = 80;
  Rng rng(8);
  std::vector<std::string> x;
  std::vector<std::string> y;
  ApproximateSc asc{ParseConstraint("x _||_ y").value(), 0.05};
  MonitorOptions mopts;
  mopts.window = window;
  ScMonitor monitor = ScMonitor::Create(CategoricalPrototype(), asc, {}, mopts).value();
  for (int i = 0; i < 250; ++i) {
    std::string xv = "a" + std::to_string(rng.UniformInt(0, 2));
    std::string yv = rng.Bernoulli(0.4) ? xv + "!" : "b" + std::to_string(rng.UniformInt(0, 2));
    x.push_back(xv);
    y.push_back(yv);
    ASSERT_TRUE(monitor.AppendCategorical(xv, yv).ok());
  }
  size_t lo = x.size() - window;
  TableBuilder builder;
  builder.AddCategorical("x", std::vector<std::string>(x.begin() + static_cast<ptrdiff_t>(lo),
                                                       x.end()));
  builder.AddCategorical("y", std::vector<std::string>(y.begin() + static_cast<ptrdiff_t>(lo),
                                                       y.end()));
  Table tail = std::move(builder).Build().value();
  TestOptions options;
  options.allow_exact = false;
  TestResult batch = IndependenceTest(tail, 0, 1, {}, options).value();
  EXPECT_NEAR(monitor.CurrentStatistic(), batch.statistic, 1e-8);
  EXPECT_NEAR(monitor.CurrentPValue(), batch.p_value, 1e-8);
}

TEST(ScMonitorTest, WindowedConditionalEvictsAcrossStrata) {
  // Strata shrink (and may empty out) as their rows age out of the window;
  // the stratified p-value must keep matching the batch conditional test
  // over the surviving rows.
  TableBuilder proto;
  proto.AddNumeric("x", {});
  proto.AddNumeric("y", {});
  proto.AddCategorical("z", {});
  Table prototype = std::move(proto).Build().value();
  ApproximateSc asc{ParseConstraint("x !_||_ y | z").value(), 0.3};
  MonitorOptions mopts;
  mopts.window = 60;
  ScMonitor monitor = ScMonitor::Create(prototype, asc, {}, mopts).value();

  Rng rng(31);
  std::vector<double> x;
  std::vector<double> y;
  std::vector<std::string> z;
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 50; ++i) {
      double v = rng.Normal();
      x.push_back(v);
      y.push_back(v + rng.Normal(0.0, 0.5));
      z.push_back("s" + std::to_string(s));
    }
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  builder.AddCategorical("z", z);
  Table all = std::move(builder).Build().value();
  ASSERT_TRUE(monitor.Append(all).ok());
  EXPECT_EQ(monitor.WindowOccupancy(), 60u);

  // The window holds the last 60 rows: 10 of s1 and all 50 of s2.
  std::vector<size_t> tail_rows;
  for (size_t r = 90; r < 150; ++r) {
    tail_rows.push_back(r);
  }
  Table tail = all.Gather(tail_rows);
  TestResult reference = IndependenceTest(tail, 0, 1, {2}, TestOptions{}).value();
  EXPECT_NEAR(monitor.CurrentPValue(), reference.p_value, 1e-9);
}

}  // namespace
}  // namespace scoded
