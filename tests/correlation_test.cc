#include "stats/correlation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scoded {
namespace {

TEST(PearsonTest, PerfectLinear) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantInputGivesZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {2, 3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({}, {}), 0.0);
}

TEST(PearsonTest, KnownValue) {
  // Hand-computable: x={1,2,3}, y={1,3,2} -> r = 0.5.
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {1, 3, 2}), 0.5, 1e-12);
}

TEST(PearsonTest, PValueSmallForStrongCorrelation) {
  std::vector<double> x;
  std::vector<double> y;
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    double v = rng.Normal();
    x.push_back(v);
    y.push_back(2.0 * v + rng.Normal(0.0, 0.1));
  }
  double rho = PearsonCorrelation(x, y);
  EXPECT_GT(rho, 0.9);
  EXPECT_LT(PearsonPValue(rho, x.size()), 1e-6);
}

TEST(PearsonTest, PValueLargeForIndependent) {
  std::vector<double> x;
  std::vector<double> y;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    x.push_back(rng.Normal());
    y.push_back(rng.Normal());
  }
  double rho = PearsonCorrelation(x, y);
  EXPECT_GT(PearsonPValue(rho, x.size()), 0.01);
}

TEST(PearsonTest, PValueEdgeCases) {
  EXPECT_DOUBLE_EQ(PearsonPValue(0.5, 2), 1.0);
  EXPECT_DOUBLE_EQ(PearsonPValue(1.0, 10), 0.0);
}

TEST(SpearmanTest, MonotoneNonlinearIsPerfect) {
  // y = x³ is monotone: Spearman = 1 even though Pearson < 1 on skewed x.
  std::vector<double> x = {1, 2, 3, 4, 5, 10};
  std::vector<double> y;
  for (double v : x) {
    y.push_back(v * v * v);
  }
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(SpearmanTest, HandlesTiesViaMidranks) {
  double rho = SpearmanCorrelation({1, 2, 2, 3}, {1, 2, 3, 4});
  EXPECT_GT(rho, 0.9);
  EXPECT_LT(rho, 1.0);
}

TEST(SpearmanTest, SymmetricInArguments) {
  std::vector<double> x = {3, 1, 4, 1, 5, 9, 2, 6};
  std::vector<double> y = {2, 7, 1, 8, 2, 8, 1, 8};
  EXPECT_NEAR(SpearmanCorrelation(x, y), SpearmanCorrelation(y, x), 1e-12);
}

}  // namespace
}  // namespace scoded
