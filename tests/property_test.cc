// Cross-module property tests: invariants that must hold across random
// inputs and parameter sweeps, beyond the example-based unit tests.

#include <algorithm>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "constraints/graphoid.h"
#include "core/drilldown.h"
#include "core/violation.h"
#include "stats/hypothesis.h"
#include "table/csv.h"
#include "table/table.h"

namespace scoded {
namespace {

Table RandomMixedTable(size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> num1;
  std::vector<double> num2;
  std::vector<std::string> cat1;
  std::vector<std::string> cat2;
  for (size_t i = 0; i < rows; ++i) {
    double shared = rng.Normal();
    num1.push_back(shared + rng.Normal(0.0, 0.7));
    num2.push_back(shared + rng.Normal(0.0, 0.7));
    cat1.push_back("c" + std::to_string(rng.UniformInt(0, 3)));
    cat2.push_back(rng.Bernoulli(0.6) ? cat1.back() : "c" + std::to_string(rng.UniformInt(0, 3)));
  }
  TableBuilder builder;
  builder.AddNumeric("n1", num1);
  builder.AddNumeric("n2", num2);
  builder.AddCategorical("c1", cat1);
  builder.AddCategorical("c2", cat2);
  return std::move(builder).Build().value();
}

// --- test symmetry: swapping X and Y must not change the p-value --------
class TestSymmetryProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TestSymmetryProperty, PValueSymmetricInArguments) {
  Table t = RandomMixedTable(150, GetParam());
  // numeric pair
  TestResult ab = IndependenceTest(t, 0, 1, {}).value();
  TestResult ba = IndependenceTest(t, 1, 0, {}).value();
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-12);
  // categorical pair
  TestResult cd = IndependenceTest(t, 2, 3, {}).value();
  TestResult dc = IndependenceTest(t, 3, 2, {}).value();
  EXPECT_NEAR(cd.p_value, dc.p_value, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TestSymmetryProperty, ::testing::Values(1, 2, 3, 4, 5));

// --- violation monotonicity in alpha -------------------------------------
class AlphaMonotonicityProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlphaMonotonicityProperty, IscViolationMonotoneInAlpha) {
  Table t = RandomMixedTable(120, GetParam());
  StatisticalConstraint sc = Independence({"n1"}, {"n2"});
  bool previous = false;
  for (double alpha : {0.001, 0.01, 0.05, 0.2, 0.5, 0.9, 0.999}) {
    bool violated = DetectViolation(t, {sc, alpha}).value().violated;
    // Once violated at some alpha, every larger alpha must also violate.
    EXPECT_TRUE(!previous || violated) << "alpha=" << alpha;
    previous = violated;
  }
}

TEST_P(AlphaMonotonicityProperty, DscViolationAntitoneInAlpha) {
  Table t = RandomMixedTable(120, GetParam() + 100);
  StatisticalConstraint sc = Dependence({"n1"}, {"c1"});
  bool previous = true;
  for (double alpha : {0.001, 0.01, 0.05, 0.2, 0.5, 0.9, 0.999}) {
    bool violated = DetectViolation(t, {sc, alpha}).value().violated;
    // A DSC violated at some alpha cannot become violated again after
    // holding: violation is antitone in alpha.
    EXPECT_TRUE(previous || !violated) << "alpha=" << alpha;
    previous = violated;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlphaMonotonicityProperty, ::testing::Values(7, 8, 9));

// --- drill-down structural invariants ------------------------------------
class DrillDownInvariantProperty
    : public ::testing::TestWithParam<std::tuple<size_t, int>> {};

TEST_P(DrillDownInvariantProperty, RowsUniqueInRangeAndPrefixConsistent) {
  auto [k, strategy_id] = GetParam();
  Table t = RandomMixedTable(90, 42);
  ApproximateSc asc{Independence({"n1"}, {"n2"}), 0.05};
  DrillDownOptions options;
  options.strategy = strategy_id == 0 ? Strategy::kDirect : Strategy::kComplement;
  DrillDownResult result = DrillDown(t, asc, k, options).value();
  EXPECT_EQ(result.rows.size(), std::min(k, t.NumRows()));
  std::set<size_t> unique(result.rows.begin(), result.rows.end());
  EXPECT_EQ(unique.size(), result.rows.size());
  for (size_t row : result.rows) {
    EXPECT_LT(row, t.NumRows());
  }
  // Prefix consistency with the full ranking.
  std::vector<size_t> ranking = RankSuspiciousRecords(t, asc, k, options).value();
  EXPECT_EQ(ranking, result.rows);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DrillDownInvariantProperty,
                         ::testing::Combine(::testing::Values<size_t>(1, 5, 20, 89, 90, 500),
                                            ::testing::Values(0, 1)));

// --- CSV round-trip property ----------------------------------------------
class CsvRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripProperty, WriteReadPreservesShapeAndCategoricals) {
  Table t = RandomMixedTable(60, GetParam());
  Table back = csv::ReadString(csv::WriteString(t)).value();
  ASSERT_EQ(back.NumRows(), t.NumRows());
  ASSERT_EQ(back.NumColumns(), t.NumColumns());
  for (size_t c = 0; c < t.NumColumns(); ++c) {
    EXPECT_EQ(back.schema().field(c).name, t.schema().field(c).name);
    EXPECT_EQ(back.schema().field(c).type, t.schema().field(c).type);
  }
  // Categorical cells survive exactly; numeric cells up to printing noise.
  for (size_t r = 0; r < t.NumRows(); ++r) {
    EXPECT_EQ(back.column(2).CategoryAt(r), t.column(2).CategoryAt(r));
    EXPECT_NEAR(back.column(0).NumericAt(r), t.column(0).NumericAt(r),
                1e-4 * (1.0 + std::abs(t.column(0).NumericAt(r))));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripProperty, ::testing::Values(11, 12, 13, 14));

// --- permutation determinism ----------------------------------------------
TEST(PermutationDeterminismProperty, SameSeedSameP) {
  Table t = RandomMixedTable(80, 21);
  TestOptions options;
  Rng rng1(99);
  Rng rng2(99);
  TestResult a = PermutationIndependenceTest(t, 2, 3, {}, 150, rng1, options).value();
  TestResult b = PermutationIndependenceTest(t, 2, 3, {}, 150, rng2, options).value();
  EXPECT_DOUBLE_EQ(a.p_value, b.p_value);
  EXPECT_GT(a.p_value, 0.0);
  EXPECT_LE(a.p_value, 1.0);
}

// --- graphoid minimisation preserves semantics -----------------------------
class MinimizePreservationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MinimizePreservationProperty, ClosureOfMinimalCoversOriginal) {
  // Random small ISC sets over 4 variables: the closure of the minimal
  // subset must contain every original triple.
  Rng rng(GetParam());
  std::vector<StatisticalConstraint> constraints;
  const std::vector<std::string> vars = {"A", "B", "C", "D"};
  for (int i = 0; i < 5; ++i) {
    // Draw two distinct variables plus an optional conditioning variable.
    std::vector<size_t> pick = rng.SampleWithoutReplacement(4, 3);
    StatisticalConstraint sc = Independence({vars[pick[0]]}, {vars[pick[1]]});
    if (rng.Bernoulli(0.5)) {
      sc.z.push_back(vars[pick[2]]);
    }
    constraints.push_back(sc);
  }
  std::vector<StatisticalConstraint> minimal = MinimizeConstraints(constraints).value();
  // Re-derive: every original constraint must either be in the minimal set
  // or in its closure. Verify via CheckConsistency: adding the negation of
  // an original constraint to the minimal set must be inconsistent.
  for (const StatisticalConstraint& sc : constraints) {
    std::vector<StatisticalConstraint> augmented = minimal;
    augmented.push_back(sc.Negated());
    EXPECT_FALSE(CheckConsistency(augmented).value().consistent)
        << "minimal set lost " << sc.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizePreservationProperty,
                         ::testing::Values(31, 32, 33, 34, 35, 36));

// --- stratification invariants ---------------------------------------------
TEST(StratifyRowsProperty, PartitionsInputExactly) {
  Table t = RandomMixedTable(200, 55);
  std::vector<size_t> rows;
  for (size_t i = 0; i < t.NumRows(); i += 2) {
    rows.push_back(i);
  }
  TestOptions options;
  Stratification strata = StratifyRows(t, {2, 3}, rows, options);
  size_t total = 0;
  std::set<size_t> seen;
  for (const std::vector<size_t>& group : strata.groups) {
    total += group.size();
    seen.insert(group.begin(), group.end());
  }
  EXPECT_EQ(total, rows.size());
  EXPECT_EQ(seen.size(), rows.size());
  EXPECT_EQ(strata.group_of_row.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const std::vector<size_t>& group = strata.groups[strata.group_of_row[i]];
    EXPECT_NE(std::find(group.begin(), group.end(), rows[i]), group.end());
  }
}

TEST(StratifyRowsProperty, ContinuousConditioningBinsRespectCap) {
  Table t = RandomMixedTable(500, 56);
  std::vector<size_t> rows(t.NumRows());
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i] = i;
  }
  TestOptions options;
  options.condition_bins = 6;
  Stratification strata = StratifyRows(t, {0}, rows, options);  // continuous column
  EXPECT_LE(strata.groups.size(), 6u);
  EXPECT_GE(strata.groups.size(), 2u);
}

}  // namespace
}  // namespace scoded
