#include "common/math.h"

#include <cmath>

#include <gtest/gtest.h>

namespace scoded {
namespace {

TEST(LogGammaTest, MatchesFactorials) {
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LogGamma(11.0), std::log(3628800.0), 1e-8);
}

TEST(LogGammaTest, HalfIntegerValues) {
  // Γ(1/2) = √π.
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-12);
  // Γ(3/2) = √π / 2.
  EXPECT_NEAR(LogGamma(1.5), 0.5 * std::log(M_PI) - std::log(2.0), 1e-12);
}

TEST(RegularizedGammaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(2.0, 0.0), 1.0);
  EXPECT_NEAR(RegularizedGammaP(1.0, 1e8), 1.0, 1e-12);
}

TEST(RegularizedGammaTest, PPlusQIsOne) {
  for (double a : {0.5, 1.0, 2.5, 10.0, 50.0}) {
    for (double x : {0.1, 0.7, 1.0, 3.0, 10.0, 80.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedGammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(ChiSquaredTest, KnownCriticalValues) {
  // Classic critical points of the χ² distribution.
  EXPECT_NEAR(ChiSquaredSf(3.841458820694124, 1.0), 0.05, 1e-9);
  EXPECT_NEAR(ChiSquaredSf(5.991464547107979, 2.0), 0.05, 1e-9);
  EXPECT_NEAR(ChiSquaredSf(6.634896601021213, 1.0), 0.01, 1e-9);
  EXPECT_NEAR(ChiSquaredSf(18.307038053275146, 10.0), 0.05, 1e-9);
}

TEST(ChiSquaredTest, CdfSfComplementarity) {
  for (double dof : {1.0, 3.0, 7.0, 20.0}) {
    for (double x : {0.5, 2.0, 8.0, 30.0}) {
      EXPECT_NEAR(ChiSquaredCdf(x, dof) + ChiSquaredSf(x, dof), 1.0, 1e-12);
    }
  }
}

TEST(ChiSquaredTest, NegativeStatisticIsFullTail) {
  EXPECT_DOUBLE_EQ(ChiSquaredSf(-1.0, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(ChiSquaredCdf(-1.0, 3.0), 0.0);
}

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(NormalCdf(-1.959963984540054), 0.025, 1e-12);
  EXPECT_NEAR(NormalSf(1.6448536269514722), 0.05, 1e-12);
}

TEST(NormalTest, TwoSidedTail) {
  EXPECT_NEAR(NormalTwoSidedP(1.959963984540054), 0.05, 1e-12);
  EXPECT_NEAR(NormalTwoSidedP(-1.959963984540054), 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(NormalTwoSidedP(0.0), 1.0);
}

TEST(NormalTest, QuantileRoundTrip) {
  for (double p : {0.001, 0.01, 0.05, 0.3, 0.5, 0.7, 0.95, 0.99, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalTest, PdfIntegratesToDensityShape) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-14);
  EXPECT_NEAR(NormalPdf(1.0), 0.24197072451914337, 1e-14);
  EXPECT_DOUBLE_EQ(NormalPdf(3.0), NormalPdf(-3.0));
}

TEST(IncompleteBetaTest, SymmetryAndBoundaries) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  for (double x : {0.1, 0.35, 0.5, 0.8}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 5.0, x),
                1.0 - RegularizedIncompleteBeta(5.0, 2.0, 1.0 - x), 1e-12);
  }
}

TEST(IncompleteBetaTest, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (double x : {0.2, 0.5, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(StudentTTest, KnownCriticalValues) {
  // Two-sided 5% critical values: t(10) = 2.228..., t(30) = 2.042...
  EXPECT_NEAR(StudentTTwoSidedP(2.2281388519649385, 10.0), 0.05, 1e-9);
  EXPECT_NEAR(StudentTTwoSidedP(2.042272456301238, 30.0), 0.05, 1e-9);
  EXPECT_DOUBLE_EQ(StudentTTwoSidedP(0.0, 5.0), 1.0);
}

TEST(Log2SafeTest, ZeroMapsToZero) {
  EXPECT_DOUBLE_EQ(Log2Safe(0.0), 0.0);
  EXPECT_DOUBLE_EQ(Log2Safe(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(Log2Safe(8.0), 3.0);
}

TEST(BinomialCoefficientTest, SmallValuesExact) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(4, 7), 0.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(7, -1), 0.0);
  EXPECT_NEAR(BinomialCoefficient(50, 25), 126410606437752.0, 126410606437752.0 * 1e-10);
}

// Property sweep: the χ² mean equals its dof (checked through the CDF
// median bracket: CDF at the mean must be above CDF at dof/2).
class ChiSquaredMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(ChiSquaredMonotoneTest, CdfMonotoneInX) {
  double dof = GetParam();
  double prev = -1.0;
  for (double x = 0.0; x <= 40.0; x += 0.5) {
    double cdf = ChiSquaredCdf(x, dof);
    EXPECT_GE(cdf, prev);
    EXPECT_GE(cdf, 0.0);
    EXPECT_LE(cdf, 1.0);
    prev = cdf;
  }
}

INSTANTIATE_TEST_SUITE_P(Dofs, ChiSquaredMonotoneTest,
                         ::testing::Values(1.0, 2.0, 3.0, 5.0, 10.0, 25.0));

}  // namespace
}  // namespace scoded
