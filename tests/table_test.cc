#include "table/table.h"

#include <cmath>

#include <gtest/gtest.h>

namespace scoded {
namespace {

Table MakeCarTable() {
  TableBuilder builder;
  builder.AddCategorical("Model", {"BMW", "BMW", "Prius", "Prius"});
  builder.AddCategorical("Color", {"White", "Black", "White", "Black"});
  builder.AddNumeric("Price", {40000, 41000, 25000, 25500});
  return std::move(builder).Build().value();
}

TEST(ColumnTest, NumericBasics) {
  Column col = Column::Numeric({1.0, 2.0, 3.0});
  EXPECT_EQ(col.type(), ColumnType::kNumeric);
  EXPECT_EQ(col.size(), 3u);
  EXPECT_DOUBLE_EQ(col.NumericAt(1), 2.0);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_EQ(col.NullCount(), 0u);
}

TEST(ColumnTest, NumericNulls) {
  Column col = Column::NumericWithNulls({1.0, 0.0, 3.0}, {true, false, true});
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_EQ(col.NullCount(), 1u);
  EXPECT_TRUE(std::isnan(col.NumericAt(1)));
  EXPECT_EQ(col.ValueToString(1), "");
}

TEST(ColumnTest, NaNValuesCountAsNull) {
  Column col = Column::Numeric({1.0, std::nan(""), 3.0});
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.NullCount(), 1u);
}

TEST(ColumnTest, CategoricalDictionaryEncoding) {
  Column col = Column::Categorical({"red", "blue", "red", "green"});
  EXPECT_EQ(col.type(), ColumnType::kCategorical);
  EXPECT_EQ(col.NumCategories(), 3u);
  EXPECT_EQ(col.CodeAt(0), col.CodeAt(2));
  EXPECT_NE(col.CodeAt(0), col.CodeAt(1));
  EXPECT_EQ(col.CategoryAt(3), "green");
  EXPECT_EQ(col.dictionary()[0], "red");  // first-appearance order
}

TEST(ColumnTest, CategoricalFromCodesWithNull) {
  Column col = Column::CategoricalFromCodes({0, -1, 1}, {"a", "b"});
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.NullCount(), 1u);
  EXPECT_EQ(col.CategoryAt(2), "b");
}

TEST(ColumnTest, Gather) {
  Column col = Column::Categorical({"a", "b", "c"});
  Column gathered = col.Gather({2, 0, 2});
  EXPECT_EQ(gathered.size(), 3u);
  EXPECT_EQ(gathered.CategoryAt(0), "c");
  EXPECT_EQ(gathered.CategoryAt(1), "a");
  EXPECT_EQ(gathered.CategoryAt(2), "c");
}

TEST(ColumnTest, ValueToStringRendersIntegersPlainly) {
  Column col = Column::Numeric({3.0, 2.5});
  EXPECT_EQ(col.ValueToString(0), "3");
  EXPECT_EQ(col.ValueToString(1), "2.5");
}

TEST(SchemaTest, FindField) {
  Schema schema({{"a", ColumnType::kNumeric}, {"b", ColumnType::kCategorical}});
  EXPECT_EQ(schema.FindField("b").value(), 1);
  EXPECT_FALSE(schema.FindField("missing").has_value());
  EXPECT_EQ(schema.ToString(), "a:numeric, b:categorical");
}

TEST(TableTest, MakeValidatesArity) {
  Schema schema({{"a", ColumnType::kNumeric}});
  Result<Table> r = Table::Make(schema, {});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, MakeValidatesTypes) {
  Schema schema({{"a", ColumnType::kCategorical}});
  Result<Table> r = Table::Make(schema, {Column::Numeric({1.0})});
  EXPECT_FALSE(r.ok());
}

TEST(TableTest, MakeValidatesRowCounts) {
  Schema schema({{"a", ColumnType::kNumeric}, {"b", ColumnType::kNumeric}});
  Result<Table> r = Table::Make(schema, {Column::Numeric({1.0}), Column::Numeric({1.0, 2.0})});
  EXPECT_FALSE(r.ok());
}

TEST(TableTest, BasicAccessors) {
  Table t = MakeCarTable();
  EXPECT_EQ(t.NumRows(), 4u);
  EXPECT_EQ(t.NumColumns(), 3u);
  EXPECT_EQ(t.ColumnIndex("Price").value(), 2);
  EXPECT_FALSE(t.ColumnIndex("Fuel").ok());
  EXPECT_EQ(t.ColumnByName("Model").CategoryAt(2), "Prius");
}

TEST(TableTest, GatherReordersRows) {
  Table t = MakeCarTable();
  Table g = t.Gather({3, 0});
  EXPECT_EQ(g.NumRows(), 2u);
  EXPECT_EQ(g.ColumnByName("Model").CategoryAt(0), "Prius");
  EXPECT_DOUBLE_EQ(g.ColumnByName("Price").NumericAt(1), 40000.0);
}

TEST(TableTest, WithoutRowsKeepsOrder) {
  Table t = MakeCarTable();
  Table w = t.WithoutRows({1, 1, 3});
  EXPECT_EQ(w.NumRows(), 2u);
  EXPECT_EQ(w.ColumnByName("Color").CategoryAt(0), "White");
  EXPECT_EQ(w.ColumnByName("Model").CategoryAt(1), "Prius");
}

TEST(TableTest, ProjectSelectsColumns) {
  Table t = MakeCarTable();
  Table p = t.Project({2, 0});
  EXPECT_EQ(p.NumColumns(), 2u);
  EXPECT_EQ(p.schema().field(0).name, "Price");
  EXPECT_EQ(p.schema().field(1).name, "Model");
}

TEST(TableTest, ConcatMergesDictionaries) {
  TableBuilder b1;
  b1.AddCategorical("c", {"x", "y"});
  Table t1 = std::move(b1).Build().value();
  TableBuilder b2;
  b2.AddCategorical("c", {"z", "x"});
  Table t2 = std::move(b2).Build().value();
  Table merged = Table::Concat(t1, t2).value();
  EXPECT_EQ(merged.NumRows(), 4u);
  EXPECT_EQ(merged.ColumnByName("c").CategoryAt(2), "z");
  EXPECT_EQ(merged.ColumnByName("c").CodeAt(0), merged.ColumnByName("c").CodeAt(3));
}

TEST(TableTest, ConcatRejectsMismatchedSchemas) {
  TableBuilder b1;
  b1.AddNumeric("a", {1.0});
  Table t1 = std::move(b1).Build().value();
  TableBuilder b2;
  b2.AddCategorical("a", {"x"});
  Table t2 = std::move(b2).Build().value();
  EXPECT_FALSE(Table::Concat(t1, t2).ok());
}

TEST(TableTest, ConcatNumeric) {
  TableBuilder b1;
  b1.AddNumeric("a", {1.0, 2.0});
  TableBuilder b2;
  b2.AddNumeric("a", {3.0});
  Table merged =
      Table::Concat(std::move(b1).Build().value(), std::move(b2).Build().value()).value();
  EXPECT_EQ(merged.NumRows(), 3u);
  EXPECT_DOUBLE_EQ(merged.column(0).NumericAt(2), 3.0);
}

TEST(TableTest, ToStringTruncates) {
  Table t = MakeCarTable();
  std::string rendered = t.ToString(2);
  EXPECT_NE(rendered.find("more rows"), std::string::npos);
  EXPECT_NE(rendered.find("Model"), std::string::npos);
}

TEST(TableBuilderTest, EmptyTable) {
  Table t = TableBuilder().Build().value();
  EXPECT_EQ(t.NumRows(), 0u);
  EXPECT_EQ(t.NumColumns(), 0u);
}

TEST(TableBuilderTest, MismatchedLengthsRejected) {
  TableBuilder b;
  b.AddNumeric("a", {1.0, 2.0});
  b.AddNumeric("b", {1.0});
  EXPECT_FALSE(std::move(b).Build().ok());
}

}  // namespace
}  // namespace scoded
