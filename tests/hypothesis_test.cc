#include "stats/hypothesis.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "table/table.h"

namespace scoded {
namespace {

// Two categorical columns with a strong dependence (y copies x mostly).
Table DependentCategoricalTable(size_t n, double noise, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> x;
  std::vector<std::string> y;
  for (size_t i = 0; i < n; ++i) {
    std::string xv = rng.Bernoulli(0.5) ? "a" : "b";
    std::string yv = rng.Bernoulli(noise) ? (rng.Bernoulli(0.5) ? "p" : "q")
                                          : (xv == "a" ? "p" : "q");
    x.push_back(xv);
    y.push_back(yv);
  }
  TableBuilder builder;
  builder.AddCategorical("x", x);
  builder.AddCategorical("y", y);
  return std::move(builder).Build().value();
}

Table IndependentCategoricalTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> x;
  std::vector<std::string> y;
  for (size_t i = 0; i < n; ++i) {
    x.push_back(rng.Bernoulli(0.5) ? "a" : "b");
    y.push_back(rng.Bernoulli(0.5) ? "p" : "q");
  }
  TableBuilder builder;
  builder.AddCategorical("x", x);
  builder.AddCategorical("y", y);
  return std::move(builder).Build().value();
}

TEST(GTestTest, DetectsStrongDependence) {
  Table t = DependentCategoricalTable(500, 0.1, 1);
  TestResult r = IndependenceTest(t, 0, 1, {}).value();
  EXPECT_EQ(r.method, TestMethod::kGTest);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_GT(r.effect, 0.5);
}

TEST(GTestTest, AcceptsIndependence) {
  Table t = IndependentCategoricalTable(500, 2);
  TestResult r = IndependenceTest(t, 0, 1, {}).value();
  EXPECT_GT(r.p_value, 0.01);
}

TEST(GTestTest, FlagsSmallExpectedCounts) {
  TableBuilder builder;
  builder.AddCategorical("x", {"a", "a", "b"});
  builder.AddCategorical("y", {"p", "q", "p"});
  Table t = std::move(builder).Build().value();
  TestResult r = IndependenceTest(t, 0, 1, {}).value();
  EXPECT_TRUE(r.approximation_suspect);
}

TEST(TauTestTest, DetectsMonotoneDependence) {
  Rng rng(3);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    double v = rng.Normal();
    x.push_back(v);
    y.push_back(v + rng.Normal(0.0, 0.3));
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  Table t = std::move(builder).Build().value();
  TestResult r = IndependenceTest(t, 0, 1, {}).value();
  EXPECT_EQ(r.method, TestMethod::kTauTest);
  EXPECT_LT(r.p_value, 1e-10);
  EXPECT_GT(r.effect, 0.5);
}

TEST(TauTestTest, AcceptsIndependentNumeric) {
  Rng rng(4);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    x.push_back(rng.Normal());
    y.push_back(rng.Normal());
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  Table t = std::move(builder).Build().value();
  TestResult r = IndependenceTest(t, 0, 1, {}).value();
  EXPECT_GT(r.p_value, 0.01);
}

TEST(TauTestTest, UsesExactNullForSmallTieFreeSamples) {
  std::vector<double> x = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<double> y = {2, 1, 4, 3, 6, 5, 8, 7};
  TestResult r = TauTestIndependence(x, y);
  EXPECT_TRUE(r.used_exact);
  EXPECT_GT(r.p_value, 0.0);
  EXPECT_LE(r.p_value, 1.0);
}

TEST(TauTestTest, SmallTiedSamplesAreFlagged) {
  std::vector<double> x = {1, 1, 2, 3, 4, 5};
  std::vector<double> y = {2, 1, 4, 3, 6, 5};
  TestResult r = TauTestIndependence(x, y);
  EXPECT_FALSE(r.used_exact);
  EXPECT_TRUE(r.approximation_suspect);
}

TEST(SpearmanOptionTest, AlternativeNumericMethod) {
  Rng rng(15);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    double v = rng.Normal();
    x.push_back(v);
    y.push_back(v * v * v + rng.Normal(0.0, 0.2));  // monotone nonlinear
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  Table t = std::move(builder).Build().value();
  TestOptions options;
  options.numeric_method = NumericMethod::kSpearman;
  TestResult r = IndependenceTest(t, 0, 1, {}, options).value();
  EXPECT_EQ(r.method, TestMethod::kSpearmanTest);
  EXPECT_LT(r.p_value, 1e-10);
  EXPECT_GT(r.effect, 0.9);
  // Kendall agrees on the decision.
  TestResult kendall = IndependenceTest(t, 0, 1, {}).value();
  EXPECT_LT(kendall.p_value, 1e-10);
}

TEST(SpearmanOptionTest, ConditionalTestsStayKendall) {
  Rng rng(16);
  std::vector<double> x;
  std::vector<double> y;
  std::vector<std::string> z;
  for (int i = 0; i < 120; ++i) {
    double v = rng.Normal();
    x.push_back(v);
    y.push_back(v + rng.Normal(0.0, 0.3));
    z.push_back(i % 2 == 0 ? "a" : "b");
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  builder.AddCategorical("z", z);
  Table t = std::move(builder).Build().value();
  TestOptions options;
  options.numeric_method = NumericMethod::kSpearman;
  TestResult r = IndependenceTest(t, 0, 1, {2}, options).value();
  EXPECT_EQ(r.method, TestMethod::kTauTest);
}

TEST(MixedTest, NumericPairedWithCategoricalUsesDiscretisedG) {
  Rng rng(5);
  std::vector<double> x;
  std::vector<std::string> y;
  for (int i = 0; i < 400; ++i) {
    double v = rng.Normal();
    x.push_back(v);
    y.push_back(v > 0 ? "pos" : "neg");
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddCategorical("y", y);
  Table t = std::move(builder).Build().value();
  TestResult r = IndependenceTest(t, 0, 1, {}).value();
  EXPECT_EQ(r.method, TestMethod::kGTest);
  EXPECT_LT(r.p_value, 1e-10);
}

TEST(ConditionalTest, DependenceExplainedByConfounder) {
  // x and y both copy z; conditioned on z they are independent.
  Rng rng(6);
  std::vector<std::string> z;
  std::vector<std::string> x;
  std::vector<std::string> y;
  for (int i = 0; i < 1000; ++i) {
    std::string zv = rng.Bernoulli(0.5) ? "u" : "v";
    auto noisy_copy = [&](const std::string& base) {
      if (rng.Bernoulli(0.2)) {
        return std::string(rng.Bernoulli(0.5) ? "u" : "v");
      }
      return base;
    };
    z.push_back(zv);
    x.push_back(noisy_copy(zv));
    y.push_back(noisy_copy(zv));
  }
  TableBuilder builder;
  builder.AddCategorical("x", x);
  builder.AddCategorical("y", y);
  builder.AddCategorical("z", z);
  Table t = std::move(builder).Build().value();
  TestResult marginal = IndependenceTest(t, 0, 1, {}).value();
  TestResult conditional = IndependenceTest(t, 0, 1, {2}).value();
  EXPECT_LT(marginal.p_value, 1e-6);       // marginally dependent
  EXPECT_GT(conditional.p_value, 0.001);   // conditionally independent
  EXPECT_EQ(conditional.strata_used, 2u);
}

TEST(ConditionalTest, TauStratifiedCombination) {
  // Within each stratum y follows x; strata have different offsets.
  Rng rng(7);
  std::vector<double> x;
  std::vector<double> y;
  std::vector<std::string> z;
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 80; ++i) {
      double v = rng.Normal();
      x.push_back(v);
      y.push_back(v + 100.0 * s + rng.Normal(0.0, 0.2));
      z.push_back("s" + std::to_string(s));
    }
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  builder.AddCategorical("z", z);
  Table t = std::move(builder).Build().value();
  TestResult r = IndependenceTest(t, 0, 1, {2}).value();
  EXPECT_EQ(r.method, TestMethod::kTauTest);
  EXPECT_EQ(r.strata_used, 3u);
  EXPECT_LT(r.p_value, 1e-10);
}

TEST(ConditionalTest, TinyStrataAreSkipped) {
  TableBuilder builder;
  builder.AddNumeric("x", {1, 2, 3, 4, 5});
  builder.AddNumeric("y", {1, 2, 3, 4, 5});
  builder.AddCategorical("z", {"a", "a", "a", "a", "b"});
  Table t = std::move(builder).Build().value();
  TestResult r = IndependenceTest(t, 0, 1, {2}).value();
  EXPECT_EQ(r.strata_used, 1u);
  EXPECT_EQ(r.strata_skipped, 1u);
}

TEST(IndependenceTestTest, ValidatesArguments) {
  Table t = IndependentCategoricalTable(10, 8);
  EXPECT_FALSE(IndependenceTest(t, 0, 0, {}).ok());
  EXPECT_FALSE(IndependenceTest(t, 0, 5, {}).ok());
  EXPECT_FALSE(IndependenceTest(t, 0, 1, {0}).ok());
  EXPECT_FALSE(IndependenceTest(t, -1, 1, {}).ok());
}

TEST(IndependenceTestTest, NullCellsExcluded) {
  TableBuilder builder;
  builder.AddNumericWithNulls("x", {1, 2, 3, 4, 0}, {true, true, true, true, false});
  builder.AddNumeric("y", {1, 2, 3, 4, 5});
  Table t = std::move(builder).Build().value();
  TestResult r = IndependenceTest(t, 0, 1, {}).value();
  EXPECT_EQ(r.n, 4);
}

TEST(PermutationTest, AgreesWithAsymptoticDirectionally) {
  Table dependent = DependentCategoricalTable(300, 0.1, 9);
  Table independent = IndependentCategoricalTable(300, 10);
  Rng rng(11);
  TestResult dep = PermutationIndependenceTest(dependent, 0, 1, {}, 200, rng).value();
  TestResult ind = PermutationIndependenceTest(independent, 0, 1, {}, 200, rng).value();
  EXPECT_LT(dep.p_value, 0.05);
  EXPECT_GT(ind.p_value, 0.05);
  EXPECT_EQ(dep.method, TestMethod::kPermutation);
}

TEST(PermutationTest, NumericPath) {
  Rng data_rng(12);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 40; ++i) {
    double v = data_rng.Normal();
    x.push_back(v);
    y.push_back(v + data_rng.Normal(0.0, 0.2));
  }
  TableBuilder builder;
  builder.AddNumeric("x", x);
  builder.AddNumeric("y", y);
  Table t = std::move(builder).Build().value();
  Rng rng(13);
  TestResult r = PermutationIndependenceTest(t, 0, 1, {}, 300, rng).value();
  EXPECT_LT(r.p_value, 0.05);
}

TEST(PermutationTest, ZeroIterationsRejected) {
  Table t = IndependentCategoricalTable(20, 14);
  Rng rng(15);
  EXPECT_FALSE(PermutationIndependenceTest(t, 0, 1, {}, 0, rng).ok());
}

}  // namespace
}  // namespace scoded
