#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "stats/encoding_cache.h"
#include "table/table.h"

namespace scoded {
namespace {

// Restores the global thread override on scope exit so tests cannot leak
// a thread-count setting into each other.
struct ThreadsGuard {
  explicit ThreadsGuard(int n) { parallel::SetThreads(n); }
  ~ThreadsGuard() { parallel::SetThreads(0); }
};

TEST(ParallelTest, ThreadsResolution) {
  ThreadsGuard guard(3);
  EXPECT_EQ(parallel::Threads(), 3);
  parallel::SetThreads(0);
  EXPECT_GE(parallel::Threads(), 1);
  EXPECT_GE(parallel::HardwareThreads(), 1);
}

TEST(ParallelTest, EmptyRangeIsNoOp) {
  ThreadsGuard guard(4);
  std::atomic<int> calls{0};
  parallel::ParallelFor(5, 5, 1, [&](size_t) { calls.fetch_add(1); });
  parallel::ParallelFor(7, 3, 1, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  std::vector<int> mapped = parallel::ParallelMap<int>(0, 1, [](size_t) { return 1; });
  EXPECT_TRUE(mapped.empty());
  std::vector<int> chunks =
      parallel::ParallelChunks<int>(0, 4, [](size_t, size_t) { return 1; });
  EXPECT_TRUE(chunks.empty());
  EXPECT_TRUE(parallel::ParallelForStatus(2, 2, 1, [](size_t) { return OkStatus(); }).ok());
}

TEST(ParallelTest, GrainLargerThanRangeRunsInlineOnCaller) {
  ThreadsGuard guard(4);
  // One chunk: the primitive must not touch the pool — the body runs on
  // the calling thread, outside any worker context.
  std::vector<int> hits(3, 0);
  bool saw_worker = false;
  parallel::ParallelFor(0, 3, 100, [&](size_t i) {
    hits[i] += 1;
    saw_worker = saw_worker || parallel::InWorker();
  });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
  EXPECT_FALSE(saw_worker);
}

TEST(ParallelTest, EveryIndexVisitedExactlyOnce) {
  ThreadsGuard guard(4);
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> visits(kCount);
  parallel::ParallelFor(0, kCount, 7, [&](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelTest, MapSlotsMatchSerialAtAnyThreadCount) {
  std::vector<int> serial;
  {
    ThreadsGuard guard(1);
    serial = parallel::ParallelMap<int>(257, 8, [](size_t i) { return static_cast<int>(i * i); });
  }
  for (int threads : {2, 4, 8}) {
    ThreadsGuard guard(threads);
    std::vector<int> mapped =
        parallel::ParallelMap<int>(257, 8, [](size_t i) { return static_cast<int>(i * i); });
    EXPECT_EQ(mapped, serial) << "threads=" << threads;
  }
}

TEST(ParallelTest, ChunkGridDependsOnlyOnCountAndGrain) {
  ThreadsGuard guard(4);
  // count=10, grain=3 -> [0,3) [3,6) [6,9) [9,10) at every thread count.
  std::vector<std::pair<size_t, size_t>> bounds = parallel::ParallelChunks<std::pair<size_t, size_t>>(
      10, 3, [](size_t lo, size_t hi) { return std::make_pair(lo, hi); });
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_EQ(bounds[0], (std::pair<size_t, size_t>{0, 3}));
  EXPECT_EQ(bounds[1], (std::pair<size_t, size_t>{3, 6}));
  EXPECT_EQ(bounds[2], (std::pair<size_t, size_t>{6, 9}));
  EXPECT_EQ(bounds[3], (std::pair<size_t, size_t>{9, 10}));
}

TEST(ParallelTest, StatusPropagatesFirstFailureInIndexOrder) {
  ThreadsGuard guard(4);
  std::atomic<int> executed{0};
  Status status = parallel::ParallelForStatus(0, 64, 1, [&](size_t i) -> Status {
    executed.fetch_add(1);
    if (i == 41 || i == 13) {
      return InvalidArgumentError("fail at " + std::to_string(i));
    }
    return OkStatus();
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "fail at 13");
  // Workers are never cancelled mid-flight: every index still ran.
  EXPECT_EQ(executed.load(), 64);
}

TEST(ParallelTest, ExceptionPropagatesLowestChunkFirst) {
  ThreadsGuard guard(4);
  try {
    parallel::ParallelFor(0, 32, 1, [&](size_t i) {
      if (i == 21 || i == 6) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected the worker exception to be rethrown";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "boom 6");
  }
}

TEST(ParallelTest, NestedCallsFallBackToSerial) {
  ThreadsGuard guard(4);
  std::atomic<int> outer_in_worker{0};
  std::atomic<int> inner_total{0};
  std::atomic<int> inner_in_worker_only{0};
  parallel::ParallelFor(0, 8, 1, [&](size_t) {
    if (parallel::InWorker()) {
      outer_in_worker.fetch_add(1);
    }
    // The nested primitive must run inline on this worker thread — the
    // pool never queues work from inside itself (no self-deadlock).
    parallel::ParallelFor(0, 4, 1, [&](size_t) {
      inner_total.fetch_add(1);
      if (parallel::InWorker()) {
        inner_in_worker_only.fetch_add(1);
      }
    });
  });
  EXPECT_EQ(outer_in_worker.load(), 8);
  EXPECT_EQ(inner_total.load(), 32);
  EXPECT_EQ(inner_in_worker_only.load(), 32);
}

TEST(ParallelTest, SerialModeNeverEntersWorkerContext) {
  ThreadsGuard guard(1);
  bool saw_worker = false;
  parallel::ParallelFor(0, 100, 1, [&](size_t) { saw_worker = saw_worker || parallel::InWorker(); });
  EXPECT_FALSE(saw_worker);
}

// ---------------------------------------------------------------------------
// ColumnEncodingCache
// ---------------------------------------------------------------------------

Table SmallTable() {
  TableBuilder builder;
  builder.AddCategorical("color", {"red", "blue", "red", "green", "blue", "red"});
  builder.AddNumeric("price", {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  return std::move(builder).Build().value();
}

TEST(ColumnEncodingCacheTest, MemoisesCodesPerKey) {
  Table table = SmallTable();
  const Column& color = table.column(0);
  std::vector<size_t> rows{0, 1, 2, 3, 4, 5};
  uint64_t sig = ColumnEncodingCache::RowsSignature(rows);

  ColumnEncodingCache cache;
  int computes = 0;
  auto compute = [&] {
    ++computes;
    ColumnEncodingCache::Encoding encoding;
    encoding.codes = {0, 1, 0, 2, 1, 0};
    encoding.cardinality = 3;
    return encoding;
  };
  auto first = cache.GetOrComputeCodes(color, sig, 4, compute);
  auto second = cache.GetOrComputeCodes(color, sig, 4, compute);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  // A different parameter (bin count) is a distinct entry.
  auto third = cache.GetOrComputeCodes(color, sig, 8, compute);
  EXPECT_EQ(computes, 2);
  EXPECT_NE(first.get(), third.get());

  // A different row set is a distinct entry.
  std::vector<size_t> subset{0, 2, 4};
  auto fourth =
      cache.GetOrComputeCodes(color, ColumnEncodingCache::RowsSignature(subset), 4, compute);
  EXPECT_EQ(computes, 3);
  EXPECT_NE(first.get(), fourth.get());
}

TEST(ColumnEncodingCacheTest, RowsSignatureSeparatesPrefixRelatedSets) {
  // Regression: plain FNV-1a over the row indices alone leaves a set and
  // its extensions with a shared running hash state — {r0..rk} is
  // literally a streaming prefix of {r0..rk, rk+1} — so two different
  // stratum row sets that share a prefix were one multiplication apart.
  // Mixing the length on both sides (and avalanching) must give every
  // prefix pair an unrelated signature.
  std::vector<size_t> rows{1, 2, 3};
  std::vector<size_t> extended{1, 2, 3, 4};
  uint64_t sig = ColumnEncodingCache::RowsSignature(rows);
  uint64_t extended_sig = ColumnEncodingCache::RowsSignature(extended);
  EXPECT_NE(sig, extended_sig);

  // The empty set and {0} hash identically under FNV-1a when the length
  // is not mixed in (index 0 contributes eight zero bytes but the
  // offset-basis state only changes through the multiply chain): the two
  // must now differ.
  EXPECT_NE(ColumnEncodingCache::RowsSignature({}), ColumnEncodingCache::RowsSignature({0}));
  // Same shared-state shape one level up: {0} vs {0, 0}-style paddings.
  EXPECT_NE(ColumnEncodingCache::RowsSignature({0}),
            ColumnEncodingCache::RowsSignature({0, 0}));

  // Low-entropy inputs must not produce clustered signatures: all
  // pairwise-distinct small sets stay pairwise distinct, and the high
  // 32 bits carry entropy (the unordered_map bucket index is taken from
  // the low bits of a further mix, but a degenerate upper half would
  // betray a missing avalanche).
  std::vector<std::vector<size_t>> sets = {
      {}, {0}, {1}, {0, 1}, {1, 0}, {0, 1, 2}, {2, 1, 0}, {0, 0}, {1, 1}, {42}, {42, 43}};
  std::vector<uint64_t> sigs;
  for (const auto& set : sets) {
    sigs.push_back(ColumnEncodingCache::RowsSignature(set));
  }
  for (size_t i = 0; i < sigs.size(); ++i) {
    for (size_t j = i + 1; j < sigs.size(); ++j) {
      EXPECT_NE(sigs[i], sigs[j]) << "set " << i << " vs set " << j;
    }
  }
  size_t distinct_upper = 0;
  std::vector<uint32_t> seen;
  for (uint64_t s : sigs) {
    uint32_t upper = static_cast<uint32_t>(s >> 32);
    if (std::find(seen.begin(), seen.end(), upper) == seen.end()) {
      seen.push_back(upper);
      ++distinct_upper;
    }
  }
  EXPECT_GT(distinct_upper, sigs.size() / 2);
}

TEST(ColumnEncodingCacheTest, CodesAndKeysDoNotCollide) {
  Table table = SmallTable();
  const Column& price = table.column(1);
  std::vector<size_t> rows{0, 1, 2, 3, 4, 5};
  uint64_t sig = ColumnEncodingCache::RowsSignature(rows);

  ColumnEncodingCache cache;
  auto codes = cache.GetOrComputeCodes(price, sig, 4, [] {
    ColumnEncodingCache::Encoding encoding;
    encoding.codes = {0, 0, 1, 1, 2, 2};
    encoding.cardinality = 3;
    return encoding;
  });
  auto keys = cache.GetOrComputeKeys(price, sig, 4, [] {
    return std::vector<int64_t>{9, 9, 9, 9, 9, 9};
  });
  EXPECT_EQ(codes->codes.size(), 6u);
  EXPECT_EQ(keys->size(), 6u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ColumnEncodingCacheTest, ClearAndEviction) {
  Table table = SmallTable();
  const Column& color = table.column(0);
  ColumnEncodingCache cache(/*max_entries=*/2);
  auto compute = [] {
    ColumnEncodingCache::Encoding encoding;
    encoding.codes = {0};
    encoding.cardinality = 1;
    return encoding;
  };
  cache.GetOrComputeCodes(color, 1, 4, compute);
  cache.GetOrComputeCodes(color, 2, 4, compute);
  EXPECT_EQ(cache.size(), 2u);
  // Hitting the cap clears wholesale before inserting the next entry.
  cache.GetOrComputeCodes(color, 3, 4, compute);
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  // A borrowed encoding survives eviction/clear.
  auto borrowed = cache.GetOrComputeCodes(color, 4, 4, compute);
  cache.Clear();
  EXPECT_EQ(borrowed->codes.size(), 1u);
}

TEST(ColumnEncodingCacheTest, ConcurrentLookupsAreSafeAndConsistent) {
  Table table = SmallTable();
  const Column& color = table.column(0);
  ColumnEncodingCache cache;
  ThreadsGuard guard(4);
  std::vector<const ColumnEncodingCache::Encoding*> seen(64, nullptr);
  parallel::ParallelFor(0, 64, 1, [&](size_t i) {
    auto encoding = cache.GetOrComputeCodes(color, /*rows_sig=*/7, 4, [] {
      ColumnEncodingCache::Encoding enc;
      enc.codes = {0, 1, 0, 2, 1, 0};
      enc.cardinality = 3;
      return enc;
    });
    seen[i] = encoding.get();
  });
  // All callers observe the same stored entry (first inserter wins).
  for (const auto* pointer : seen) {
    EXPECT_EQ(pointer, seen[0]);
  }
}

}  // namespace
}  // namespace scoded
