// Streaming SC enforcement (the paper's Sec. 1 deployment scenario and
// Sec. 8 "incremental on-line versions of SCODED"): new training data
// arrives in yearly batches; an ScMonitor maintains the dependence SC
// Wind ⊥̸ Weather incrementally and raises an alarm in the years whose
// measurements were mean-imputed.
//
// Build & run:  ./build/examples/streaming_monitor

#include <cstdio>
#include <vector>

#include "core/sc_monitor.h"
#include "datasets/nebraska.h"

int main() {
  using namespace scoded;

  NebraskaData data = GenerateNebraskaData().value();
  const Column& year_col = data.table.ColumnByName("Year");

  // The monitor enforces the SC the accepted model relies on; each year's
  // data is validated as its own stream before being accepted.
  ApproximateSc asc{ParseConstraint("Wind !_||_ Weather").value(), 0.3};

  TableBuilder proto_builder;
  proto_builder.AddNumeric("Wind", {});
  proto_builder.AddCategorical("Weather", {});
  Table prototype = std::move(proto_builder).Build().value();

  std::printf("streaming yearly batches through ScMonitor (alarm when p > %.1f):\n\n", asc.alpha);
  std::printf("%-6s %-10s %-10s %s\n", "year", "records", "p-value", "verdict");
  int alarms = 0;
  for (int year = 1970; year <= 1999; ++year) {
    // ScMonitor is categorical-or-numeric pairwise; Wind is numeric and
    // Weather categorical, so stream the pair through a numeric monitor
    // with Weather encoded ordinally? No — use a fresh monitor per year on
    // the categorical side by bucketing Wind into integer levels, the
    // standard gauge discretisation for wind reports.
    TableBuilder proto2;
    proto2.AddCategorical("WindLevel", {});
    proto2.AddCategorical("Weather", {});
    Table proto = std::move(proto2).Build().value();
    ApproximateSc level_sc{ParseConstraint("WindLevel !_||_ Weather").value(), asc.alpha};
    ScMonitor monitor = ScMonitor::Create(proto, level_sc).value();
    for (size_t i = 0; i < data.table.NumRows(); ++i) {
      if (year_col.NumericAt(i) != static_cast<double>(year)) {
        continue;
      }
      double wind = data.table.ColumnByName("Wind").NumericAt(i);
      int level = static_cast<int>(wind / 2.0);  // 2 m/s gauge buckets
      Status s = monitor.AppendCategorical("L" + std::to_string(level),
                                           data.table.ColumnByName("Weather").CategoryAt(i));
      if (!s.ok()) {
        std::fprintf(stderr, "append failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    bool alarm = monitor.Violated();
    alarms += alarm ? 1 : 0;
    std::printf("%-6d %-10zu %-10.3f %s\n", year, monitor.NumRecords(),
                monitor.CurrentPValue(), alarm ? "ALARM — reject batch" : "accept");
  }
  std::printf("\n%d alarms (expected: the mean-imputed years 1978 and 1989)\n", alarms);
  return 0;
}
