// SC discovery workflow (Sec. 3 / Figure 1).
//
// Profiles a dataset three ways — association matrix, Chow-Liu "Bayesian
// network" with d-separation, and graphoid consistency checking — to
// produce candidate SCs a user would then confirm against domain
// knowledge and feed into violation detection.
//
// Build & run:  ./build/examples/discovery_workflow

#include <cstdio>

#include "core/scoded.h"
#include "datasets/boston.h"
#include "discovery/association.h"
#include "discovery/chow_liu.h"

int main() {
  using namespace scoded;

  BostonOptions options;
  options.rows = 2000;
  Table table = GenerateBostonData(options).value();
  std::printf("boston-style data: %zu rows, schema [%s]\n\n", table.NumRows(),
              table.schema().ToString().c_str());

  // 1. Figure 1(a): the correlation/association heat map.
  AssociationMatrix matrix = AssociationMatrix::Compute(table).value();
  std::printf("association matrix (strength 0-9):\n%s\n", matrix.ToText().c_str());

  std::vector<StatisticalConstraint> suggestions = matrix.SuggestConstraints(0.001, 0.3);
  std::printf("matrix-suggested SCs:\n");
  for (const StatisticalConstraint& sc : suggestions) {
    std::printf("  %s\n", sc.ToString().c_str());
  }

  // 2. Figure 1(b): a lightweight Bayesian network (Chow-Liu tree) and the
  //    conditional independencies it implies via d-separation.
  Dag tree = LearnChowLiuTree(table, 0).value();
  std::printf("\nchow-liu tree edges:\n");
  for (size_t v = 0; v < tree.NumNodes(); ++v) {
    for (int child : tree.Children(static_cast<int>(v))) {
      std::printf("  %s -> %s\n", tree.names()[v].c_str(),
                  tree.names()[static_cast<size_t>(child)].c_str());
    }
  }
  std::vector<StatisticalConstraint> implied = tree.ImpliedIndependencies(1);
  std::printf("d-separation implied SCs (conditioning sets of size <= 1): %zu total, first 8:\n",
              implied.size());
  for (size_t i = 0; i < implied.size() && i < 8; ++i) {
    std::printf("  %s\n", implied[i].ToString().c_str());
  }

  // 3. Consistency-check the union of suggested and implied constraints
  //    before handing them to violation detection.
  std::vector<StatisticalConstraint> all = suggestions;
  for (size_t i = 0; i < implied.size() && i < 10; ++i) {
    all.push_back(implied[i]);
  }
  Result<ConsistencyReport> consistency = Scoded::CheckConstraintConsistency(all);
  if (consistency.ok()) {
    std::printf("\nconsistency of %zu discovered constraints: %s (closure size %zu)\n",
                all.size(), consistency->consistent ? "consistent" : "INCONSISTENT",
                consistency->closure_size);
    for (const std::string& conflict : consistency->conflicts) {
      std::printf("  conflict: %s\n", conflict.c_str());
    }
  } else {
    std::printf("\nconsistency check skipped: %s\n", consistency.status().ToString().c_str());
  }

  // 4. Validate one discovered constraint with Algorithm 1.
  Scoded system(table);
  ApproximateSc asc{system.Parse("N !_||_ D").value(), 0.05};
  ViolationReport report = system.CheckViolation(asc).value();
  std::printf("\nvalidating %s: p = %.3g -> %s\n", asc.sc.ToString().c_str(), report.p_value,
              report.violated ? "violated" : "holds");
  return 0;
}
