// ML model-construction case study (Sec. 6.2, Figure 7).
//
// A data scientist building a Games-prediction model discovers the
// counter-intuitive SC "Games strongly depends on GPM given DraftYear",
// applies SCODED, and finds that the top-50 records are dominated by
// pre-2000 players whose missing GPM was imputed with 0.
//
// Build & run:  ./build/examples/hockey_model_construction

#include <cstdio>
#include <set>

#include "core/scoded.h"
#include "datasets/hockey.h"
#include "discovery/association.h"

int main() {
  using namespace scoded;

  HockeyData data = GenerateHockeyData().value();
  std::printf("hockey dataset: %zu players, %zu with imputed GPM\n",
              data.table.NumRows(), data.imputed_rows.size());

  // Exploratory profiling: the association matrix flags GPM !_||_ Games.
  AssociationMatrix matrix = AssociationMatrix::Compute(data.table).value();
  std::printf("\nassociation matrix (strength 0-9):\n%s\n", matrix.ToText().c_str());

  Scoded system(data.table);
  ApproximateSc asc{system.Parse("GPM !_||_ Games | DraftYear").value(), 0.05};
  ViolationReport report = system.CheckViolation(asc).value();
  std::printf("SC %s: p = %.3g (dependence %s)\n", asc.sc.ToString().c_str(), report.p_value,
              report.violated ? "ABSENT -> violated" : "present");

  // Drill down to the top-50 records regardless of significance, exactly
  // as the case study does, and look for the pattern the analyst found.
  DrillDownResult top50 = system.DrillDown(asc, 50).value();
  size_t gpm_zero = 0;
  size_t pre_2000 = 0;
  size_t truly_imputed = 0;
  std::set<size_t> imputed(data.imputed_rows.begin(), data.imputed_rows.end());
  for (size_t row : top50.rows) {
    double gpm = data.table.ColumnByName("GPM").NumericAt(row);
    double year = data.table.ColumnByName("DraftYear").NumericAt(row);
    gpm_zero += gpm == 0.0 ? 1 : 0;
    pre_2000 += year <= 2000.0 ? 1 : 0;
    truly_imputed += imputed.count(row);
  }
  std::printf("\ntop-50 drill-down pattern (cf. Figure 7):\n");
  std::printf("  records with GPM == 0:        %zu / 50\n", gpm_zero);
  std::printf("  records drafted <= 2000:      %zu / 50\n", pre_2000);
  std::printf("  records actually imputed:     %zu / 50\n", truly_imputed);
  std::printf("\nconclusion: the \"strong dependence\" is an imputation artefact —\n"
              "the provider filled missing pre-2000 GPM values with 0.\n");
  return 0;
}
