// Quickstart: the Figure 2 car example end to end.
//
// Builds the 16-record car table, checks the approximate SC
// ⟨Model ⊥ Color, α⟩, drills down to the top-5 suspicious records, and
// solves the dataset-partition problem.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/scoded.h"
#include "table/table.h"

int main() {
  using namespace scoded;

  // The updated car database of Figure 2 (records r1-r16).
  TableBuilder builder;
  builder.AddCategorical(
      "Model", {"BMW X1", "BMW X1", "BMW X1", "BMW X1", "Toyota Prius", "Toyota Prius",
                "Toyota Prius", "Toyota Prius", "BMW X1", "BMW X1", "BMW X1", "BMW X1",
                "Toyota Prius", "Toyota Prius", "Toyota Prius", "Toyota Prius"});
  builder.AddCategorical("Color",
                         {"White", "Black", "White", "Black", "White", "White", "White", "Black",
                          "White", "White", "White", "Black", "Black", "Black", "Black", "Black"});
  Result<Table> table = std::move(builder).Build();
  if (!table.ok()) {
    std::fprintf(stderr, "failed to build table: %s\n", table.status().ToString().c_str());
    return 1;
  }

  Scoded system(std::move(table).value());

  // 1. Parse the user's constraint against the schema.
  Result<StatisticalConstraint> sc = system.Parse("Model _||_ Color");
  if (!sc.ok()) {
    std::fprintf(stderr, "parse error: %s\n", sc.status().ToString().c_str());
    return 1;
  }
  ApproximateSc asc{*sc, /*alpha=*/0.4};
  std::printf("constraint: %s\n", asc.ToString().c_str());

  // 2. Violation detection (Algorithm 1).
  ViolationReport report = system.CheckViolation(asc).value();
  std::printf("violated: %s  (p = %.4f, G = %.3f, method = %s)\n",
              report.violated ? "YES" : "no", report.p_value, report.test.statistic,
              std::string(TestMethodToString(report.test.method)).c_str());

  // 3. Error drill-down: top-5 records (Kᶜ strategy, the default for ISCs).
  DrillDownResult top5 = system.DrillDown(asc, 5).value();
  std::printf("top-5 suspicious records (1-based ids, as in the paper):\n");
  for (size_t row : top5.rows) {
    std::printf("  r%-3zu  Model=%-13s Color=%s\n", row + 1,
                system.table().ColumnByName("Model").CategoryAt(row).c_str(),
                system.table().ColumnByName("Color").CategoryAt(row).c_str());
  }

  // 4. Dataset partition: the smallest greedy set whose removal restores
  //    the constraint.
  PartitionResult part = system.Partition(asc).value();
  std::printf("partition: removed %zu records, p went %.4f -> %.4f (restored: %s)\n",
              part.removed_rows.size(), part.initial_p, part.final_p,
              part.satisfied ? "yes" : "no");

  // 5. Consistency checking of a constraint set (graphoid axioms).
  std::vector<StatisticalConstraint> constraints = {
      Independence({"Model"}, {"Color"}),
      Dependence({"Model"}, {"Color"}),
  };
  ConsistencyReport consistency = Scoded::CheckConstraintConsistency(constraints).value();
  std::printf("consistency of {Model _||_ Color, Model !_||_ Color}: %s\n",
              consistency.consistent ? "consistent" : "INCONSISTENT (as expected)");
  return 0;
}
