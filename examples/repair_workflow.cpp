// Data repairing (the paper's Sec. 8 future-work extension): suggest the
// top-k cell-value corrections that move a dataset toward satisfying an
// approximate SC, rather than just flagging whole tuples.
//
// A hospital export with typo'd City cells is repaired against the
// FD-derived DSC Zip ⊥̸ City, and the suggestions are checked against the
// injected ground truth.
//
// Build & run:  ./build/examples/repair_workflow

#include <cstdio>
#include <set>

#include "constraints/ic.h"
#include "core/scoded.h"
#include "datasets/hosp.h"
#include "repair/cell_repair.h"

int main() {
  using namespace scoded;

  HospOptions options;
  options.rows = 4000;
  options.num_zips = 120;
  options.error_rate = 0.1;
  options.lhs_error_fraction = 0.0;  // repairs target the City (RHS) cells
  HospData data = GenerateHospData(options).value();
  std::printf("hospital export: %zu rows, %zu typo'd City/State cells\n",
              data.table.NumRows(), data.dirty_rows.size());

  FunctionalDependency fd{{"Zip"}, {"City"}};
  double before = FdApproximationRatio(data.table, fd).value();
  std::printf("FD %s approximation ratio before repair: %.3f\n", fd.ToString().c_str(), before);

  ApproximateSc asc{FdToDsc(fd), 0.05};
  RepairPlan plan = SuggestCellRepairs(data.table, asc, data.dirty_rows.size()).value();
  std::printf("\nsuggested %zu repairs (first 8):\n", plan.repairs.size());
  for (size_t i = 0; i < plan.repairs.size() && i < 8; ++i) {
    std::printf("  %s  (improvement %.1f)\n", plan.repairs[i].ToString(data.table).c_str(),
                plan.repairs[i].improvement);
  }

  std::set<size_t> truth(data.dirty_rows.begin(), data.dirty_rows.end());
  size_t hits = 0;
  for (const CellRepair& repair : plan.repairs) {
    hits += truth.count(repair.row);
  }
  std::printf("\nrepair precision: %zu / %zu suggestions touch truly corrupted rows\n", hits,
              plan.repairs.size());

  Table fixed = ApplyRepairs(data.table, plan.repairs).value();
  double after = FdApproximationRatio(fixed, fd).value();
  std::printf("FD approximation ratio after repair: %.3f (was %.3f)\n", after, before);
  std::printf("dependence statistic: %.1f -> %.1f\n", plan.initial_statistic,
              plan.final_statistic);
  return 0;
}
