// The complete SCODED workflow on one dataset, end to end:
//   1. profile the data,
//   2. discover candidate constraints (approximate FDs + PC structure),
//   3. consistency-check and minimise the constraint set,
//   4. batch-check with FDR control and produce a cleaning report,
//   5. drill into the confirmed violation and repair it,
//   6. re-check the repaired data.
//
// Build & run:  ./build/examples/full_pipeline

#include <cstdio>
#include <set>

#include "constraints/graphoid.h"
#include "core/scoded.h"
#include "datasets/hosp.h"
#include "discovery/fd_discovery.h"
#include "eval/report.h"
#include "repair/cell_repair.h"
#include "stats/descriptive.h"

int main() {
  using namespace scoded;

  // The dirty input: a hospital export with 10% typo'd City cells.
  HospOptions options;
  options.rows = 4000;
  options.num_zips = 120;
  options.error_rate = 0.1;
  options.lhs_error_fraction = 0.0;
  HospData data = GenerateHospData(options).value();

  // 1. Profile.
  std::printf("=== 1. profile ===\n%s\n", DescribeTableText(data.table).c_str());

  // 2. Discover approximate FDs and translate them to DSCs.
  std::printf("=== 2. discovery ===\n");
  FdDiscoveryOptions discovery;
  discovery.max_g3_ratio = 0.3;
  std::vector<DiscoveredFd> fds = DiscoverApproximateFds(data.table, discovery).value();
  std::vector<StatisticalConstraint> candidates;
  for (const DiscoveredFd& fd : fds) {
    std::printf("  %-24s g3=%.3f  ->  %s\n", fd.fd.ToString().c_str(), fd.g3_ratio,
                FdToDsc(fd.fd).ToString().c_str());
    candidates.push_back(FdToDsc(fd.fd));
  }

  // 3. Consistency check + minimisation.
  std::printf("\n=== 3. consistency ===\n");
  ConsistencyReport consistency = CheckConsistency(candidates).value();
  std::printf("  %s\n", consistency.consistent ? "consistent" : "INCONSISTENT");
  std::vector<StatisticalConstraint> minimal = MinimizeConstraints(candidates).value();
  std::printf("  %zu constraints -> %zu after minimisation\n", candidates.size(),
              minimal.size());

  // 4. Batch check + report.
  std::printf("\n=== 4. cleaning report ===\n");
  std::vector<ApproximateSc> batch;
  for (const StatisticalConstraint& sc : minimal) {
    batch.push_back({sc, 0.05});
  }
  ReportOptions report_options;
  report_options.drilldown_k = 50;
  CleaningReport report = GenerateCleaningReport(data.table, batch, report_options).value();
  std::printf("%s\n", report.ToMarkdown(data.table, report_options).c_str());

  // 5. Repair the constraint whose violation the report confirmed — or,
  //    as here where the DSCs hold approximately, repair toward the
  //    strongest FD anyway to clean the typos.
  std::printf("=== 5. repair ===\n");
  ApproximateSc target{FdToDsc({{"Zip"}, {"City"}}), 0.05};
  RepairPlan plan = SuggestCellRepairs(data.table, target, data.dirty_rows.size()).value();
  std::set<size_t> truth(data.dirty_rows.begin(), data.dirty_rows.end());
  size_t hits = 0;
  for (const CellRepair& repair : plan.repairs) {
    hits += truth.count(repair.row);
  }
  std::printf("  %zu repairs suggested, %zu touch truly corrupted rows\n",
              plan.repairs.size(), hits);
  Table repaired = ApplyRepairs(data.table, plan.repairs).value();

  // 6. Verify.
  std::printf("\n=== 6. verification ===\n");
  double before = FdApproximationRatio(data.table, {{"Zip"}, {"City"}}).value();
  double after = FdApproximationRatio(repaired, {{"Zip"}, {"City"}}).value();
  std::printf("  FD Zip -> City g3 ratio: %.4f -> %.4f\n", before, after);
  return 0;
}
