// File-based cleaning workflow: CSV in, suspicious-record report out.
//
// Writes a HOSP-style CSV to a temp file (standing in for a user's export),
// reloads it, translates the approximate FD Zip -> City into the DSC
// Zip ⊥̸ City (Proposition 2), runs SCODED's drill-down next to the AFD
// baseline, and prints both reports plus precision against ground truth.
//
// Build & run:  ./build/examples/csv_cleaning

#include <cstdio>
#include <set>

#include "baselines/afd.h"
#include "constraints/ic.h"
#include "core/scoded.h"
#include "datasets/hosp.h"
#include "eval/metrics.h"
#include "eval/scoded_detector.h"
#include "table/csv.h"

int main() {
  using namespace scoded;

  // 1. Produce the "user's" CSV file.
  HospOptions options;
  options.rows = 4000;
  options.num_zips = 120;
  HospData data = GenerateHospData(options).value();
  const std::string path = "/tmp/scoded_example_hospital.csv";
  Status write = csv::WriteFile(data.table, path);
  if (!write.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(), write.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu rows, %zu injected errors)\n", path.c_str(),
              data.table.NumRows(), data.dirty_rows.size());

  // 2. Load it back, as a user would.
  Table table = csv::ReadFile(path).value();
  std::printf("reloaded schema: [%s]\n", table.schema().ToString().c_str());

  // 3. The user's domain rule is the FD Zip -> City; Proposition 2 turns
  //    it into a dependence SC usable by SCODED.
  FunctionalDependency fd{{"Zip"}, {"City"}};
  double ratio = FdApproximationRatio(table, fd).value();
  std::printf("FD %s holds approximately (g3 ratio %.3f)\n", fd.ToString().c_str(), ratio);
  StatisticalConstraint dsc = FdToDsc(fd);
  std::printf("translated constraint: %s\n", dsc.ToString().c_str());

  // 4. Rank suspicious records with SCODED and with the AFD baseline.
  const size_t kTop = data.dirty_rows.size();
  ScodedDetector scoded_detector({{dsc, 0.05}});
  AfdDetector afd_detector({fd});
  std::vector<size_t> scoded_rank = scoded_detector.Rank(table, kTop).value();
  std::vector<size_t> afd_rank = afd_detector.Rank(table, kTop).value();

  std::set<size_t> truth(data.dirty_rows.begin(), data.dirty_rows.end());
  PrecisionRecall scoded_pr = EvaluateTopK(scoded_rank, truth, kTop);
  PrecisionRecall afd_pr = EvaluateTopK(afd_rank, truth, kTop);
  std::printf("\nprecision@%zu against injected ground truth:\n", kTop);
  std::printf("  SCODED  P=%.3f R=%.3f F=%.3f\n", scoded_pr.precision, scoded_pr.recall,
              scoded_pr.f_score);
  std::printf("  AFD     P=%.3f R=%.3f F=%.3f\n", afd_pr.precision, afd_pr.recall,
              afd_pr.f_score);

  // 5. Emit a cleaned CSV with SCODED's suspects removed.
  Table cleaned = table.WithoutRows(scoded_rank);
  const std::string cleaned_path = "/tmp/scoded_example_hospital.cleaned.csv";
  if (csv::WriteFile(cleaned, cleaned_path).ok()) {
    std::printf("\nwrote cleaned table (%zu rows) to %s\n", cleaned.NumRows(),
                cleaned_path.c_str());
  }
  return 0;
}
