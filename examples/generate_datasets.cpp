// Writes the six synthetic evaluation datasets (clean and corrupted
// variants where applicable) to CSV files, so the `scoded` CLI and any
// external tooling can be exercised on them directly.
//
// Build & run:  ./build/examples/generate_datasets [output_dir]

#include <cstdio>
#include <string>

#include "datasets/boston.h"
#include "datasets/car.h"
#include "datasets/errors.h"
#include "datasets/hockey.h"
#include "datasets/hosp.h"
#include "datasets/nebraska.h"
#include "datasets/sensor.h"
#include "table/csv.h"

namespace {

using namespace scoded;

bool Write(const Table& table, const std::string& path) {
  Status status = csv::WriteFile(table, path);
  if (!status.ok()) {
    std::fprintf(stderr, "error writing %s: %s\n", path.c_str(), status.ToString().c_str());
    return false;
  }
  std::printf("  %-36s %zu rows x %zu cols\n", path.c_str(), table.NumRows(),
              table.NumColumns());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scoded;
  std::string dir = argc > 1 ? argv[1] : "/tmp/scoded_datasets";
  std::string mkdir = "mkdir -p " + dir;
  if (std::system(mkdir.c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }
  std::printf("writing datasets to %s:\n", dir.c_str());

  // SENSOR: clean plus a variant with imputed T8 outliers.
  SensorOptions sensor_options;
  sensor_options.epochs = 2000;
  Table sensor = GenerateSensorData(sensor_options).value();
  if (!Write(sensor, dir + "/sensor.csv")) {
    return 1;
  }
  InjectionOptions sensor_inject;
  sensor_inject.rate = 0.1;
  sensor_inject.based_on = "T8";
  InjectionResult sensor_dirty = InjectImputationError(sensor, "T8", sensor_inject).value();
  if (!Write(sensor_dirty.table, dir + "/sensor_dirty.csv")) {
    return 1;
  }

  // BOSTON: clean plus a sorting-error variant on N.
  Table boston = GenerateBostonData().value();
  if (!Write(boston, dir + "/boston.csv")) {
    return 1;
  }
  InjectionOptions boston_inject;
  boston_inject.rate = 0.3;
  InjectionResult boston_dirty = InjectSortingError(boston, "N", boston_inject).value();
  if (!Write(boston_dirty.table, dir + "/boston_dirty.csv")) {
    return 1;
  }

  // HOSP (errors are baked in by the generator).
  HospOptions hosp_options;
  hosp_options.rows = 10000;
  HospData hosp = GenerateHospData(hosp_options).value();
  if (!Write(hosp.table, dir + "/hospital.csv")) {
    return 1;
  }

  // CAR.
  if (!Write(GenerateCarData().value(), dir + "/car.csv")) {
    return 1;
  }

  // HOCKEY (imputed GPM baked in).
  HockeyData hockey = GenerateHockeyData().value();
  if (!Write(hockey.table, dir + "/hockey.csv")) {
    return 1;
  }

  // NEBRASKA (imputed Wind years and Sea outliers baked in).
  NebraskaData nebraska = GenerateNebraskaData().value();
  if (!Write(nebraska.table, dir + "/nebraska.csv")) {
    return 1;
  }

  std::printf("\ntry:\n"
              "  ./build/tools/scoded check  --csv %s/hospital.csv --sc \"Zip !_||_ City\"\n"
              "  ./build/tools/scoded drill  --csv %s/boston_dirty.csv --sc \"N !_||_ D\" --k 50\n"
              "  ./build/tools/scoded report --csv %s/nebraska.csv --sc \"Wind !_||_ Weather\" "
              "--alpha 0.3\n",
              dir.c_str(), dir.c_str(), dir.c_str());
  return 0;
}
