// ML model-deployment case study (Sec. 6.2, Figure 8).
//
// A weather-prediction model trained on historical Nebraska data relies on
// the dependences Wind ⊥̸ Weather and Sea ⊥̸ Weather. Before scoring new
// years, the analyst enforces the approximate SCs ⟨·, α = 0.3⟩ per year:
// years where p > α violate the dependence constraint. Drill-down then
// explains each violation (mean-imputed Wind; Sea outliers).
//
// Build & run:  ./build/examples/nebraska_model_deployment

#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "core/scoded.h"
#include "datasets/nebraska.h"
#include "table/ops.h"

namespace {

std::vector<size_t> RowsOfYear(const scoded::Table& table, int year) {
  return scoded::RowsWhereEqual(table, "Year", std::to_string(year)).value();
}

}  // namespace

int main() {
  using namespace scoded;

  NebraskaData data = GenerateNebraskaData().value();
  std::printf("nebraska test data: %zu daily records (1970-1999)\n", data.table.NumRows());

  const double kAlpha = 0.3;
  ApproximateSc wind_sc{ParseConstraint("Wind !_||_ Weather").value(), kAlpha};
  ApproximateSc sea_sc{ParseConstraint("Sea !_||_ Weather").value(), kAlpha};

  std::printf("\nper-year p-values (violation when p > %.1f):\n", kAlpha);
  std::printf("%-6s %-12s %-12s\n", "year", "p(Wind)", "p(Sea)");
  std::vector<int> violating_wind_years;
  std::vector<int> violating_sea_years;
  for (int year = 1970; year <= 1999; ++year) {
    std::vector<size_t> rows = RowsOfYear(data.table, year);
    double p_wind = DetectViolation(data.table, wind_sc, rows).value().p_value;
    double p_sea = DetectViolation(data.table, sea_sc, rows).value().p_value;
    bool wind_bad = p_wind > kAlpha;
    bool sea_bad = p_sea > kAlpha;
    if (wind_bad) {
      violating_wind_years.push_back(year);
    }
    if (sea_bad) {
      violating_sea_years.push_back(year);
    }
    std::printf("%-6d %-10.3f%s %-10.3f%s\n", year, p_wind, wind_bad ? "*" : " ", p_sea,
                sea_bad ? "*" : " ");
  }

  // Drill into the first violating Wind year: the returned records should
  // all carry the same imputed Wind value (the paper's 6.07 artefact).
  if (!violating_wind_years.empty()) {
    int year = violating_wind_years[0];
    std::vector<size_t> rows = RowsOfYear(data.table, year);
    DrillDownResult top =
        DrillDown(data.table, wind_sc, 50, rows, DrillDownOptions{}).value();
    std::set<size_t> truly_dirty(data.wind_dirty_rows.begin(), data.wind_dirty_rows.end());
    size_t imputed_hits = 0;
    std::map<double, size_t> value_counts;
    for (size_t row : top.rows) {
      ++value_counts[data.table.ColumnByName("Wind").NumericAt(row)];
      imputed_hits += truly_dirty.count(row);
    }
    double modal_value = 0.0;
    size_t modal_count = 0;
    for (const auto& [value, count] : value_counts) {
      if (count > modal_count) {
        modal_count = count;
        modal_value = value;
      }
    }
    std::printf("\nyear %d drill-down: %zu of the top-50 records share Wind = %.2f "
                "(the imputed mean); %zu are ground-truth imputed rows\n",
                year, modal_count, modal_value, imputed_hits);
  }
  std::printf("\nexpected violations: Wind in 1978 & 1989 (mean imputation), "
              "Sea in 1972 (outliers)\n");
  return 0;
}
